//! Proof-gated bounds-check elision — the one audited module allowed to
//! skip [`GlobalView`](crate::buffer::GlobalView) access checks.
//!
//! A kernel whose record-time contract check *closed* — every access
//! statically proven in-bounds for the recorded range by
//! [`hetero_ir::infer_contract`], and every declared binding consistent
//! with the inferred contract — earns a [`Gate`]. Views the kernel wraps
//! through [`Gate::view`] read the gate on every access:
//!
//! * **armed** → the element load/store skips both the bounds check and
//!   the sanitizer hook (the proof already discharged the bounds
//!   obligation, and the gate is only ever armed on a path the
//!   sanitizer cannot be watching — see below);
//! * **disarmed** (the default) → the access goes through the ordinary
//!   fully checked [`GlobalView`](crate::buffer::GlobalView) accessors.
//!
//! # Why the unsafe is sound
//!
//! [`Gate::arm`] is crate-internal and called from exactly one place:
//! the fast path of `Graph::replay`, while holding the graph's replay
//! lock, and only for nodes that carry a closed proof certificate. That
//! path is only taken when every hardening layer is disarmed
//! (`fast_eligible`): no sanitizer, no fault plan, no redundancy, no
//! armed integrity layer. The proof is against the recorded launch
//! range, and the fast path replays exactly that range — so for every
//! index `i` a gated accessor sees while armed, `i < len` was
//! established statically at record time. `submit_each` (the armed-queue
//! degradation path) never arms gates, so sanitized, fault-injected, or
//! redundant replays always run fully checked. The gate is disarmed
//! again (via a drop guard) before `replay` returns, even on panic.
//!
//! # Kill switch
//!
//! [`set_enabled`] globally disables arming — every gated view behaves
//! exactly like its checked inner view. The elision benchmark uses this
//! to measure the checked and unchecked fast paths over identical
//! schedules.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::buffer::GlobalView;

/// Global elision kill switch (default: enabled). Disabling never makes
/// a program less checked — gates simply stay disarmed.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable proof-gated elision. With elision
/// disabled, proven kernels replay through fully checked accessors.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether proof-gated elision is globally enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A per-launch elision certificate gate. Cloned handles share state:
/// the recorded node holds one clone (armed/disarmed by replay), the
/// kernel's [`ProvenView`]s hold the others.
#[derive(Clone, Debug, Default)]
pub struct Gate {
    armed: Arc<AtomicBool>,
}

impl Gate {
    /// A new, disarmed gate.
    pub fn new() -> Gate {
        Gate::default()
    }

    /// Wrap a view so its accesses consult this gate.
    pub fn view<T: Copy>(&self, inner: GlobalView<T>) -> ProvenView<T> {
        ProvenView { inner, gate: self.clone() }
    }

    /// Whether the gate is currently armed (the owning graph is mid
    /// fast-path replay and the node's proof closed).
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Arm the gate. Crate-internal: only `Graph::replay`'s fast path
    /// (under the replay lock, for proven nodes, with elision enabled)
    /// may call this — that restriction is the soundness argument above.
    pub(crate) fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Disarm the gate (drop-guard path of `Graph::replay`).
    pub(crate) fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }
}

/// A [`GlobalView`](crate::buffer::GlobalView) whose bounds checks are
/// elided while its [`Gate`] is armed and fully enforced otherwise. See
/// the module docs for the soundness argument.
#[derive(Clone, Debug)]
pub struct ProvenView<T> {
    inner: GlobalView<T>,
    gate: Gate,
}

impl<T: Copy> ProvenView<T> {
    /// Number of elements visible through the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the view covers zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Load element `i`: unchecked while the gate is armed, fully
    /// checked (bounds + sanitizer hook) otherwise.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        if self.gate.is_armed() {
            // SAFETY: the gate is only armed during a fast-path replay
            // of a node whose record-time proof established that every
            // index this kernel presents is < len (module docs).
            unsafe { self.inner.elem(i).read() }
        } else {
            self.inner.get(i)
        }
    }

    /// Store `v` into element `i`: unchecked while the gate is armed,
    /// fully checked otherwise.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        if self.gate.is_armed() {
            // SAFETY: as in `get` — armed only under a closed proof.
            unsafe { self.inner.elem(i).write(v) }
        } else {
            self.inner.set(i, v);
        }
    }

    /// Read-modify-write of element `i` on a single thread. Not atomic —
    /// only valid when no other work-item touches `i` concurrently.
    #[inline]
    pub fn update(&self, i: usize, f: impl FnOnce(T) -> T) {
        self.set(i, f(self.get(i)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;

    #[test]
    fn disarmed_gate_is_fully_checked() {
        let b = Buffer::<u32>::from_slice(&[1, 2, 3, 4]);
        let gate = Gate::new();
        let v = gate.view(b.view());
        assert!(!gate.is_armed());
        assert_eq!(v.get(2), 3);
        v.set(2, 9);
        assert_eq!(b.to_vec()[2], 9);
        // Out of bounds raises the typed payload, exactly like the
        // checked accessor it wraps.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| v.get(4)));
        assert!(r.is_err());
    }

    #[test]
    fn armed_gate_reads_and_writes_in_bounds() {
        let b = Buffer::<u32>::from_slice(&[5, 6, 7]);
        let gate = Gate::new();
        let v = gate.view(b.view());
        gate.arm();
        assert!(gate.is_armed());
        assert_eq!(v.get(1), 6);
        v.update(1, |x| x + 10);
        gate.disarm();
        assert_eq!(b.to_vec(), vec![5, 16, 7]);
        assert!(!gate.is_armed());
    }

    #[test]
    fn kill_switch_round_trips() {
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
