//! Runtime error types.
//!
//! These mirror the failure modes the paper runs into while porting Altis
//! to FPGAs: work-group sizes larger than the device limit cause runtime
//! errors (Section 4, "Default work-group sizes"), USM allocations return
//! null on the FPGA boards, and features such as virtual functions are
//! simply unsupported by a device.

use std::fmt;

/// Errors reported by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A kernel was launched with a work-group size larger than the
    /// device's limit (or the kernel's declared `reqd_work_group_size`).
    WorkGroupTooLarge {
        /// Requested work-group size (product over dimensions).
        requested: usize,
        /// Device or kernel-attribute limit that was exceeded.
        limit: usize,
    },
    /// The global range is not divisible by the local range in some
    /// dimension, which SYCL's `nd_range` rejects.
    IndivisibleRange {
        /// Global range in the offending dimension.
        global: usize,
        /// Local range in the offending dimension.
        local: usize,
        /// Offending dimension index (0..3).
        dim: usize,
    },
    /// Requested local (shared) memory exceeds the device capacity.
    LocalMemExceeded {
        /// Bytes requested by the kernel.
        requested: usize,
        /// Device local-memory capacity in bytes.
        limit: usize,
    },
    /// USM allocation is not supported by this device (the paper's
    /// Stratix 10 and Agilex boards return `nullptr`).
    UsmUnsupported {
        /// Device name for diagnostics.
        device: String,
    },
    /// A feature (e.g. virtual functions) is not supported on the device.
    UnsupportedFeature {
        /// Human-readable feature name.
        feature: &'static str,
        /// Device name for diagnostics.
        device: String,
    },
    /// An accessor requested a range that lies outside the buffer.
    AccessOutOfBounds {
        /// Requested element offset.
        offset: usize,
        /// Requested element count.
        len: usize,
        /// Buffer element count.
        buffer_len: usize,
    },
    /// A kernel panicked while executing a work-group. The executor
    /// contains the panic (`catch_unwind` around each group), cancels the
    /// launch's remaining groups, and surfaces this typed error instead of
    /// aborting the process; the worker pool stays usable afterwards.
    KernelPanicked {
        /// Kernel name the submission was given.
        kernel: &'static str,
        /// Linear id of the work-group that panicked (first observed).
        group: usize,
        /// The panic message, when the payload carried one.
        message: String,
    },
    /// A kernel submission failed transiently before any work-group ran
    /// (injected by the fault layer; on real stacks, a driver hiccup).
    /// Absorbed by [`crate::queue::RetryPolicy`]; reported only once the
    /// attempt budget is exhausted.
    TransientLaunchFailure {
        /// Kernel name the submission was given.
        kernel: &'static str,
        /// Submission attempts made before giving up.
        attempts: u32,
    },
    /// A USM allocation returned null on a device whose capability record
    /// says USM works — the transient flavour of the paper's FPGA
    /// `malloc_host` failures, injectable by the fault layer.
    UsmAllocFailed {
        /// Device name for diagnostics.
        device: String,
        /// Requested allocation size in bytes.
        bytes: usize,
    },
    /// The dynamic race sanitizer ([`crate::sanitize`]) observed a
    /// SYCL-memory-model violation during the launch: conflicting
    /// accesses to the same element from different work-groups, from
    /// work-items of one group without a separating barrier, or a read
    /// of local memory that was never written. Carries the first report
    /// in the launch's deterministic (element-sorted) ordering; the full
    /// report list is available via
    /// [`crate::sanitize::take_last_reports`].
    DataRace {
        /// Kernel name the submission was given.
        kernel: &'static str,
        /// Element index within the racing buffer / local array.
        element: usize,
        /// Conflict class.
        kind: crate::sanitize::RaceKind,
    },
    /// The integrity layer ([`crate::integrity`]) found a checksummed
    /// memory region whose contents diverged from their seal — silent
    /// data corruption detected at a launch boundary or by the idle
    /// scrubber. Never retried in place (the corrupt bytes are already
    /// at rest); the suite harness quarantines the run.
    DataCorruption {
        /// Region id (creation-order object id of the Buffer/USM
        /// allocation).
        region: u64,
        /// Page index (multiples of [`crate::integrity::PAGE_BYTES`])
        /// where the first mismatch was found.
        page: usize,
        /// Seal epoch the contents diverged from.
        epoch: u64,
    },
    /// Redundant execution ([`crate::queue::Redundancy`]) could not reach
    /// digest agreement within the replica + retry budget: replicas kept
    /// producing divergent memory states, so no output can be trusted.
    ReplicaDivergence {
        /// Kernel name the submission was given.
        kernel: &'static str,
        /// Replica runs executed before giving up.
        runs: u32,
    },
    /// The launch was stopped by a fired [`crate::cancel::CancelToken`]
    /// (a deadline watchdog, a supervisor shutdown): the executor and
    /// retry loop poll the token at group / chunk / attempt boundaries
    /// and abandon the launch there. Remaining groups are skipped like a
    /// contained panic's, so partial writes are possible — which is why
    /// cancellation is deliberately *not* CPU-fallback eligible.
    Canceled {
        /// Kernel name the submission was given.
        kernel: &'static str,
    },
    /// A declared graph binding disagrees with the access contract the
    /// static prover ([`crate::prove`]) inferred from the launch's index
    /// structure: an undeclared read or write, an over-narrow footprint
    /// (`Item` claimed on a gather), a false dense-coverage claim, or a
    /// stale [`crate::graph::GraphBuilder::output`] declaration nothing
    /// writes. Raised at `Graph::record` time, before anything executes,
    /// so it is never CPU-fallback eligible (there is no launch to
    /// re-run). Each violation string is one deterministic rendered
    /// [`hetero_ir::ContractViolation`].
    BindingContract {
        /// Kernel (or `<outputs>` for stale-output findings) the
        /// contract check ran against.
        kernel: String,
        /// Deterministically ordered rendered violations.
        violations: Vec<String>,
    },
    /// A pipe operation failed because the other endpoint disconnected.
    PipeClosed,
    /// A blocking pipe operation timed out; in this runtime that is
    /// diagnosed as a deadlock between communicating kernels.
    PipeDeadlock {
        /// Seconds waited before giving up.
        waited_secs: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::WorkGroupTooLarge { requested, limit } => write!(
                f,
                "work-group size {requested} exceeds device/kernel limit {limit}"
            ),
            Error::IndivisibleRange { global, local, dim } => write!(
                f,
                "global range {global} not divisible by local range {local} in dim {dim}"
            ),
            Error::LocalMemExceeded { requested, limit } => write!(
                f,
                "local memory request of {requested} B exceeds device capacity {limit} B"
            ),
            Error::UsmUnsupported { device } => {
                write!(f, "USM allocations are not supported on device '{device}'")
            }
            Error::UnsupportedFeature { feature, device } => {
                write!(f, "feature '{feature}' is not supported on device '{device}'")
            }
            Error::AccessOutOfBounds { offset, len, buffer_len } => write!(
                f,
                "accessor range [{offset}, {}) out of bounds for buffer of length {buffer_len}",
                offset + len
            ),
            Error::KernelPanicked { kernel, group, message } => write!(
                f,
                "kernel '{kernel}' panicked in work-group {group}: {message}"
            ),
            Error::TransientLaunchFailure { kernel, attempts } => write!(
                f,
                "kernel '{kernel}' failed to launch after {attempts} attempt(s)"
            ),
            Error::UsmAllocFailed { device, bytes } => write!(
                f,
                "USM allocation of {bytes} B returned null on device '{device}'"
            ),
            Error::DataRace { kernel, element, kind } => write!(
                f,
                "kernel '{kernel}': data race on element {element} ({kind})"
            ),
            Error::DataCorruption { region, page, epoch } => write!(
                f,
                "silent data corruption in region {region} page {page} (seal epoch {epoch})"
            ),
            Error::ReplicaDivergence { kernel, runs } => write!(
                f,
                "kernel '{kernel}': replica digests never converged after {runs} run(s)"
            ),
            Error::Canceled { kernel } => write!(
                f,
                "kernel '{kernel}' canceled before completion"
            ),
            Error::BindingContract { kernel, violations } => write!(
                f,
                "kernel '{kernel}': binding contract violated: {}",
                violations.join("; ")
            ),
            Error::PipeClosed => write!(f, "pipe endpoint disconnected"),
            Error::PipeDeadlock { waited_secs } => write!(
                f,
                "pipe operation blocked for {waited_secs}s; kernels are deadlocked"
            ),
        }
    }
}

impl Error {
    /// Whether a launch failing with this error may safely be re-run on
    /// the CPU device (the paper's porting workflow as a runtime policy,
    /// see [`crate::queue::Fallback`]). Eligible errors are raised before
    /// the kernel produces any side effects — capability mismatches and
    /// uniform per-group resource checks — so a re-launch cannot observe
    /// partial results. [`Error::KernelPanicked`] is deliberately *not*
    /// eligible: groups may already have written global memory.
    pub fn is_cpu_fallback_eligible(&self) -> bool {
        matches!(
            self,
            Error::UsmUnsupported { .. }
                | Error::UnsupportedFeature { .. }
                | Error::LocalMemExceeded { .. }
                | Error::WorkGroupTooLarge { .. }
        )
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used throughout the runtime.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_quantities() {
        let e = Error::WorkGroupTooLarge { requested: 256, limit: 128 };
        assert!(e.to_string().contains("256"));
        assert!(e.to_string().contains("128"));

        let e = Error::IndivisibleRange { global: 100, local: 32, dim: 1 };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("dim 1"));

        let e = Error::UsmUnsupported { device: "Stratix 10".into() };
        assert!(e.to_string().contains("Stratix 10"));
    }

    #[test]
    fn resilience_errors_display_their_context() {
        let e = Error::KernelPanicked {
            kernel: "srad_kernel",
            group: 17,
            message: "index out of range".into(),
        };
        let s = e.to_string();
        assert!(s.contains("srad_kernel") && s.contains("17"), "{s}");

        let e = Error::TransientLaunchFailure { kernel: "nw", attempts: 3 };
        assert!(e.to_string().contains("3 attempt"));

        let e = Error::UsmAllocFailed { device: "Agilex FPGA".into(), bytes: 4096 };
        assert!(e.to_string().contains("4096"));
    }

    #[test]
    fn data_race_displays_triple_and_is_not_fallback_eligible() {
        let e = Error::DataRace {
            kernel: "racy",
            element: 12,
            kind: crate::sanitize::RaceKind::WriteWrite,
        };
        let s = e.to_string();
        assert!(s.contains("racy") && s.contains("12") && s.contains("write-write"), "{s}");
        // Groups already wrote global memory by the time a race is
        // detected, so a CPU re-run could observe partial results.
        assert!(!e.is_cpu_fallback_eligible());
    }

    #[test]
    fn fallback_eligibility_matches_pre_side_effect_errors() {
        assert!(Error::UsmUnsupported { device: "x".into() }.is_cpu_fallback_eligible());
        assert!(Error::LocalMemExceeded { requested: 1, limit: 0 }.is_cpu_fallback_eligible());
        assert!(Error::WorkGroupTooLarge { requested: 256, limit: 128 }
            .is_cpu_fallback_eligible());
        assert!(!Error::KernelPanicked { kernel: "k", group: 0, message: String::new() }
            .is_cpu_fallback_eligible());
        assert!(!Error::PipeClosed.is_cpu_fallback_eligible());
        // Corruption findings name memory that is already wrong; a CPU
        // re-run would consume the same corrupt bytes.
        assert!(!Error::DataCorruption { region: 3, page: 1, epoch: 2 }
            .is_cpu_fallback_eligible());
        assert!(!Error::ReplicaDivergence { kernel: "k", runs: 4 }.is_cpu_fallback_eligible());
        // A canceled launch may have written partially, and re-running it
        // elsewhere would defeat the deadline that canceled it.
        assert!(!Error::Canceled { kernel: "k" }.is_cpu_fallback_eligible());
    }

    #[test]
    fn canceled_displays_kernel_name() {
        let e = Error::Canceled { kernel: "fdtd_step" };
        let s = e.to_string();
        assert!(s.contains("fdtd_step") && s.contains("canceled"), "{s}");
    }

    #[test]
    fn sdc_errors_display_region_and_run_context() {
        let e = Error::DataCorruption { region: 12, page: 3, epoch: 7 };
        let s = e.to_string();
        assert!(s.contains("region 12") && s.contains("page 3") && s.contains("epoch 7"), "{s}");

        let e = Error::ReplicaDivergence { kernel: "nw_diag", runs: 4 };
        let s = e.to_string();
        assert!(s.contains("nw_diag") && s.contains("4 run"), "{s}");
    }

    #[test]
    fn binding_contract_displays_violations_and_is_not_fallback_eligible() {
        let e = Error::BindingContract {
            kernel: "srad_1".into(),
            violations: vec![
                "slot 'c' of 'srad_1': declared ItemDense, inferred Item".into(),
                "slot 'img' of 'srad_1': read but not declared readable".into(),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("srad_1") && s.contains("binding contract"), "{s}");
        assert!(s.contains("ItemDense") && s.contains("not declared readable"), "{s}");
        // Nothing executed; there is no launch to re-run on the CPU.
        assert!(!e.is_cpu_fallback_eligible());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::PipeClosed, Error::PipeClosed);
        assert_ne!(
            Error::PipeClosed,
            Error::PipeDeadlock { waited_secs: 5 }
        );
    }
}
