//! Events and profiling.
//!
//! The paper spends real effort on time measurement: DPCT migrates CUDA
//! events to `std::chrono` calls, which also measure kernel-invocation
//! overhead; the authors convert those back to SYCL events where possible
//! (Section 3.2.1). We reproduce both views: an [`Event`] records the
//! *submit*, *start*, and *end* timestamps of a launch, so callers can ask
//! either for the kernel time (start→end, the SYCL-event view) or the
//! whole-invocation time (submit→end, the `std::chrono` view).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Statistics the executor gathers while running a kernel. These feed
//  tests (e.g. "this kernel executed every work-item exactly once") and
/// the work profiles consumed by the performance models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Work-groups executed.
    pub groups: u64,
    /// Work-items executed (summed over groups and phases).
    pub items: u64,
    /// Local-scope barriers observed.
    pub barriers_local: u64,
    /// Global-scope barriers observed.
    pub barriers_global: u64,
    /// Peak local-memory bytes allocated by any single work-group.
    pub local_bytes: usize,
}

impl LaunchStats {
    /// Accumulate another launch's statistics into this one (counters
    /// add, the local-memory peak takes the max). Used by launch graphs
    /// to aggregate per-node slots into whole-replay totals.
    pub fn merge(&mut self, other: &LaunchStats) {
        self.groups += other.groups;
        self.items += other.items;
        self.barriers_local += other.barriers_local;
        self.barriers_global += other.barriers_global;
        self.local_bytes = self.local_bytes.max(other.local_bytes);
    }
}

/// Profiling timestamps of one kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct ProfilingInfo {
    /// When the launch was submitted to the queue.
    pub submitted: Instant,
    /// When the kernel actually began executing.
    pub started: Instant,
    /// When the kernel finished.
    pub ended: Instant,
    /// Time spent handing the launch to the persistent worker pool
    /// (publishing the job and waking workers) before the submitting
    /// thread began executing work-groups itself. Zero for sequential
    /// launches and for submissions that bypass the pool.
    pub dispatch: Duration,
}

impl ProfilingInfo {
    /// Kernel execution time (the SYCL-event / CUDA-event view). This
    /// window still contains [`ProfilingInfo::dispatch_time`]; subtract
    /// it (see [`ProfilingInfo::compute_time`]) for pure group execution.
    pub fn kernel_time(&self) -> Duration {
        self.ended.duration_since(self.started)
    }

    /// Whole-invocation time including queueing overhead (the
    /// `std::chrono` view DPCT produces).
    pub fn invocation_time(&self) -> Duration {
        self.ended.duration_since(self.submitted)
    }

    /// Launch overhead alone (submit→start).
    pub fn overhead(&self) -> Duration {
        self.started.duration_since(self.submitted)
    }

    /// Pool-dispatch overhead inside the kernel window: the runtime cost
    /// of the launch itself, as opposed to the groups' work. This is the
    /// term the Figure-1 overhead decomposition needs to separate
    /// per-launch runtime cost from kernel cost.
    pub fn dispatch_time(&self) -> Duration {
        self.dispatch
    }

    /// Kernel time with the pool-dispatch overhead removed — the closest
    /// analogue of what a GPU timestamp pair would measure.
    pub fn compute_time(&self) -> Duration {
        self.kernel_time().saturating_sub(self.dispatch)
    }
}

/// Resilience record of one launch: what the retry/fallback/redundancy
/// machinery in [`crate::queue`] did to get the submission to complete.
/// All-quiet launches read `{ attempts: 1, faults_absorbed: 0,
/// fallback_device: None, replicas: 1, divergences_corrected: 0 }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceInfo {
    /// Submission attempts made (≥ 1; > 1 means transient faults or
    /// detected corruption were retried).
    pub attempts: u32,
    /// Transient faults absorbed by [`crate::queue::RetryPolicy`] before
    /// the launch succeeded.
    pub faults_absorbed: u32,
    /// Device name the launch was re-run on when the primary device
    /// rejected it (see [`crate::queue::Fallback`]); `None` when the
    /// primary device executed it.
    pub fallback_device: Option<String>,
    /// Replica runs executed under [`crate::queue::Redundancy`] (1 for
    /// single execution; ≥ 2 when the launch was voted on).
    pub replicas: u32,
    /// Divergent minority digests outvoted by the replica vote.
    pub divergences_corrected: u32,
}

impl Default for ResilienceInfo {
    fn default() -> Self {
        ResilienceInfo {
            attempts: 1,
            faults_absorbed: 0,
            fallback_device: None,
            replicas: 1,
            divergences_corrected: 0,
        }
    }
}

/// Accumulating resilience ledger: per-launch [`ResilienceInfo`] summed
/// across every launch on the queues it is attached to
/// ([`crate::queue::Queue::with_resilience_ledger`]). The serving layer
/// attaches one ledger per tenant, so retries, absorbed faults, replica
/// votes and fallbacks are accounted to the tenant whose job caused
/// them — the per-tenant accounting the multi-tenant scheduler bills
/// and quarantines on. All counters are relaxed atomics; a snapshot is
/// not a consistent cut across counters, which is fine for accounting.
#[derive(Debug, Default)]
pub struct ResilienceLedger {
    launches: AtomicU64,
    attempts: AtomicU64,
    faults_absorbed: AtomicU64,
    replicas: AtomicU64,
    divergences_corrected: AtomicU64,
    fallbacks: AtomicU64,
    errors: AtomicU64,
    canceled: AtomicU64,
}

/// Plain-value snapshot of a [`ResilienceLedger`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// Launches accounted (successful or failed).
    pub launches: u64,
    /// Total submission attempts (≥ `launches`).
    pub attempts: u64,
    /// Transient faults / detected corruptions absorbed by retries.
    pub faults_absorbed: u64,
    /// Replica runs executed under redundancy.
    pub replicas: u64,
    /// Divergent replica digests outvoted.
    pub divergences_corrected: u64,
    /// Launches that completed on the CPU fallback device.
    pub fallbacks: u64,
    /// Launches that ended in a typed error (cancellations included).
    pub errors: u64,
    /// Launches that ended in [`crate::error::Error::Canceled`].
    pub canceled: u64,
}

impl ResilienceLedger {
    /// Fresh all-zero ledger.
    pub fn new() -> Self {
        ResilienceLedger::default()
    }

    /// Account one completed launch's [`ResilienceInfo`].
    pub fn record(&self, info: &ResilienceInfo) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.attempts.fetch_add(u64::from(info.attempts), Ordering::Relaxed);
        self.faults_absorbed
            .fetch_add(u64::from(info.faults_absorbed), Ordering::Relaxed);
        self.replicas.fetch_add(u64::from(info.replicas), Ordering::Relaxed);
        self.divergences_corrected
            .fetch_add(u64::from(info.divergences_corrected), Ordering::Relaxed);
        if info.fallback_device.is_some() {
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Account one launch that failed with a typed error.
    pub fn record_error(&self, e: &crate::error::Error) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
        if matches!(e, crate::error::Error::Canceled { .. }) {
            self.canceled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Account `launches` fast-path graph-replay launches (one attempt
    /// each, no hardening active by fast-path eligibility).
    pub fn record_replay(&self, launches: u64) {
        self.launches.fetch_add(launches, Ordering::Relaxed);
        self.attempts.fetch_add(launches, Ordering::Relaxed);
        self.replicas.fetch_add(launches, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            launches: self.launches.load(Ordering::Relaxed),
            attempts: self.attempts.load(Ordering::Relaxed),
            faults_absorbed: self.faults_absorbed.load(Ordering::Relaxed),
            replicas: self.replicas.load(Ordering::Relaxed),
            divergences_corrected: self.divergences_corrected.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            canceled: self.canceled.load(Ordering::Relaxed),
        }
    }
}

/// Handle returned by every queue submission. Our queues are in-order and
/// synchronous, so the event is complete upon return; `wait()` exists for
/// API fidelity with the SYCL code it reproduces.
#[derive(Debug, Clone)]
pub struct Event {
    profiling: Option<ProfilingInfo>,
    stats: LaunchStats,
    resilience: ResilienceInfo,
    name: &'static str,
}

impl Event {
    pub(crate) fn new(
        name: &'static str,
        profiling: Option<ProfilingInfo>,
        stats: LaunchStats,
    ) -> Self {
        Event { profiling, stats, resilience: ResilienceInfo::default(), name }
    }

    pub(crate) fn with_resilience(mut self, resilience: ResilienceInfo) -> Self {
        self.resilience = resilience;
        self
    }

    /// Block until the work completes. (No-op: submissions are
    /// synchronous; kept so application code reads like the SYCL source.)
    pub fn wait(&self) {}

    /// Kernel name the submission was given.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Profiling timestamps; `None` if the queue was created without
    /// profiling enabled — exactly the trap the paper hits when DPCT's
    /// device-selection helpers forget to enable queue profiling.
    pub fn profiling(&self) -> Option<&ProfilingInfo> {
        self.profiling.as_ref()
    }

    /// Kernel execution time, if profiling was enabled.
    pub fn kernel_time(&self) -> Option<Duration> {
        self.profiling.map(|p| p.kernel_time())
    }

    /// Executor statistics for this launch.
    pub fn stats(&self) -> LaunchStats {
        self.stats
    }

    /// What the retry/fallback machinery did to complete this launch.
    pub fn resilience(&self) -> &ResilienceInfo {
        &self.resilience
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_views_are_ordered() {
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_micros(20);
        let t2 = t1 + Duration::from_micros(100);
        let p = ProfilingInfo {
            submitted: t0,
            started: t1,
            ended: t2,
            dispatch: Duration::from_micros(5),
        };
        assert_eq!(p.kernel_time(), Duration::from_micros(100));
        assert_eq!(p.invocation_time(), Duration::from_micros(120));
        assert_eq!(p.overhead(), Duration::from_micros(20));
        assert!(p.invocation_time() >= p.kernel_time());
        assert_eq!(p.dispatch_time(), Duration::from_micros(5));
        assert_eq!(p.compute_time(), Duration::from_micros(95));
    }

    #[test]
    fn compute_time_saturates_when_dispatch_dominates() {
        let t0 = Instant::now();
        let p = ProfilingInfo {
            submitted: t0,
            started: t0,
            ended: t0 + Duration::from_micros(1),
            dispatch: Duration::from_micros(50),
        };
        assert_eq!(p.compute_time(), Duration::ZERO);
    }

    #[test]
    fn event_without_profiling_yields_none() {
        let e = Event::new("k", None, LaunchStats::default());
        assert!(e.profiling().is_none());
        assert!(e.kernel_time().is_none());
        assert_eq!(e.name(), "k");
    }

    #[test]
    fn resilience_defaults_to_quiet_launch() {
        let e = Event::new("k", None, LaunchStats::default());
        assert_eq!(
            *e.resilience(),
            ResilienceInfo {
                attempts: 1,
                faults_absorbed: 0,
                fallback_device: None,
                replicas: 1,
                divergences_corrected: 0,
            }
        );
        let e = e.with_resilience(ResilienceInfo {
            attempts: 3,
            faults_absorbed: 2,
            fallback_device: Some("cpu".into()),
            replicas: 2,
            divergences_corrected: 1,
        });
        assert_eq!(e.resilience().attempts, 3);
        assert_eq!(e.resilience().fallback_device.as_deref(), Some("cpu"));
        assert_eq!(e.resilience().replicas, 2);
        assert_eq!(e.resilience().divergences_corrected, 1);
    }
}
