//! Events and profiling.
//!
//! The paper spends real effort on time measurement: DPCT migrates CUDA
//! events to `std::chrono` calls, which also measure kernel-invocation
//! overhead; the authors convert those back to SYCL events where possible
//! (Section 3.2.1). We reproduce both views: an [`Event`] records the
//! *submit*, *start*, and *end* timestamps of a launch, so callers can ask
//! either for the kernel time (start→end, the SYCL-event view) or the
//! whole-invocation time (submit→end, the `std::chrono` view).

use std::time::{Duration, Instant};

/// Statistics the executor gathers while running a kernel. These feed
//  tests (e.g. "this kernel executed every work-item exactly once") and
/// the work profiles consumed by the performance models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Work-groups executed.
    pub groups: u64,
    /// Work-items executed (summed over groups and phases).
    pub items: u64,
    /// Local-scope barriers observed.
    pub barriers_local: u64,
    /// Global-scope barriers observed.
    pub barriers_global: u64,
    /// Peak local-memory bytes allocated by any single work-group.
    pub local_bytes: usize,
}

/// Profiling timestamps of one kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct ProfilingInfo {
    /// When the launch was submitted to the queue.
    pub submitted: Instant,
    /// When the kernel actually began executing.
    pub started: Instant,
    /// When the kernel finished.
    pub ended: Instant,
}

impl ProfilingInfo {
    /// Kernel execution time (the SYCL-event / CUDA-event view).
    pub fn kernel_time(&self) -> Duration {
        self.ended.duration_since(self.started)
    }

    /// Whole-invocation time including queueing overhead (the
    /// `std::chrono` view DPCT produces).
    pub fn invocation_time(&self) -> Duration {
        self.ended.duration_since(self.submitted)
    }

    /// Launch overhead alone (submit→start).
    pub fn overhead(&self) -> Duration {
        self.started.duration_since(self.submitted)
    }
}

/// Handle returned by every queue submission. Our queues are in-order and
/// synchronous, so the event is complete upon return; `wait()` exists for
/// API fidelity with the SYCL code it reproduces.
#[derive(Debug, Clone)]
pub struct Event {
    profiling: Option<ProfilingInfo>,
    stats: LaunchStats,
    name: &'static str,
}

impl Event {
    pub(crate) fn new(
        name: &'static str,
        profiling: Option<ProfilingInfo>,
        stats: LaunchStats,
    ) -> Self {
        Event { profiling, stats, name }
    }

    /// Block until the work completes. (No-op: submissions are
    /// synchronous; kept so application code reads like the SYCL source.)
    pub fn wait(&self) {}

    /// Kernel name the submission was given.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Profiling timestamps; `None` if the queue was created without
    /// profiling enabled — exactly the trap the paper hits when DPCT's
    /// device-selection helpers forget to enable queue profiling.
    pub fn profiling(&self) -> Option<&ProfilingInfo> {
        self.profiling.as_ref()
    }

    /// Kernel execution time, if profiling was enabled.
    pub fn kernel_time(&self) -> Option<Duration> {
        self.profiling.map(|p| p.kernel_time())
    }

    /// Executor statistics for this launch.
    pub fn stats(&self) -> LaunchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_views_are_ordered() {
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_micros(20);
        let t2 = t1 + Duration::from_micros(100);
        let p = ProfilingInfo { submitted: t0, started: t1, ended: t2 };
        assert_eq!(p.kernel_time(), Duration::from_micros(100));
        assert_eq!(p.invocation_time(), Duration::from_micros(120));
        assert_eq!(p.overhead(), Duration::from_micros(20));
        assert!(p.invocation_time() >= p.kernel_time());
    }

    #[test]
    fn event_without_profiling_yields_none() {
        let e = Event::new("k", None, LaunchStats::default());
        assert!(e.profiling().is_none());
        assert!(e.kernel_time().is_none());
        assert_eq!(e.name(), "k");
    }
}
