//! Work-group executor: distributes independent work-groups over the
//! persistent host thread pool.
//!
//! SYCL guarantees no synchronisation between work-groups within a kernel,
//! so running groups concurrently is semantics-preserving. Groups are
//! claimed from the pool in adaptive chunks (see [`crate::pool`]), which
//! balances irregular group costs (e.g. Mandelbrot rows near the set take
//! far longer than rows far from it) without serialising thousands of
//! tiny groups on one hot atomic. Per-group statistics are accumulated
//! thread-locally per chunk and folded into the launch totals once per
//! chunk instead of five atomic RMWs per group.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::error::{Error, Result};
use crate::event::LaunchStats;
use crate::fault::{classify_panic, FaultPlan};
use crate::ndrange::{GroupCtx, NdRange};

/// How many worker threads a launch may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One group at a time on the calling thread, in ascending group
    /// order — bit-for-bit deterministic (and a fair stand-in for
    /// Single-Task-style execution).
    Sequential,
    /// Use up to the host's available hardware parallelism (or the
    /// `HETERO_RT_THREADS` override), resolved once and cached by the
    /// pool rather than re-queried per launch.
    Auto,
    /// Use exactly `n` worker threads.
    Threads(usize),
}

impl Parallelism {
    pub(crate) fn thread_count(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => crate::pool::auto_threads(),
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// Plain accumulator for one chunk of groups; folded into the shared
/// atomics once per chunk.
#[derive(Default)]
struct ChunkStats {
    items: u64,
    barriers_local: u64,
    barriers_global: u64,
    local_bytes: usize,
}

impl ChunkStats {
    #[inline]
    fn absorb(&mut self, ctx: &GroupCtx) {
        let (it, bl, bg, lb) = ctx.stats();
        self.items += it;
        self.barriers_local += bl;
        self.barriers_global += bg;
        self.local_bytes = self.local_bytes.max(lb);
    }
}

/// Execute `kernel` once per work-group of `nd`, in parallel, returning
/// aggregated launch statistics.
///
/// `local_mem_limit` bounds each group's shared-memory allocations (the
/// device capacity).
///
/// A panicking kernel does not abort the process: the panic is contained
/// (see [`run_groups_contained`]) and re-raised here on the calling
/// thread as a typed [`Error`] payload.
pub fn run_groups<K>(
    nd: NdRange,
    parallelism: Parallelism,
    local_mem_limit: usize,
    kernel: &K,
) -> LaunchStats
where
    K: Fn(&GroupCtx) + Sync,
{
    run_groups_timed(nd, parallelism, local_mem_limit, kernel).0
}

/// Like [`run_groups`], additionally returning the pool-dispatch
/// duration (time spent handing the launch to the worker pool before the
/// submitting thread began executing groups itself). Queues record this
/// so profiling can split launch overhead from kernel work.
pub fn run_groups_timed<K>(
    nd: NdRange,
    parallelism: Parallelism,
    local_mem_limit: usize,
    kernel: &K,
) -> (LaunchStats, Duration)
where
    K: Fn(&GroupCtx) + Sync,
{
    run_groups_contained(nd, parallelism, local_mem_limit, "<kernel>", None, false, None, kernel)
        .unwrap_or_else(|e| std::panic::panic_any(e))
}

/// The containment-aware executor core every queue launch runs through.
///
/// Each work-group executes under `catch_unwind`; the first panic cancels
/// the launch (remaining groups are skipped via a shared flag, already
/// claimed pool chunks drain cheaply) and is classified into a typed
/// error: typed payloads (injected faults, buffer bounds panics,
/// local-memory capacity panics) unwrap to their [`Error`], anything else
/// becomes [`Error::KernelPanicked`] carrying the panic message. The
/// worker pool is untouched by the panic and stays usable.
///
/// When `plan` is `Some`, the fault layer is consulted before every group
/// (a stateless hash decision, see [`FaultPlan::should_panic`]); when
/// `None`, the per-group cost is one branch — the overhead bounded by the
/// `chaos_overhead` microbenchmark.
///
/// When `sanitize` is true, the launch runs under the dynamic race
/// detector ([`crate::sanitize`]): every group records shadow access
/// logs, merged and analysed here at launch end. Findings surface as a
/// typed [`Error::DataRace`] (first finding in the deterministic report
/// order); the full list is stashed for
/// [`crate::sanitize::take_last_reports`] on the submitting thread.
#[allow(clippy::too_many_arguments)]
pub fn run_groups_contained<K>(
    nd: NdRange,
    parallelism: Parallelism,
    local_mem_limit: usize,
    kernel_name: &'static str,
    plan: Option<&FaultPlan>,
    sanitize: bool,
    cancel: Option<&crate::cancel::CancelToken>,
    kernel: &K,
) -> Result<(LaunchStats, Duration)>
where
    K: Fn(&GroupCtx) + Sync,
{
    crate::fault::install_quiet_hook();
    let num_groups = nd.num_groups();
    let groups_range = nd.groups();
    let threads = parallelism.thread_count().min(num_groups.max(1));
    let session = sanitize.then(|| crate::sanitize::LaunchSession::begin(kernel_name));

    let run_one = |g: usize, acc: &mut ChunkStats| -> std::result::Result<(), Error> {
        let gid = groups_range.delinearize(g);
        // Local-memory SDC flips: `local_ctx` is None unless the plan
        // injects bit-flips, so the common path pays one branch here.
        let local_fault = plan.and_then(|p| p.local_ctx(kernel_name, g));
        let ctx = GroupCtx::new(gid, nd, local_mem_limit, local_fault);
        let prev_recorder = session.as_ref().map(|s| s.install_recorder(g));
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(p) = plan {
                p.maybe_panic(kernel_name, g);
            }
            kernel(&ctx);
        }));
        if let Some(s) = session.as_ref() {
            // Merge the group's shadow log (discarded on panic: the
            // launch already fails with the panic's own error) and
            // restore any enclosing launch's recorder on this thread.
            s.finish_group(prev_recorder.flatten(), r.is_ok());
        }
        match r {
            Ok(()) => {
                acc.absorb(&ctx);
                Ok(())
            }
            Err(payload) => Err(classify_panic(kernel_name, g, payload)),
        }
    };

    // After all groups finished cleanly: cross-group race analysis. The
    // first report (in the deterministic sorted order) becomes the
    // launch's typed error.
    let analyze = |session: Option<crate::sanitize::LaunchSession>| -> Result<()> {
        let Some(s) = session else { return Ok(()) };
        let reports = s.finish();
        let Some(first) = reports.first() else { return Ok(()) };
        let err = Error::DataRace {
            kernel: kernel_name,
            element: first.element,
            kind: first.kind,
        };
        crate::sanitize::stash_reports(reports);
        Err(err)
    };

    if threads <= 1 {
        // Deterministic path: ascending group order on the calling
        // thread, no pool involvement, no atomics.
        let mut acc = ChunkStats::default();
        for g in 0..num_groups {
            if let Some(t) = cancel {
                t.check(kernel_name)?;
            }
            run_one(g, &mut acc)?;
        }
        analyze(session)?;
        return Ok((
            LaunchStats {
                groups: num_groups as u64,
                items: acc.items,
                barriers_local: acc.barriers_local,
                barriers_global: acc.barriers_global,
                local_bytes: acc.local_bytes,
            },
            Duration::ZERO,
        ));
    }

    let items = AtomicU64::new(0);
    let barriers_local = AtomicU64::new(0);
    let barriers_global = AtomicU64::new(0);
    let local_bytes_max = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let failure: Mutex<Option<Error>> = Mutex::new(None);

    let (dispatch, stray_payload) = crate::pool::run_job_catch(num_groups, threads, &|start, end| {
        let mut acc = ChunkStats::default();
        for g in start..end {
            if abort.load(Ordering::Relaxed) {
                break; // launch canceled: drain the claimed chunk cheaply
            }
            let r = match cancel {
                Some(t) => t.check(kernel_name),
                None => Ok(()),
            }
            .and_then(|()| run_one(g, &mut acc));
            if let Err(e) = r {
                abort.store(true, Ordering::Relaxed);
                failure
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .get_or_insert(e);
                break;
            }
        }
        items.fetch_add(acc.items, Ordering::Relaxed);
        barriers_local.fetch_add(acc.barriers_local, Ordering::Relaxed);
        barriers_global.fetch_add(acc.barriers_global, Ordering::Relaxed);
        local_bytes_max.fetch_max(acc.local_bytes, Ordering::Relaxed);
    });

    // Per-group catch_unwind means chunks themselves cannot panic; a
    // stray payload would indicate a bug in the stat folding above.
    if let Some(payload) = stray_payload {
        return Err(classify_panic(kernel_name, usize::MAX, payload));
    }
    if let Some(e) = failure
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
    {
        return Err(e);
    }
    analyze(session)?;

    Ok((
        LaunchStats {
            groups: num_groups as u64,
            items: items.load(Ordering::Relaxed),
            barriers_local: barriers_local.load(Ordering::Relaxed),
            barriers_global: barriers_global.load(Ordering::Relaxed),
            local_bytes: local_bytes_max.load(Ordering::Relaxed),
        },
        dispatch,
    ))
}

/// The pre-pool executor: spawns a fresh `std::thread::scope` with N OS
/// threads on every call and hands groups out one at a time through a hot
/// atomic. Retained solely as the baseline for the launch-overhead
/// microbenchmark (`launch_storm`) so the pool's win stays measurable;
/// no queue path uses it.
pub fn run_groups_spawning<K>(
    nd: NdRange,
    parallelism: Parallelism,
    local_mem_limit: usize,
    kernel: &K,
) -> LaunchStats
where
    K: Fn(&GroupCtx) + Sync,
{
    let num_groups = nd.num_groups();
    let groups_range = nd.groups();
    let next = AtomicUsize::new(0);
    let items = AtomicU64::new(0);
    let barriers_local = AtomicU64::new(0);
    let barriers_global = AtomicU64::new(0);
    let local_bytes_max = AtomicUsize::new(0);

    let worker = || loop {
        let g = next.fetch_add(1, Ordering::Relaxed);
        if g >= num_groups {
            break;
        }
        let gid = groups_range.delinearize(g);
        let ctx = GroupCtx::new(gid, nd, local_mem_limit, None);
        kernel(&ctx);
        let (it, bl, bg, lb) = ctx.stats();
        items.fetch_add(it, Ordering::Relaxed);
        barriers_local.fetch_add(bl, Ordering::Relaxed);
        barriers_global.fetch_add(bg, Ordering::Relaxed);
        local_bytes_max.fetch_max(lb, Ordering::Relaxed);
    };

    let threads = parallelism.thread_count().min(num_groups.max(1));
    if threads <= 1 {
        worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(worker);
            }
        });
    }

    LaunchStats {
        groups: num_groups as u64,
        items: items.load(Ordering::Relaxed),
        barriers_local: barriers_local.load(Ordering::Relaxed),
        barriers_global: barriers_global.load(Ordering::Relaxed),
        local_bytes: local_bytes_max.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::ndrange::FenceSpace;

    #[test]
    fn all_groups_execute_exactly_once() {
        let nd = NdRange::d1(1024, 32);
        let b = Buffer::<u32>::new(nd.num_groups());
        let v = b.view();
        let stats = run_groups(nd, Parallelism::Auto, 1 << 20, &|ctx: &GroupCtx| {
            v.atomic_add_u32(ctx.group_linear(), 1);
        });
        assert_eq!(stats.groups, 32);
        assert!(b.to_vec().iter().all(|&c| c == 1));
    }

    #[test]
    fn item_counts_aggregate_over_phases() {
        let nd = NdRange::d1(64, 16);
        let stats = run_groups(nd, Parallelism::Sequential, 1 << 20, &|ctx: &GroupCtx| {
            ctx.items(|_| {});
            ctx.barrier(FenceSpace::Local);
            ctx.items(|_| {});
        });
        // Two phases × 64 items.
        assert_eq!(stats.items, 128);
        assert_eq!(stats.barriers_local, 4); // one per group
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let nd = NdRange::d1(4096, 64);
        let run = |p| {
            let b = Buffer::<f32>::new(4096);
            let v = b.view();
            run_groups(nd, p, 1 << 20, &|ctx: &GroupCtx| {
                ctx.items(|it| {
                    let i = it.global_linear;
                    v.set(i, (i as f32).sqrt());
                });
            });
            b.to_vec()
        };
        assert_eq!(run(Parallelism::Sequential), run(Parallelism::Threads(8)));
    }

    #[test]
    fn pooled_and_spawning_executors_agree() {
        let nd = NdRange::d1(2048, 32);
        let run = |pooled: bool| {
            let b = Buffer::<u64>::new(2048);
            let v = b.view();
            let k = |ctx: &GroupCtx| {
                ctx.items(|it| {
                    let i = it.global_linear;
                    v.set(i, (i as u64).wrapping_mul(2654435761));
                });
            };
            let stats = if pooled {
                run_groups(nd, Parallelism::Auto, 1 << 20, &k)
            } else {
                run_groups_spawning(nd, Parallelism::Auto, 1 << 20, &k)
            };
            (stats, b.to_vec())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn stats_identical_across_parallelism_modes() {
        // Per-chunk folding must produce the same totals as per-group
        // accumulation, whatever the chunk boundaries were.
        let nd = NdRange::d1(4096, 16);
        let run = |p| {
            run_groups(nd, p, 1 << 20, &|ctx: &GroupCtx| {
                let _l = ctx.local_array::<u32>(64);
                ctx.items(|_| {});
                ctx.barrier(FenceSpace::Local);
                ctx.items(|_| {});
                ctx.barrier(FenceSpace::Global);
            })
        };
        let seq = run(Parallelism::Sequential);
        assert_eq!(seq, run(Parallelism::Auto));
        assert_eq!(seq, run(Parallelism::Threads(3)));
        assert_eq!(seq.items, 8192);
        assert_eq!(seq.barriers_local, 256);
        assert_eq!(seq.barriers_global, 256);
        assert_eq!(seq.local_bytes, 256);
    }

    #[test]
    fn local_bytes_reports_group_peak() {
        let nd = NdRange::d1(8, 4);
        let stats = run_groups(nd, Parallelism::Sequential, 1 << 20, &|ctx: &GroupCtx| {
            let _a = ctx.local_array::<f32>(100); // 400 B per group
        });
        assert_eq!(stats.local_bytes, 400);
    }

    #[test]
    fn uneven_group_costs_are_balanced() {
        // Groups with wildly different costs must all complete; the
        // chunk-claiming scheduler handles the imbalance.
        let nd = NdRange::d1(64, 1);
        let b = Buffer::<u32>::new(64);
        let v = b.view();
        run_groups(nd, Parallelism::Threads(4), 1 << 20, &|ctx: &GroupCtx| {
            let g = ctx.group_linear();
            let mut acc = 0u64;
            for i in 0..(g * 1000) {
                acc = acc.wrapping_add(i as u64);
            }
            v.set(g, (acc as u32).wrapping_add(1).max(1));
        });
        assert!(b.to_vec().iter().all(|&x| x != 0));
    }

    #[test]
    fn kernel_panic_contained_in_both_modes() {
        for p in [Parallelism::Sequential, Parallelism::Auto, Parallelism::Threads(3)] {
            let nd = NdRange::d1(1024, 32);
            let e = run_groups_contained(nd, p, 1 << 20, "boomer", None, false, None, &|ctx: &GroupCtx| {
                if ctx.group_linear() == 7 {
                    panic!("deliberate kernel bug");
                }
            })
            .unwrap_err();
            match e {
                crate::error::Error::KernelPanicked { kernel, group, message } => {
                    assert_eq!(kernel, "boomer");
                    // Sequential hits group 7 exactly; pooled may observe
                    // it from whichever chunk got there first.
                    if p == Parallelism::Sequential {
                        assert_eq!(group, 7);
                    }
                    assert!(message.contains("deliberate"), "{message}");
                }
                other => panic!("expected KernelPanicked, got {other:?}"),
            }

            // The executor (and pool) must still run clean work.
            let b = Buffer::<u32>::new(64);
            let v = b.view();
            run_groups(NdRange::d1(64, 8), p, 1 << 20, &|ctx: &GroupCtx| {
                ctx.items(|it| v.set(it.global_linear, 1));
            });
            assert!(b.to_vec().iter().all(|&x| x == 1));
        }
    }

    #[test]
    fn injected_fault_hits_its_target_group() {
        let plan = crate::fault::FaultPlan::panic_at("victim", 3);
        let nd = NdRange::d1(512, 64);
        let e = run_groups_contained(
            nd,
            Parallelism::Sequential,
            1 << 20,
            "victim",
            Some(&plan),
            false,
            None,
            &|_ctx: &GroupCtx| {},
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::error::Error::KernelPanicked { kernel: "victim", group: 3, .. }
            ),
            "{e:?}"
        );

        // Same plan, different kernel name: untouched.
        let r = run_groups_contained(
            nd,
            Parallelism::Sequential,
            1 << 20,
            "bystander",
            Some(&plan),
            false,
            None,
            &|_ctx: &GroupCtx| {},
        );
        assert!(r.is_ok());
    }

    #[test]
    fn typed_panic_payloads_become_their_error() {
        // A buffer OOB inside a kernel surfaces as AccessOutOfBounds, not
        // as a generic KernelPanicked.
        let b = Buffer::<u32>::new(8);
        let v = b.view();
        let e = run_groups_contained(
            NdRange::d1(16, 16),
            Parallelism::Sequential,
            1 << 20,
            "oob",
            None,
            false,
            None,
            &|ctx: &GroupCtx| {
                ctx.items(|it| v.set(it.global_linear, 1)); // 8..15 out of bounds
            },
        )
        .unwrap_err();
        assert!(
            matches!(e, crate::error::Error::AccessOutOfBounds { offset: 8, .. }),
            "{e:?}"
        );
    }

    #[test]
    fn dispatch_time_zero_for_sequential() {
        let nd = NdRange::d1(256, 16);
        let (_, d) = run_groups_timed(nd, Parallelism::Sequential, 1 << 20, &|ctx: &GroupCtx| {
            ctx.items(|_| {});
        });
        assert_eq!(d, Duration::ZERO);
    }
}
