//! Work-group executor: distributes independent work-groups over host
//! threads.
//!
//! SYCL guarantees no synchronisation between work-groups within a kernel,
//! so running groups concurrently on a thread pool is semantics-preserving.
//! Groups are handed out through an atomic counter (work-stealing-lite),
//! which balances irregular group costs (e.g. Mandelbrot rows near the set
//! take far longer than rows far from it).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::event::LaunchStats;
use crate::ndrange::{GroupCtx, NdRange};

/// How many worker threads a launch may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One group at a time on the calling thread (deterministic debugging
    /// and a fair stand-in for Single-Task-style execution).
    Sequential,
    /// Use up to the host's available hardware parallelism.
    Auto,
    /// Use exactly `n` worker threads.
    Threads(usize),
}

impl Parallelism {
    fn thread_count(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// Execute `kernel` once per work-group of `nd`, in parallel, returning
/// aggregated launch statistics.
///
/// `local_mem_limit` bounds each group's shared-memory allocations (the
/// device capacity).
pub fn run_groups<K>(
    nd: NdRange,
    parallelism: Parallelism,
    local_mem_limit: usize,
    kernel: &K,
) -> LaunchStats
where
    K: Fn(&GroupCtx) + Sync,
{
    let num_groups = nd.num_groups();
    let groups_range = nd.groups();
    let next = AtomicUsize::new(0);
    let items = AtomicU64::new(0);
    let barriers_local = AtomicU64::new(0);
    let barriers_global = AtomicU64::new(0);
    let local_bytes_max = AtomicUsize::new(0);

    let worker = || {
        loop {
            let g = next.fetch_add(1, Ordering::Relaxed);
            if g >= num_groups {
                break;
            }
            let gid = groups_range.delinearize(g);
            let ctx = GroupCtx::new(gid, nd, local_mem_limit);
            kernel(&ctx);
            let (it, bl, bg, lb) = ctx.stats();
            items.fetch_add(it, Ordering::Relaxed);
            barriers_local.fetch_add(bl, Ordering::Relaxed);
            barriers_global.fetch_add(bg, Ordering::Relaxed);
            local_bytes_max.fetch_max(lb, Ordering::Relaxed);
        }
    };

    let threads = parallelism.thread_count().min(num_groups.max(1));
    if threads <= 1 {
        worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(worker);
            }
        });
    }

    LaunchStats {
        groups: num_groups as u64,
        items: items.load(Ordering::Relaxed),
        barriers_local: barriers_local.load(Ordering::Relaxed),
        barriers_global: barriers_global.load(Ordering::Relaxed),
        local_bytes: local_bytes_max.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::ndrange::FenceSpace;

    #[test]
    fn all_groups_execute_exactly_once() {
        let nd = NdRange::d1(1024, 32);
        let b = Buffer::<u32>::new(nd.num_groups());
        let v = b.view();
        let stats = run_groups(nd, Parallelism::Auto, 1 << 20, &|ctx: &GroupCtx| {
            v.atomic_add_u32(ctx.group_linear(), 1);
        });
        assert_eq!(stats.groups, 32);
        assert!(b.to_vec().iter().all(|&c| c == 1));
    }

    #[test]
    fn item_counts_aggregate_over_phases() {
        let nd = NdRange::d1(64, 16);
        let stats = run_groups(nd, Parallelism::Sequential, 1 << 20, &|ctx: &GroupCtx| {
            ctx.items(|_| {});
            ctx.barrier(FenceSpace::Local);
            ctx.items(|_| {});
        });
        // Two phases × 64 items.
        assert_eq!(stats.items, 128);
        assert_eq!(stats.barriers_local, 4); // one per group
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let nd = NdRange::d1(4096, 64);
        let run = |p| {
            let b = Buffer::<f32>::new(4096);
            let v = b.view();
            run_groups(nd, p, 1 << 20, &|ctx: &GroupCtx| {
                ctx.items(|it| {
                    let i = it.global_linear;
                    v.set(i, (i as f32).sqrt());
                });
            });
            b.to_vec()
        };
        assert_eq!(run(Parallelism::Sequential), run(Parallelism::Threads(8)));
    }

    #[test]
    fn local_bytes_reports_group_peak() {
        let nd = NdRange::d1(8, 4);
        let stats = run_groups(nd, Parallelism::Sequential, 1 << 20, &|ctx: &GroupCtx| {
            let _a = ctx.local_array::<f32>(100); // 400 B per group
        });
        assert_eq!(stats.local_bytes, 400);
    }

    #[test]
    fn uneven_group_costs_are_balanced() {
        // Groups with wildly different costs must all complete; the
        // atomic-counter scheduler handles the imbalance.
        let nd = NdRange::d1(64, 1);
        let b = Buffer::<u32>::new(64);
        let v = b.view();
        run_groups(nd, Parallelism::Threads(4), 1 << 20, &|ctx: &GroupCtx| {
            let g = ctx.group_linear();
            let mut acc = 0u64;
            for i in 0..(g * 1000) {
                acc = acc.wrapping_add(i as u64);
            }
            v.set(g, (acc as u32).wrapping_add(1).max(1));
        });
        assert!(b.to_vec().iter().all(|&x| x != 0));
    }
}
