//! Deterministic, seeded fault injection.
//!
//! The paper's FPGA port is a story of runtime failures survived:
//! `sycl::malloc_host` returning null on Stratix 10/Agilex (Section 4),
//! work-group sizes exceeding device limits, kernels crashing on
//! unsupported features. This module lets tests and the chaos harness
//! *provoke* those failure modes on demand, reproducibly:
//!
//! * a [`FaultPlan`] is seeded (the same PCG32/SplitMix64 generators that
//!   drive `altis-data` input generation) and draws each injection
//!   decision deterministically from the seed;
//! * plans are attached per-queue ([`crate::Queue::with_fault_plan`]) or
//!   process-wide through the environment
//!   (`HETERO_RT_FAULT_SEED` / `HETERO_RT_FAULT_RATE`, see
//!   [`FaultPlan::from_env`]);
//! * four fault kinds are injectable — USM allocation failure, transient
//!   launch failure, a kernel panic at a chosen (kernel, work-group), and
//!   pipe stalls — each mapping to a failure mode the paper reports.
//!
//! # Determinism
//!
//! Kernel-panic decisions are *stateless*: they hash (seed, kernel name,
//! group index), so the same plan panics the same groups of the same
//! kernels regardless of how the pool schedules them. Allocation, launch,
//! and pipe-stall decisions are *sequenced*: each consumes one draw from a
//! shared counter, so they are reproducible for a fixed submission order
//! (the common case: a single host thread driving a queue).
//!
//! # Containment contract
//!
//! An injected kernel panic unwinds with a typed payload that the
//! executor's containment layer (see [`crate::executor`]) converts back
//! into [`Error::KernelPanicked`]. The panic never crosses a pool-worker
//! boundary unhandled and never poisons the pool; tests launch clean
//! kernels immediately after an injected panic to prove it.

use std::panic::PanicHookInfo;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock, PoisonError};
use std::time::Duration;

use altis_data::rng::splitmix64;

use crate::error::Error;

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A USM allocation returns null (`Error::UsmAllocFailed`) — the
    /// paper's Stratix 10/Agilex `malloc_host` behaviour, injected even on
    /// devices whose capability record says USM works.
    AllocFail,
    /// A kernel submission fails before any group runs
    /// (`Error::TransientLaunchFailure`); absorbed by
    /// [`crate::queue::RetryPolicy`]. Because the failure precedes all
    /// side effects, retrying is always safe.
    LaunchTransient,
    /// A kernel panics while executing a specific work-group
    /// (`Error::KernelPanicked`); contained by the executor, never
    /// retried (groups may already have produced side effects).
    KernelPanic,
    /// A blocking pipe operation stalls for a few milliseconds before
    /// proceeding, adding the backpressure jitter that flushes out
    /// marginal kernel graphs (diagnosed as `Error::PipeDeadlock` by the
    /// pipe timeout when the graph cannot absorb it).
    PipeStall,
    /// Silent single/multi bit-flips in checksummed memory regions
    /// (Buffer/USM) at launch boundaries, plus flips in `LocalArena`
    /// scratch — no panic, no error, just wrong bytes. Applied by the
    /// integrity layer ([`crate::integrity`]); the *detection* of these
    /// is the whole point of `HETERO_RT_FAULT_MODE=sdc`.
    BitFlip,
    /// A "stuck-at" page: one bit position of one seed-chosen page is
    /// OR-masked at every launch boundary, modeling a failed memory
    /// cell. Deterministic across replicas, so redundancy cannot vote it
    /// away — only the suite's output validators catch it.
    StuckPage,
}

impl FaultKind {
    /// The fail-stop kinds [`FaultPlan::new`] enables: the original
    /// chaos-layer fault model, kept exact so existing seeded draw
    /// sequences replay unchanged.
    const ALL: [FaultKind; 4] = [
        FaultKind::AllocFail,
        FaultKind::LaunchTransient,
        FaultKind::KernelPanic,
        FaultKind::PipeStall,
    ];

    /// The silent-corruption kinds [`FaultPlan::sdc`] enables.
    const SDC: [FaultKind; 2] = [FaultKind::BitFlip, FaultKind::StuckPage];

    fn bit(self) -> u8 {
        match self {
            FaultKind::AllocFail => 1,
            FaultKind::LaunchTransient => 2,
            FaultKind::KernelPanic => 4,
            FaultKind::PipeStall => 8,
            FaultKind::BitFlip => 16,
            FaultKind::StuckPage => 32,
        }
    }
}

/// Wrapper marking a panic payload as a *deliberately injected* fault, so
/// the quiet panic hook suppresses it entirely (a chaos run at rate 0.1
/// must not flood stderr) while genuine typed panics still get one line.
pub(crate) struct Injected(pub(crate) Error);

/// Salt constants separating the draw streams of the sequenced sites.
const SALT_ALLOC: u64 = 0x0041_4c4c_4f43;
const SALT_LAUNCH: u64 = 0x4c41_554e_4348;
const SALT_STALL: u64 = 0x0053_5441_4c4c;
const SALT_FLIP_ENTRY: u64 = 0x464c_4950_0045;
const SALT_FLIP_EXIT: u64 = 0x464c_4950_0058;
const SALT_SITE: u64 = 0x0053_4954_4500;
const SALT_STUCK: u64 = 0x5354_5543_4b00;
const SALT_LOCAL: u64 = 0x4c4f_4341_4c00;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// FNV-1a hash of a kernel name, mixed into stateless panic draws so
/// different kernels fault at different groups under the same seed.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic fault-injection plan.
///
/// Cheap to share: queues hold it behind an [`Arc`] and clones of a queue
/// observe the same draw sequence. A plan with rate `0.0` and no targeted
/// faults never injects anything (the configuration the overhead
/// microbenchmark measures).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    mask: u8,
    /// Sequenced-draw counter (alloc / launch / stall sites).
    draws: AtomicU64,
    /// Total faults injected so far, for observability and tests.
    injected: AtomicU64,
    /// Deterministic targeted panic: (kernel, group linear id).
    target_panic: Option<(&'static str, usize)>,
    /// Fail the next N launch submissions unconditionally (then stop):
    /// the deterministic way to test bounded retry.
    transient_burst: AtomicU64,
    /// One-shot targeted bit-flips (region id, byte offset, bit): the
    /// deterministic input for exact `DataCorruption{region, page}`
    /// true-positive tests. Consumed at the next launch entry.
    flip_targets: Mutex<Vec<(u64, usize, u8)>>,
    /// The stuck-at site (region id, page, bit) once chosen — targeted
    /// via [`FaultPlan::with_stuck_at`] or lazily seed-derived at first
    /// application.
    stuck: Mutex<Option<(u64, usize, u8)>>,
    /// Bit-flips actually applied (observability and tests).
    flips: AtomicU64,
    /// Launch boundaries at which the stuck page re-asserted real bits.
    stuck_hits: AtomicU64,
}

impl FaultPlan {
    /// A plan injecting every [`FaultKind`] at probability `rate` per
    /// injection point, driven by `seed`.
    pub fn new(seed: u64, rate: f64) -> Self {
        install_quiet_hook();
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            mask: FaultKind::ALL.iter().fold(0, |m, k| m | k.bit()),
            draws: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            target_panic: None,
            transient_burst: AtomicU64::new(0),
            flip_targets: Mutex::new(Vec::new()),
            stuck: Mutex::new(None),
            flips: AtomicU64::new(0),
            stuck_hits: AtomicU64::new(0),
        }
    }

    /// A plan injecting only *silent* faults (bit-flips and a stuck-at
    /// page) at probability `rate` per launch boundary. The fail-stop
    /// kinds stay off so every wrong answer is genuinely silent — the
    /// configuration `HETERO_RT_FAULT_MODE=sdc` and the `sdc` binary
    /// drive.
    pub fn sdc(seed: u64, rate: f64) -> Self {
        FaultPlan::new(seed, rate).with_kinds(&FaultKind::SDC)
    }

    /// Restrict the plan to a subset of fault kinds.
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.mask = kinds.iter().fold(0, |m, k| m | k.bit());
        self
    }

    /// A plan that panics deterministically when `kernel` executes work
    /// group `group`, and injects nothing else.
    pub fn panic_at(kernel: &'static str, group: usize) -> Self {
        let mut p = FaultPlan::new(0, 0.0).with_kinds(&[]);
        p.target_panic = Some((kernel, group));
        p
    }

    /// A plan whose next `n` launch submissions fail transiently (and
    /// nothing else): the deterministic input for retry-policy tests.
    pub fn transient_burst(n: u64) -> Self {
        let p = FaultPlan::new(0, 0.0).with_kinds(&[]);
        p.transient_burst.store(n, Ordering::Relaxed);
        p
    }

    /// A plan that flips exactly `bit` of byte `byte` in region `region`
    /// at the next launch entry, and injects nothing else: the
    /// deterministic input for exact `DataCorruption{region, page}`
    /// tests.
    pub fn flip_at(region: u64, byte: usize, bit: u8) -> Self {
        FaultPlan::new(0, 0.0).with_kinds(&[]).with_flip_at(region, byte, bit)
    }

    /// Queue an additional one-shot targeted flip.
    pub fn with_flip_at(self, region: u64, byte: usize, bit: u8) -> Self {
        lock(&self.flip_targets).push((region, byte, bit));
        self
    }

    /// Pin the stuck-at site instead of letting the seed choose one.
    pub fn with_stuck_at(self, region: u64, page: usize, bit: u8) -> Self {
        *lock(&self.stuck) = Some((region, page, bit & 7));
        self
    }

    /// Build a plan from `HETERO_RT_FAULT_SEED` / `HETERO_RT_FAULT_RATE`.
    /// Returns `None` unless both are set and parse (`rate` in `[0, 1]`).
    /// `HETERO_RT_FAULT_MODE=sdc` selects the silent-corruption kinds
    /// (see [`FaultPlan::sdc`]) instead of the fail-stop default.
    pub fn from_env() -> Option<FaultPlan> {
        let seed: u64 = std::env::var("HETERO_RT_FAULT_SEED").ok()?.trim().parse().ok()?;
        let rate: f64 = std::env::var("HETERO_RT_FAULT_RATE").ok()?.trim().parse().ok()?;
        if !(0.0..=1.0).contains(&rate) {
            return None;
        }
        match std::env::var("HETERO_RT_FAULT_MODE").ok().as_deref().map(str::trim) {
            Some("sdc") => Some(FaultPlan::sdc(seed, rate)),
            _ => Some(FaultPlan::new(seed, rate)),
        }
    }

    /// The process-wide plan from the environment, resolved once. Queues
    /// pick this up automatically at construction, which is how the chaos
    /// smoke matrix drives unmodified application code.
    pub fn env_plan() -> Option<Arc<FaultPlan>> {
        static ENV_PLAN: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
        ENV_PLAN.get_or_init(|| FaultPlan::from_env().map(Arc::new)).clone()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's per-site injection probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Faults injected so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn enabled(&self, kind: FaultKind) -> bool {
        self.mask & kind.bit() != 0
    }

    /// One sequenced deterministic draw in `[0, 1)` for `salt`.
    fn draw(&self, salt: u64) -> f64 {
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        let mut s = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt)
            .wrapping_add(n.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn hit(&self, kind: FaultKind, salt: u64) -> bool {
        if !self.enabled(kind) || self.rate <= 0.0 {
            return false;
        }
        let hit = self.draw(salt) < self.rate;
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Should the next USM allocation return null?
    pub fn should_fail_alloc(&self) -> bool {
        self.hit(FaultKind::AllocFail, SALT_ALLOC)
    }

    /// Should this kernel submission fail transiently (before any group
    /// executes)?
    pub fn should_fail_launch(&self, _kernel: &str) -> bool {
        if self.transient_burst.load(Ordering::Relaxed) > 0 {
            // Deterministic burst mode: consume one failure.
            let prev = self.transient_burst.fetch_sub(1, Ordering::Relaxed);
            if prev > 0 {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            // Lost the race past zero; restore and fall through.
            self.transient_burst.fetch_add(1, Ordering::Relaxed);
        }
        self.hit(FaultKind::LaunchTransient, SALT_LAUNCH)
    }

    /// Stateless decision: does `kernel` panic at `group`? Independent of
    /// pool scheduling, so a chaos run is reproducible group-for-group.
    pub fn should_panic(&self, kernel: &str, group: usize) -> bool {
        if let Some((k, g)) = self.target_panic {
            if k == kernel && g == group {
                return true;
            }
        }
        if !self.enabled(FaultKind::KernelPanic) || self.rate <= 0.0 {
            return false;
        }
        let mut s = self.seed ^ fnv1a(kernel) ^ (group as u64).wrapping_mul(0xA24B_AED4_963E_E407);
        let u = (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.rate
    }

    /// Panic with a typed, injected payload if the plan says `kernel`
    /// faults at `group`. Called by the executor inside its containment
    /// wrapper, so the panic surfaces as [`Error::KernelPanicked`].
    pub(crate) fn maybe_panic(&self, kernel: &'static str, group: usize) {
        if self.should_panic(kernel, group) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            std::panic::panic_any(Injected(Error::KernelPanicked {
                kernel,
                group,
                message: "injected fault".to_string(),
            }));
        }
    }

    /// Sleep for a short deterministic stall if the plan injects one at
    /// this pipe operation. Returns the stall duration (zero if none),
    /// which tests use to assert injection happened.
    pub fn maybe_stall(&self) -> Duration {
        if !self.enabled(FaultKind::PipeStall) || self.rate <= 0.0 {
            return Duration::ZERO;
        }
        let u = self.draw(SALT_STALL);
        if u >= self.rate {
            return Duration::ZERO;
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        // 1–5 ms, derived from the draw so the stall length is as
        // reproducible as the decision.
        let ms = 1 + ((u * 1e9) as u64 % 5);
        let d = Duration::from_millis(ms);
        std::thread::sleep(d);
        d
    }

    // --- silent-corruption draws (consumed by crate::integrity) ---------

    /// Does this plan inject silent faults at all? Queues constructed
    /// from an SDC environment plan arm the integrity layer and default
    /// to redundant execution when this is set.
    pub fn is_sdc(&self) -> bool {
        self.mask & (FaultKind::BitFlip.bit() | FaultKind::StuckPage.bit()) != 0
    }

    /// Sequenced decision: flip bits at this launch boundary? Entry and
    /// exit use separate salts so the two streams stay independent.
    pub(crate) fn wants_flip(&self, exit: bool) -> bool {
        if !self.enabled(FaultKind::BitFlip) || self.rate <= 0.0 {
            return false;
        }
        self.draw(if exit { SALT_FLIP_EXIT } else { SALT_FLIP_ENTRY }) < self.rate
    }

    /// One sequenced uniform site draw in `[0, n)`.
    pub(crate) fn pick(&self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        ((self.draw(SALT_SITE) * n as f64) as usize).min(n - 1)
    }

    pub(crate) fn take_flip_targets(&self) -> Vec<(u64, usize, u8)> {
        std::mem::take(&mut *lock(&self.flip_targets))
    }

    pub(crate) fn note_flips(&self, n: u64) {
        self.flips.fetch_add(n, Ordering::Relaxed);
        self.injected.fetch_add(n, Ordering::Relaxed);
    }

    /// Bit-flips applied so far (targeted + seeded, global + local).
    pub fn flips_injected(&self) -> u64 {
        self.flips.load(Ordering::Relaxed)
    }

    pub(crate) fn stuck_slot(&self) -> MutexGuard<'_, Option<(u64, usize, u8)>> {
        lock(&self.stuck)
    }

    /// Stateless decision: does this seed have a stuck-at page at all?
    /// Boosted above the base rate so a handful of seeds exercises the
    /// quarantine path without drowning every run in sealed-in faults.
    pub(crate) fn stuck_wanted(&self) -> bool {
        if !self.enabled(FaultKind::StuckPage) || self.rate <= 0.0 {
            return false;
        }
        let mut s = self.seed ^ SALT_STUCK;
        let u = (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < (self.rate * 4.0).min(1.0)
    }

    /// Stateless site draws for the stuck page: (region index, page
    /// index, bit), reduced modulo the live region/page counts by the
    /// caller.
    pub(crate) fn stuck_draws(&self) -> (usize, usize, u8) {
        let mut s = self.seed ^ SALT_STUCK ^ 0x1;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        let c = splitmix64(&mut s);
        (a as usize, b as usize, (c % 8) as u8)
    }

    pub(crate) fn note_stuck(&self) {
        self.stuck_hits.fetch_add(1, Ordering::Relaxed);
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Launch boundaries at which the stuck page actually changed bits.
    pub fn stuck_applications(&self) -> u64 {
        self.stuck_hits.load(Ordering::Relaxed)
    }

    /// Per-(kernel, group) context for local-memory flips, or `None`
    /// when the plan injects no bit-flips (the executor then pays
    /// nothing per group). Copies the mixed seed out so `GroupCtx` need
    /// not borrow the plan.
    pub(crate) fn local_ctx(&self, kernel: &str, group: usize) -> Option<LocalFaultCtx> {
        if !self.enabled(FaultKind::BitFlip) || self.rate <= 0.0 {
            return None;
        }
        Some(LocalFaultCtx {
            seed: self.seed
                ^ fnv1a(kernel)
                ^ (group as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)
                ^ SALT_LOCAL,
            // Local scratch has vastly more (group x allocation) sites
            // than there are launch boundaries; scale the per-site
            // probability down so local corruption stays an event, not
            // the steady state.
            rate: self.rate / 1024.0,
        })
    }
}

/// Stateless local-memory flip decisions for one (kernel, work-group):
/// deterministic regardless of pool scheduling — and therefore identical
/// across redundant replicas, modeling a stuck local cell that voting
/// cannot remove (the suite validators are the layer that catches it).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LocalFaultCtx {
    seed: u64,
    rate: f64,
}

impl LocalFaultCtx {
    /// Should the `alloc_index`-th local allocation of this group carry a
    /// flipped bit, and where? Returns (element index, bit in byte 0).
    pub(crate) fn flip_for_alloc(&self, alloc_index: u32, len: usize) -> Option<(usize, u8)> {
        if len == 0 {
            return None;
        }
        let mut s = self.seed ^ (alloc_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let u = (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u >= self.rate {
            return None;
        }
        let elem = (splitmix64(&mut s) as usize) % len;
        let bit = (splitmix64(&mut s) % 8) as u8;
        Some((elem, bit))
    }
}

/// Convert a caught panic payload into a typed runtime error.
///
/// * payloads carrying an [`Injected`] fault or a plain [`Error`] (the
///   typed panics raised by buffer/local-memory bounds checks) unwrap to
///   that error;
/// * anything else (a `panic!` in user kernel code) becomes
///   [`Error::KernelPanicked`] with the panic message preserved.
pub fn classify_panic(
    kernel: &'static str,
    group: usize,
    payload: Box<dyn std::any::Any + Send>,
) -> Error {
    let payload = match payload.downcast::<Injected>() {
        Ok(inj) => return inj.0,
        Err(p) => p,
    };
    let payload = match payload.downcast::<Error>() {
        Ok(e) => return *e,
        Err(p) => p,
    };
    let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    Error::KernelPanicked { kernel, group, message }
}

/// Install (once) a panic hook that keeps typed runtime panics quiet:
/// injected faults print nothing, typed bounds/capacity panics print one
/// concise line, and everything else falls through to the previous hook
/// (so genuine bugs still get a full report and backtrace).
pub(crate) fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info: &PanicHookInfo<'_>| {
            if info.payload().downcast_ref::<Injected>().is_some() {
                return; // deliberate chaos; the executor contains it
            }
            if let Some(e) = info.payload().downcast_ref::<Error>() {
                eprintln!("hetero-rt: contained kernel fault: {e}");
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_injects() {
        let p = FaultPlan::new(42, 0.0);
        for _ in 0..1000 {
            assert!(!p.should_fail_alloc());
            assert!(!p.should_fail_launch("k"));
            assert!(!p.should_panic("k", 0));
        }
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn full_rate_always_injects() {
        let p = FaultPlan::new(7, 1.0);
        assert!(p.should_fail_alloc());
        assert!(p.should_fail_launch("k"));
        assert!(p.should_panic("k", 3));
        assert!(p.injected() >= 2);
    }

    #[test]
    fn sequenced_draws_reproduce_from_seed() {
        let a = FaultPlan::new(1234, 0.3);
        let b = FaultPlan::new(1234, 0.3);
        for _ in 0..500 {
            assert_eq!(a.should_fail_alloc(), b.should_fail_alloc());
            assert_eq!(a.should_fail_launch("x"), b.should_fail_launch("x"));
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, 0.5);
        let b = FaultPlan::new(2, 0.5);
        let da: Vec<bool> = (0..64).map(|_| a.should_fail_alloc()).collect();
        let db: Vec<bool> = (0..64).map(|_| b.should_fail_alloc()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn panic_decisions_are_stateless_and_kernel_specific() {
        let p = FaultPlan::new(99, 0.2);
        // Same (kernel, group) always agrees with itself, in any order.
        let first: Vec<bool> = (0..256).map(|g| p.should_panic("a", g)).collect();
        let again: Vec<bool> = (0..256).map(|g| p.should_panic("a", g)).collect();
        assert_eq!(first, again);
        // Different kernel names fault different groups.
        let other: Vec<bool> = (0..256).map(|g| p.should_panic("b", g)).collect();
        assert_ne!(first, other);
        // Roughly rate-proportional (very loose bounds).
        let hits = first.iter().filter(|&&h| h).count();
        assert!(hits > 10 && hits < 150, "{hits} hits at rate 0.2 over 256");
    }

    #[test]
    fn targeted_panic_hits_exactly_its_site() {
        let p = FaultPlan::panic_at("victim", 5);
        assert!(p.should_panic("victim", 5));
        assert!(!p.should_panic("victim", 4));
        assert!(!p.should_panic("other", 5));
        assert!(!p.should_fail_launch("victim"));
        assert!(!p.should_fail_alloc());
    }

    #[test]
    fn transient_burst_consumes_exactly_n() {
        let p = FaultPlan::transient_burst(3);
        assert!(p.should_fail_launch("k"));
        assert!(p.should_fail_launch("k"));
        assert!(p.should_fail_launch("k"));
        assert!(!p.should_fail_launch("k"));
        assert_eq!(p.injected(), 3);
    }

    #[test]
    fn classify_unwraps_typed_payloads() {
        let e = classify_panic(
            "k",
            2,
            Box::new(Injected(Error::KernelPanicked {
                kernel: "k",
                group: 2,
                message: "injected fault".into(),
            })),
        );
        assert!(matches!(e, Error::KernelPanicked { kernel: "k", group: 2, .. }));

        let e = classify_panic(
            "k",
            0,
            Box::new(Error::AccessOutOfBounds { offset: 9, len: 1, buffer_len: 4 }),
        );
        assert_eq!(e, Error::AccessOutOfBounds { offset: 9, len: 1, buffer_len: 4 });

        let e = classify_panic("k", 7, Box::new("boom".to_string()));
        match e {
            Error::KernelPanicked { kernel, group, message } => {
                assert_eq!((kernel, group), ("k", 7));
                assert_eq!(message, "boom");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn sdc_plan_enables_only_silent_kinds() {
        let p = FaultPlan::sdc(3, 0.5);
        assert!(p.is_sdc());
        for _ in 0..100 {
            assert!(!p.should_fail_alloc());
            assert!(!p.should_fail_launch("k"));
            assert!(!p.should_panic("k", 0));
        }
        assert_eq!(p.maybe_stall(), Duration::ZERO);
        assert!(!FaultPlan::new(3, 0.5).is_sdc());
    }

    #[test]
    fn flip_draws_reproduce_from_seed() {
        let a = FaultPlan::sdc(11, 0.3);
        let b = FaultPlan::sdc(11, 0.3);
        let mut any = false;
        for _ in 0..200 {
            let (fa, fb) = (a.wants_flip(false), b.wants_flip(false));
            assert_eq!(fa, fb);
            any |= fa;
            assert_eq!(a.wants_flip(true), b.wants_flip(true));
            assert_eq!(a.pick(97), b.pick(97));
        }
        assert!(any, "rate 0.3 over 200 boundaries must flip at least once");
    }

    #[test]
    fn stuck_site_draws_are_stateless_per_seed() {
        let p = FaultPlan::sdc(21, 0.2);
        assert_eq!(p.stuck_draws(), p.stuck_draws());
        assert_eq!(p.stuck_wanted(), p.stuck_wanted());
        // Targeted pinning overrides the seed's choice.
        let t = FaultPlan::sdc(21, 0.2).with_stuck_at(5, 2, 3);
        assert_eq!(*t.stuck_slot(), Some((5, 2, 3)));
    }

    #[test]
    fn local_flip_sites_are_stateless_and_scaled_down() {
        let p = FaultPlan::sdc(9, 0.5);
        let ctx = p.local_ctx("k", 4).expect("bit-flips enabled");
        assert_eq!(ctx.flip_for_alloc(0, 64), ctx.flip_for_alloc(0, 64));
        // rate/1024 per site: over 4096 sites expect a handful, not most.
        let hits = (0..4096u32).filter(|&i| ctx.flip_for_alloc(i, 64).is_some()).count();
        assert!(hits < 64, "{hits} local flips at scaled rate over 4096 sites");
        // Plans without BitFlip produce no local context at all.
        assert!(FaultPlan::new(9, 0.5).local_ctx("k", 4).is_none());
        assert!(FaultPlan::sdc(9, 0.0).local_ctx("k", 4).is_none());
    }

    #[test]
    fn targeted_flips_are_one_shot() {
        let p = FaultPlan::flip_at(7, 123, 2);
        assert_eq!(p.take_flip_targets(), vec![(7, 123, 2)]);
        assert!(p.take_flip_targets().is_empty());
        assert!(!p.wants_flip(false));
    }

    #[test]
    fn stall_respects_mask() {
        let p = FaultPlan::new(5, 1.0).with_kinds(&[FaultKind::KernelPanic]);
        assert_eq!(p.maybe_stall(), Duration::ZERO);
        let p = FaultPlan::new(5, 1.0).with_kinds(&[FaultKind::PipeStall]);
        assert!(p.maybe_stall() > Duration::ZERO);
    }
}
