//! Launch graphs: record a sequence of kernel launches once, replay hot.
//!
//! The paper's Figure 1 shows SYCL losing to CUDA on FDTD2D almost
//! entirely on *non-kernel* time — per-launch runtime overhead repeated
//! every timestep. The per-launch path in [`crate::queue`] re-validates
//! the ND-range, re-derives the chunk partition, re-checks the (usually
//! disarmed) fault / sanitizer / integrity / redundancy branches and
//! wakes the worker pool once per submission. A [`Graph`] amortises all
//! of that across an iteration: [`Graph::record`] captures the launch
//! sequence into an immutable plan (validated ranges, precomputed chunk
//! partitions, dependency phases derived from declared buffer access
//! modes, preallocated per-launch stat slots), and [`Graph::replay`]
//! executes the whole plan with a **single pool wake-up** — the same
//! shape as CUDA Graphs or the SYCL command-graph extension.
//!
//! # Declared access modes drive the schedule
//!
//! Each recorded launch names the buffers / USM allocations it touches
//! via [`reads`] / [`writes`] / [`reads_writes`] bindings. Record time
//! derives dependency edges from them (read-after-write,
//! write-after-read, write-after-write on the same object) and merges
//! consecutive *independent* launches into one phase that executes
//! concurrently; a phase boundary is a full barrier. Bindings are a
//! contract: an access the kernel performs but does not declare can be
//! scheduled concurrently with a conflicting launch. The dynamic race
//! sanitizer still sees every access on the slow path, so a
//! `with_sanitizer` replay of the same graph will report undeclared
//! conflicts as races. A launch recorded with **no** bindings is treated
//! conservatively as conflicting with everything and gets its own phase.
//!
//! # Composition with the resilience stack
//!
//! The fast replay path is only taken when every hardening layer is
//! disarmed. A queue with a fault plan, sanitizer, redundancy, CPU
//! fallback, or a process with the integrity layer armed transparently
//! degrades to [`Graph::submit_each`], which routes every recorded node
//! through the ordinary hardened launch path — armed modes are never
//! silently skipped, they just forgo the replay speedup.
//!
//! # Graph lifetime and invalidation
//!
//! A graph holds its kernels (and therefore the buffer views they
//! captured) alive. Buffer *contents* are read at replay time — writing
//! to a bound buffer between replays is the supported way to feed new
//! inputs to an iteration (see the record-mutate-replay test). What a
//! graph pins at record time is *structure*: ranges, group sizes, chunk
//! partitions and the device capability snapshot. Replaying on a queue
//! whose device capabilities differ from the recorded snapshot falls
//! back to the per-launch path, which re-validates against the new
//! device. Do not call `replay` on a graph from inside one of its own
//! kernels: the replay lock is not re-entrant and the call deadlocks
//! (the same rule as `Queue::wait` inside a kernel).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use hetero_ir::prove::{check_contract, infer_contract, ContractViolation, LaunchSpec};
use hetero_ir::{PlanAccess, PlanFootprint};

use crate::buffer::Buffer;
use crate::device::DeviceCaps;
use crate::elide::Gate;
use crate::error::{Error, Result};
use crate::event::{LaunchStats, ResilienceInfo};
use crate::fault::classify_panic;
use crate::ndrange::{GroupCtx, Item, NdRange, Range};
use crate::queue::{Fallback, Queue, Redundancy};
use crate::usm::UsmAlloc;

/// Lock a mutex, recovering the guard if a previous holder panicked.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Declared access mode of one recorded launch on one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The kernel only reads the object.
    Read,
    /// The kernel only writes the object.
    Write,
    /// The kernel both reads and writes the object.
    ReadWrite,
}

/// Declared access *footprint* of one recorded launch on one object:
/// how far the launch's accesses to that object may reach. Footprints
/// are what make kernel fusion legality provable — see
/// [`crate::graph_opt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Footprint {
    /// Accesses may touch any element (gathers, scatters, stencils).
    /// The conservative default of [`reads`] / [`writes`] /
    /// [`reads_writes`].
    Whole,
    /// Every work-item touches only its own canonical slice of the
    /// object — the same item→slice mapping in every launch that
    /// declares an item footprint on this object over the same range.
    Item,
    /// [`Footprint::Item`], and the union of all items' slices covers
    /// the entire object (a dense per-item overwrite).
    ItemDense,
}

/// One (object, access-mode, footprint) declaration attached to a
/// recorded launch; built with [`reads`], [`writes`], [`reads_writes`]
/// or their `_item` / `_dense` refinements.
#[derive(Debug, Clone, Copy)]
pub struct Binding {
    pub(crate) object: u64,
    pub(crate) access: Access,
    pub(crate) footprint: Footprint,
}

/// Anything with a stable runtime object identity a [`Binding`] can name:
/// [`Buffer`]s and [`UsmAlloc`]s.
pub trait GraphResource {
    /// The object id used for dependency-edge derivation.
    fn graph_object_id(&self) -> u64;
}

impl<T: Copy + Default + Send + 'static> GraphResource for Buffer<T> {
    fn graph_object_id(&self) -> u64 {
        self.object_id()
    }
}

impl<T: Copy + Default + 'static> GraphResource for UsmAlloc<T> {
    fn graph_object_id(&self) -> u64 {
        self.object_id()
    }
}

/// Declare that a recorded launch reads `r` (whole-object footprint).
pub fn reads(r: &impl GraphResource) -> Binding {
    Binding { object: r.graph_object_id(), access: Access::Read, footprint: Footprint::Whole }
}

/// Declare that a recorded launch writes `r` (without reading it;
/// whole-object footprint).
pub fn writes(r: &impl GraphResource) -> Binding {
    Binding { object: r.graph_object_id(), access: Access::Write, footprint: Footprint::Whole }
}

/// Declare that a recorded launch both reads and writes `r`
/// (whole-object footprint).
pub fn reads_writes(r: &impl GraphResource) -> Binding {
    Binding { object: r.graph_object_id(), access: Access::ReadWrite, footprint: Footprint::Whole }
}

/// Declare that a recorded launch reads `r`, each work-item touching
/// only its own canonical slice.
pub fn reads_item(r: &impl GraphResource) -> Binding {
    Binding { object: r.graph_object_id(), access: Access::Read, footprint: Footprint::Item }
}

/// Declare that a recorded launch writes `r`, each work-item touching
/// only its own canonical slice (some items may write nothing).
pub fn writes_item(r: &impl GraphResource) -> Binding {
    Binding { object: r.graph_object_id(), access: Access::Write, footprint: Footprint::Item }
}

/// Declare that a recorded launch overwrites `r` densely: every
/// work-item writes exactly its own canonical slice and the slices
/// cover the whole object. The strongest declaration — it is what lets
/// the ping-pong pass prove a clobbered swap source is rewritten.
pub fn writes_dense(r: &impl GraphResource) -> Binding {
    Binding { object: r.graph_object_id(), access: Access::Write, footprint: Footprint::ItemDense }
}

/// Declare that a recorded launch both reads and writes `r`, each
/// work-item confined to its own canonical slice.
pub fn reads_writes_item(r: &impl GraphResource) -> Binding {
    Binding { object: r.graph_object_id(), access: Access::ReadWrite, footprint: Footprint::Item }
}

/// Can two launches with these binding lists run concurrently?
/// Conservative on missing information: an empty binding list conflicts
/// with everything.
fn conflicts(a: &[Binding], b: &[Binding]) -> bool {
    if a.is_empty() || b.is_empty() {
        return true;
    }
    a.iter().any(|x| {
        b.iter().any(|y| {
            x.object == y.object && (x.access != Access::Read || y.access != Access::Read)
        })
    })
}

type GroupKernel = Arc<dyn Fn(&GroupCtx) + Send + Sync>;

/// The elementwise form of a launch recorded via
/// [`GraphBuilder::parallel_for`], kept alongside the compiled group
/// kernel so the optimizer's fusion pass can re-compose item kernels
/// into a single launch (see [`crate::graph_opt`]).
#[derive(Clone)]
pub(crate) struct ItemKernel {
    pub(crate) range: Range,
    pub(crate) f: Arc<dyn Fn(Item) + Send + Sync>,
}

/// Copy-node metadata recorded by [`GraphBuilder::copy`]: the (src, dst)
/// object pair plus a prepared O(1) contents swap
/// ([`Buffer::swap_contents`]) the ping-pong pass may substitute for the
/// element-wise copy.
#[derive(Clone)]
pub(crate) struct CopyInfo {
    pub(crate) src: u64,
    pub(crate) dst: u64,
    pub(crate) swap: Arc<dyn Fn() -> Result<()> + Send + Sync>,
}

/// Preallocated per-launch slot: the stats / resilience fields an
/// [`crate::event::Event`] would carry, reset and refilled on every
/// replay instead of allocated per submission.
#[derive(Default)]
struct NodeSlot {
    items: AtomicU64,
    barriers_local: AtomicU64,
    barriers_global: AtomicU64,
    local_bytes: AtomicUsize,
    attempts: AtomicU32,
    replicas: AtomicU32,
}

impl NodeSlot {
    fn reset(&self) {
        self.items.store(0, Ordering::Relaxed);
        self.barriers_local.store(0, Ordering::Relaxed);
        self.barriers_global.store(0, Ordering::Relaxed);
        self.local_bytes.store(0, Ordering::Relaxed);
        self.attempts.store(1, Ordering::Relaxed);
        self.replicas.store(1, Ordering::Relaxed);
    }

    fn store(&self, stats: LaunchStats, res: ResilienceInfo) {
        self.items.store(stats.items, Ordering::Relaxed);
        self.barriers_local.store(stats.barriers_local, Ordering::Relaxed);
        self.barriers_global.store(stats.barriers_global, Ordering::Relaxed);
        self.local_bytes.store(stats.local_bytes, Ordering::Relaxed);
        self.attempts.store(res.attempts, Ordering::Relaxed);
        self.replicas.store(res.replicas, Ordering::Relaxed);
    }
}

/// One recorded launch.
pub(crate) struct Node {
    pub(crate) name: &'static str,
    nd: NdRange,
    groups_range: Range,
    num_groups: usize,
    reqd_max: Option<usize>,
    pub(crate) bindings: Vec<Binding>,
    /// Indices of earlier nodes this node has a dependency edge to.
    deps: Vec<usize>,
    kernel: GroupKernel,
    /// Per-participant stealable work spans over `0..num_groups`
    /// (initialised by [`Graph::assemble`], re-partitioned per replay).
    spans: crate::pool::SpanSet,
    /// Groups retired (executed or abandoned on cancellation).
    done: AtomicUsize,
    slot: NodeSlot,
    /// Elementwise form when recorded via `parallel_for` (fusion input).
    pub(crate) item: Option<ItemKernel>,
    /// Copy metadata when recorded via `copy` (ping-pong input).
    pub(crate) copy: Option<CopyInfo>,
    /// Elision certificate gates, present only when the launch attached
    /// a contract whose proof closed ([`GraphBuilder::contract_gated`]).
    /// Armed by the fast replay path, never by `submit_each`.
    pub(crate) gates: Vec<Gate>,
}

impl Node {
    fn reset(&self) {
        self.spans.reset();
        self.done.store(0, Ordering::Relaxed);
        self.slot.reset();
    }

    /// A fresh executable copy of this node: shared kernel and metadata,
    /// new claim/done/stat state and no derived schedule (deps and
    /// chunks are recomputed by [`Graph::assemble`]). Used when
    /// compiling optimized schedules.
    pub(crate) fn replay_clone(&self) -> Node {
        Node {
            name: self.name,
            nd: self.nd,
            groups_range: self.groups_range,
            num_groups: self.num_groups,
            reqd_max: self.reqd_max,
            bindings: self.bindings.clone(),
            deps: Vec::new(),
            kernel: Arc::clone(&self.kernel),
            spans: crate::pool::SpanSet::empty(),
            done: AtomicUsize::new(0),
            slot: NodeSlot::default(),
            item: self.item.clone(),
            copy: self.copy.clone(),
            gates: self.gates.clone(),
        }
    }
}

/// Builder handed to the [`Graph::record`] closure; each method records
/// one launch without executing it. Validation errors (malformed range,
/// work-group limit) are deferred: the first one fails `record`.
pub struct GraphBuilder {
    caps: DeviceCaps,
    nodes: Vec<Node>,
    outputs: Vec<u64>,
    err: Option<Error>,
    /// Launches that attached a static access contract; a recording
    /// with at least one opts into the stale-output check at `finish`.
    contracts: usize,
}

impl GraphBuilder {
    /// A builder against an explicit capability snapshot; the
    /// optimizer's compile step uses this to rebuild fused launches with
    /// the exact chunking the original recording used.
    pub(crate) fn new(caps: DeviceCaps) -> GraphBuilder {
        GraphBuilder { caps, nodes: Vec::new(), outputs: Vec::new(), err: None, contracts: 0 }
    }

    /// Surrender the recorded nodes and declared outputs, or the first
    /// deferred validation error. Recordings that attached at least one
    /// contract additionally prove their `output` declarations live
    /// (something must write each declared output) when enforcement is
    /// on — a stale output otherwise shields dead launches from DLE.
    pub(crate) fn finish(self) -> Result<(Vec<Node>, Vec<u64>)> {
        if let Some(e) = self.err {
            return Err(e);
        }
        if self.contracts > 0 && crate::prove::enforcing() {
            for &out in &self.outputs {
                let written = self.nodes.iter().any(|n| {
                    n.bindings.iter().any(|b| b.object == out && b.access != Access::Read)
                });
                if !written {
                    crate::prove::note_violations(1);
                    return Err(Error::BindingContract {
                        kernel: "<outputs>".to_string(),
                        violations: vec![ContractViolation::StaleOutput { object: out }
                            .to_string()],
                    });
                }
            }
        }
        Ok((self.nodes, self.outputs))
    }

    /// Attach a static access contract ([`LaunchSpec`], one positional
    /// slot per binding) to the most recently recorded launch. Under
    /// enforcement ([`crate::prove::enforcing`]: always in debug builds,
    /// `HETERO_RT_PROVE=1` or [`crate::prove::force_enable`] in release)
    /// the contract is inferred from the index structure and
    /// cross-checked against the declared bindings; any disagreement
    /// fails the recording with [`Error::BindingContract`].
    pub fn contract(&mut self, spec: LaunchSpec) -> &mut Self {
        self.contract_impl(spec, None)
    }

    /// [`GraphBuilder::contract`], plus an elision certificate request:
    /// when the proof *closes* (every access statically in-bounds and
    /// every binding consistent), `gate`'s views switch to unchecked
    /// access during fast-path replays of this graph — see
    /// [`crate::elide`]. A proof that does not close simply issues no
    /// certificate; the gate stays disarmed forever.
    pub fn contract_gated(&mut self, spec: LaunchSpec, gate: &Gate) -> &mut Self {
        self.contract_impl(spec, Some(gate.clone()))
    }

    fn contract_impl(&mut self, spec: LaunchSpec, gate: Option<Gate>) -> &mut Self {
        if self.err.is_some() {
            return self;
        }
        let Some(node) = self.nodes.last_mut() else {
            self.err = Some(Error::BindingContract {
                kernel: "<none>".to_string(),
                violations: vec!["contract attached before any recorded launch".to_string()],
            });
            return self;
        };
        self.contracts += 1;
        // A certificate always requires the full proof; bare contracts
        // cost one branch when enforcement is off.
        if !crate::prove::enforcing() && gate.is_none() {
            return self;
        }
        // The contract range is the logical item range for elementwise
        // launches (what the index expressions are written against), the
        // global ND-range otherwise.
        let range = node.item.as_ref().map(|ik| ik.range.dims).unwrap_or(node.nd.global.dims);
        let report = infer_contract(node.name, range, &spec);
        let declared: Vec<(PlanAccess, PlanFootprint)> = node
            .bindings
            .iter()
            .map(|b| {
                (
                    match b.access {
                        Access::Read => PlanAccess::Read,
                        Access::Write => PlanAccess::Write,
                        Access::ReadWrite => PlanAccess::ReadWrite,
                    },
                    match b.footprint {
                        Footprint::Whole => PlanFootprint::Whole,
                        Footprint::Item => PlanFootprint::Item,
                        Footprint::ItemDense => PlanFootprint::ItemDense,
                    },
                )
            })
            .collect();
        crate::prove::note_checked();
        let violations = check_contract(&report, &declared);
        if !violations.is_empty() {
            crate::prove::note_violations(violations.len() as u64);
            if crate::prove::enforcing() {
                self.err = Some(Error::BindingContract {
                    kernel: node.name.to_string(),
                    violations: violations.iter().map(ToString::to_string).collect(),
                });
            }
            return self;
        }
        if let Some(g) = gate {
            if report.proven_in_bounds() {
                crate::prove::note_certified();
                node.gates.push(g);
            }
        }
        self
    }

    /// Record a barrier-free data-parallel launch — the recorded
    /// equivalent of [`Queue::parallel_for`]. The flat range is chunked
    /// into implicit work-groups exactly the way the live path chunks
    /// it, so replayed launches produce identical group structure.
    pub fn parallel_for<F>(
        &mut self,
        name: &'static str,
        range: Range,
        bindings: &[Binding],
        f: F,
    ) -> &mut Self
    where
        F: Fn(Item) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let total = range.size();
        let chunk = 256.min(self.caps.max_work_group_size).min(total.max(1));
        let padded = total.div_ceil(chunk) * chunk;
        let nd = NdRange { global: Range::d1(padded), local: Range::d1(chunk) };
        // Static dispatch on the hot path (Arc<F>, not Arc<dyn Fn>); the
        // unsized clone below is only called by *fused* kernels.
        let fk = Arc::clone(&f);
        let kernel = move |ctx: &GroupCtx| {
            ctx.items(|it| {
                let lin = it.global_linear;
                if lin < total {
                    let item = Item {
                        global: range.delinearize(lin),
                        local: it.local,
                        group: it.group,
                        local_linear: it.local_linear,
                        global_linear: lin,
                    };
                    fk(item);
                }
            });
        };
        let before = self.nodes.len();
        self.push(name, nd, None, bindings, Arc::new(kernel));
        if self.nodes.len() > before {
            if let Some(node) = self.nodes.last_mut() {
                node.item = Some(ItemKernel { range, f });
            }
        }
        self
    }

    /// Record a whole-buffer copy `src → dst` as an elementwise launch,
    /// with item-precise bindings and a prepared O(1) swap alternative
    /// the optimizer's ping-pong pass may substitute where legal. A
    /// length mismatch fails the recording.
    pub fn copy<T: Copy + Default + Send + 'static>(
        &mut self,
        name: &'static str,
        src: &Buffer<T>,
        dst: &Buffer<T>,
    ) -> &mut Self {
        if self.err.is_some() {
            return self;
        }
        if src.len() != dst.len() {
            self.err = Some(Error::AccessOutOfBounds {
                offset: 0,
                len: src.len(),
                buffer_len: dst.len(),
            });
            return self;
        }
        // The copy's index structure is canonical (`i → i` both sides),
        // so its contract always proves: record it through gated views
        // and certify them, making recorded copies bounds-check-free on
        // the fast replay path.
        let gate = Gate::new();
        let (sv, dv) = (gate.view(src.view()), gate.view(dst.view()));
        let bindings = [reads_item(src), writes_dense(dst)];
        let (s, d) = (src.clone(), dst.clone());
        let swap: Arc<dyn Fn() -> Result<()> + Send + Sync> =
            Arc::new(move || s.swap_contents(&d));
        let (src_id, dst_id) = (src.object_id(), dst.object_id());
        let before = self.nodes.len();
        let n = src.len();
        self.parallel_for(name, Range::d1(n), &bindings, move |it| {
            let i = it.gid(0);
            dv.set(i, sv.get(i));
        });
        if self.nodes.len() > before {
            if let Some(node) = self.nodes.last_mut() {
                node.copy = Some(CopyInfo { src: src_id, dst: dst_id, swap });
            }
            let own = hetero_ir::prove::at(0).item(0, 1);
            let spec = LaunchSpec::new()
                .slot("src", n, vec![own.clone().into()], vec![])
                .slot("dst", n, vec![], vec![own.into()]);
            self.contract_gated(spec, &gate);
        }
        self
    }

    /// Declare `r` as an observable output of the graph: host code reads
    /// it after replays. The optimizer's dead-launch elimination only
    /// runs on graphs that declare outputs, and never removes a launch
    /// whose writes feed one; the ping-pong pass never leaves an output
    /// clobbered at the end of a replay.
    pub fn output(&mut self, r: &impl GraphResource) -> &mut Self {
        self.outputs.push(r.graph_object_id());
        self
    }

    /// Record a work-group launch — the recorded equivalent of
    /// [`Queue::nd_range`].
    pub fn nd_range<K>(
        &mut self,
        name: &'static str,
        nd: NdRange,
        bindings: &[Binding],
        kernel: K,
    ) -> &mut Self
    where
        K: Fn(&GroupCtx) + Send + Sync + 'static,
    {
        self.push(name, nd, None, bindings, Arc::new(kernel))
    }

    /// Like [`GraphBuilder::nd_range`] with an explicit
    /// `reqd_work_group_size`-style limit, checked at record time.
    pub fn nd_range_with_limit<K>(
        &mut self,
        name: &'static str,
        nd: NdRange,
        reqd_max: Option<usize>,
        bindings: &[Binding],
        kernel: K,
    ) -> &mut Self
    where
        K: Fn(&GroupCtx) + Send + Sync + 'static,
    {
        self.push(name, nd, reqd_max, bindings, Arc::new(kernel))
    }

    /// Record a Single-Task launch. Unlike [`Queue::single_task`] the
    /// kernel must be `Fn` (not `FnOnce`): a replayed graph runs it once
    /// per replay.
    pub fn single_task<F>(&mut self, name: &'static str, bindings: &[Binding], f: F) -> &mut Self
    where
        F: Fn() + Send + Sync + 'static,
    {
        let nd = NdRange { global: Range::d1(1), local: Range::d1(1) };
        self.push(name, nd, None, bindings, Arc::new(move |ctx: &GroupCtx| ctx.items(|_| f())))
    }

    fn push(
        &mut self,
        name: &'static str,
        nd: NdRange,
        reqd_max: Option<usize>,
        bindings: &[Binding],
        kernel: GroupKernel,
    ) -> &mut Self {
        if self.err.is_some() {
            return self;
        }
        if let Err(e) = nd.validate() {
            self.err = Some(e);
            return self;
        }
        let limit = reqd_max.unwrap_or(usize::MAX).min(self.caps.max_work_group_size);
        if nd.group_size() > limit {
            self.err = Some(Error::WorkGroupTooLarge { requested: nd.group_size(), limit });
            return self;
        }
        let num_groups = nd.num_groups();
        self.nodes.push(Node {
            name,
            nd,
            groups_range: nd.groups(),
            num_groups,
            reqd_max,
            bindings: bindings.to_vec(),
            deps: Vec::new(),
            kernel,
            spans: crate::pool::SpanSet::empty(),
            done: AtomicUsize::new(0),
            slot: NodeSlot::default(),
            item: None,
            copy: None,
            gates: Vec::new(),
        });
        self
    }
}

/// Arms every certified node gate for the duration of one fast-path
/// replay and disarms them on drop — including on panic or error exit,
/// so checked access is always restored before `replay` returns. Not
/// constructed at all when the global elision kill switch is off.
struct ArmGuard<'a> {
    nodes: &'a [Node],
}

impl<'a> ArmGuard<'a> {
    fn arm(nodes: &'a [Node]) -> Option<ArmGuard<'a>> {
        if !crate::elide::enabled() {
            return None;
        }
        for n in nodes {
            for g in &n.gates {
                g.arm();
            }
        }
        Some(ArmGuard { nodes })
    }
}

impl Drop for ArmGuard<'_> {
    fn drop(&mut self) {
        for n in self.nodes {
            for g in &n.gates {
                g.disarm();
            }
        }
    }
}

/// An immutable, executable launch plan. See the module docs for the
/// recording contract and lifetime rules.
pub struct Graph {
    nodes: Vec<Node>,
    /// Half-open node-index ranges; nodes within one phase are mutually
    /// independent and execute concurrently, phases execute in order.
    phases: Vec<(usize, usize)>,
    /// Object ids declared observable via [`GraphBuilder::output`].
    outputs: Vec<u64>,
    caps: DeviceCaps,
    local_mem_limit: usize,
    max_groups: usize,
    /// Serialises replays of this graph (the per-node claim/done state
    /// is single-replay).
    replay_lock: Mutex<()>,
    cancel: AtomicBool,
    failure: Mutex<Option<Error>>,
    replays: AtomicU64,
    fast_replays: AtomicU64,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.len())
            .field("phases", &self.phases.len())
            .field("replays", &self.replays.load(Ordering::Relaxed))
            .finish()
    }
}

impl Graph {
    /// Record a launch sequence against `q`'s device without executing
    /// it. Ranges and group sizes are validated here, once; dependency
    /// phases and chunk partitions are precomputed here, once.
    pub fn record<F>(q: &Queue, build: F) -> Result<Graph>
    where
        F: FnOnce(&mut GraphBuilder),
    {
        let caps = q.device().caps().clone();
        let mut b = GraphBuilder::new(caps.clone());
        build(&mut b);
        let (nodes, outputs) = b.finish()?;
        Ok(Graph::assemble(nodes, outputs, caps))
    }

    /// Derive the executable plan (dependency edges, phases, chunk
    /// partitions) over an already-validated node sequence. `record`
    /// lowers the builder through here; the graph optimizer re-enters it
    /// to compile rewritten node sequences with identical scheduling
    /// rules.
    pub(crate) fn assemble(mut nodes: Vec<Node>, outputs: Vec<u64>, caps: DeviceCaps) -> Graph {
        // Dependency edges from declared access modes.
        for j in 1..nodes.len() {
            let deps: Vec<usize> = (0..j)
                .filter(|&i| conflicts(&nodes[i].bindings, &nodes[j].bindings))
                .collect();
            nodes[j].deps = deps;
        }

        // Greedy phase merge: extend the current phase while the next
        // node is independent of every node already in it.
        let mut phases = Vec::new();
        let mut start = 0;
        for j in 1..nodes.len() {
            let conflicting = (start..j)
                .any(|i| conflicts(&nodes[i].bindings, &nodes[j].bindings));
            if conflicting {
                phases.push((start, j));
                start = j;
            }
        }
        if start < nodes.len() {
            phases.push((start, nodes.len()));
        }

        // One stealable span per pool thread; halving front claims give
        // the adaptive granularity the old fixed chunk partition
        // approximated, and back-half steals rebalance uneven nodes.
        let basis = crate::pool::auto_threads().max(1);
        for node in &mut nodes {
            node.spans.init(node.num_groups, basis, basis);
        }

        let max_groups = nodes.iter().map(|n| n.num_groups).max().unwrap_or(0);
        Graph {
            nodes,
            phases,
            outputs,
            local_mem_limit: caps.local_mem_bytes,
            caps,
            max_groups,
            replay_lock: Mutex::new(()),
            cancel: AtomicBool::new(false),
            failure: Mutex::new(None),
            replays: AtomicU64::new(0),
            fast_replays: AtomicU64::new(0),
        }
    }

    /// The recorded nodes (crate-internal: optimizer lowering input).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Declared output object ids (crate-internal: optimizer input).
    pub(crate) fn output_ids(&self) -> &[u64] {
        &self.outputs
    }

    /// The capability snapshot the graph was recorded against.
    pub(crate) fn device_caps(&self) -> &DeviceCaps {
        &self.caps
    }

    /// Whether the single-wake-up replay path may run on `q`: every
    /// hardening layer must be disarmed and the device capabilities must
    /// match the recorded snapshot. Anything else re-routes through the
    /// fully hardened per-launch path.
    pub(crate) fn fast_eligible(&self, q: &Queue) -> bool {
        !q.sanitizer_enabled()
            && q.fault_plan().is_none()
            && q.redundancy() == Redundancy::None
            && q.fallback_policy() == Fallback::None
            && !crate::integrity::armed()
            && *q.device().caps() == self.caps
    }

    /// Execute the recorded plan. On a fully disarmed queue this is the
    /// fast path: one in-flight entry, one pool wake-up, no
    /// re-validation, no re-chunking, no per-launch arming checks. On an
    /// armed queue (fault plan, sanitizer, integrity, redundancy, CPU
    /// fallback) or a capability-mismatched device it degrades to
    /// [`Graph::submit_each`] so every check still runs.
    pub fn replay(&self, q: &Queue) -> Result<()> {
        let _lock = lock(&self.replay_lock);
        if self.nodes.is_empty() {
            return Ok(());
        }
        if !self.fast_eligible(q) {
            self.submit_each_inner(q)?;
            self.replays.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let token = q.cancel_token();
        if let Some(t) = token {
            t.check("<graph>")?;
        }
        let _guard = q.enter_inflight();
        // Keeps the idle scrubber out of the replay window, mirroring
        // the per-launch path's scope accounting.
        let _scope = crate::integrity::LaunchScope::enter();
        crate::fault::install_quiet_hook();
        // Certified nodes run unchecked for exactly this replay: the
        // fast-eligibility check above established that no hardening
        // layer is watching, and the guard restores checked access on
        // every exit path (see `crate::elide` for the soundness rules).
        let _arm = ArmGuard::arm(&self.nodes);
        for n in &self.nodes {
            n.reset();
        }
        self.cancel.store(false, Ordering::Relaxed);
        *lock(&self.failure) = None;

        let participants = q.parallelism_threads().min(self.max_groups).max(1);
        if participants == 1 {
            self.run_inline(token)?;
        } else {
            // The participant's claimed index is its home span in every
            // node's SpanSet: participants sweep their own partition
            // first and steal back halves from stragglers' spans.
            let sweep = |s: usize, _e: usize| self.sweep(s, token);
            let (_dispatch, stray) =
                crate::pool::run_job_catch(participants, participants, &sweep);
            if let Some(p) = stray {
                return Err(classify_panic("<graph>", usize::MAX, p));
            }
            if let Some(e) = lock(&self.failure).take() {
                return Err(e);
            }
        }
        self.replays.fetch_add(1, Ordering::Relaxed);
        self.fast_replays.fetch_add(1, Ordering::Relaxed);
        if let Some(ledger) = q.resilience_ledger() {
            ledger.record_replay(self.nodes.len() as u64);
        }
        Ok(())
    }

    /// Execute every recorded node, in recorded order, through the
    /// queue's ordinary hardened launch path (validation, fault
    /// injection, retry, redundancy, sanitizer, integrity, fallback all
    /// active). This is both the armed-mode fallback of
    /// [`Graph::replay`] and the per-launch baseline the `graph_replay`
    /// microbenchmark measures against.
    pub fn submit_each(&self, q: &Queue) -> Result<()> {
        let _lock = lock(&self.replay_lock);
        self.submit_each_inner(q)
    }

    fn submit_each_inner(&self, q: &Queue) -> Result<()> {
        for n in &self.nodes {
            n.reset();
        }
        for node in &self.nodes {
            let k = &node.kernel;
            let wrap = |ctx: &GroupCtx| k(ctx);
            let (stats, _dispatch, res) =
                q.launch_groups(node.name, node.nd, node.reqd_max, &wrap)?;
            node.slot.store(stats, res);
            node.done.store(node.num_groups, Ordering::Relaxed);
        }
        Ok(())
    }

    /// One participant's pass over the whole plan. Work is claimed from
    /// per-node stealable spans (own span's front half first, then back
    /// halves of other participants' spans), so any subset of pool
    /// workers — including the submitter alone — completes the graph;
    /// phase barriers wait on *work completion* (`done == num_groups`),
    /// never on participant arrival, which is what makes the
    /// single-wake-up design deadlock-free under a busy pool.
    fn sweep(&self, home: usize, token: Option<&crate::cancel::CancelToken>) {
        'phases: for &(ps, pe) in &self.phases {
            for node in &self.nodes[ps..pe] {
                loop {
                    if self.cancel.load(Ordering::Relaxed) {
                        break 'phases;
                    }
                    if let Some(t) = token {
                        // A fired deadline cancels the whole replay: the
                        // first participant to notice records the typed
                        // error and trips the shared flag the others
                        // (and the chunk loops) already poll.
                        if t.is_canceled() {
                            lock(&self.failure)
                                .get_or_insert(Error::Canceled { kernel: node.name });
                            self.cancel.store(true, Ordering::Relaxed);
                            break 'phases;
                        }
                    }
                    let Some((start, end)) =
                        node.spans.claim(home, crate::pool::ClaimMode::Stealing)
                    else {
                        break;
                    };
                    let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        self.run_chunk(node, start, end)
                    }));
                    if let Err(payload) = r {
                        lock(&self.failure)
                            .get_or_insert_with(|| classify_panic(node.name, start, payload));
                        self.cancel.store(true, Ordering::Relaxed);
                    }
                    // Release: publishes this chunk's buffer writes to
                    // whichever participant observes completion below.
                    node.done.fetch_add(end - start, Ordering::AcqRel);
                }
            }
            for node in &self.nodes[ps..pe] {
                let mut spins = 0u32;
                while node.done.load(Ordering::Acquire) < node.num_groups {
                    if self.cancel.load(Ordering::Relaxed) {
                        break 'phases;
                    }
                    spins += 1;
                    if spins < 128 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    fn run_chunk(&self, node: &Node, start: usize, end: usize) {
        let mut items = 0u64;
        let mut bl = 0u64;
        let mut bg = 0u64;
        let mut lbytes = 0usize;
        for g in start..end {
            if self.cancel.load(Ordering::Relaxed) {
                break;
            }
            let gid = node.groups_range.delinearize(g);
            let ctx = GroupCtx::new(gid, node.nd, self.local_mem_limit, None);
            (node.kernel)(&ctx);
            let (it, l, gl, lb) = ctx.stats();
            items += it;
            bl += l;
            bg += gl;
            lbytes = lbytes.max(lb);
        }
        node.slot.items.fetch_add(items, Ordering::Relaxed);
        node.slot.barriers_local.fetch_add(bl, Ordering::Relaxed);
        node.slot.barriers_global.fetch_add(bg, Ordering::Relaxed);
        node.slot.local_bytes.fetch_max(lbytes, Ordering::Relaxed);
    }

    /// Sequential replay on the calling thread: ascending node order,
    /// ascending group order — the deterministic path, matching
    /// `Parallelism::Sequential` per-launch execution.
    fn run_inline(&self, token: Option<&crate::cancel::CancelToken>) -> Result<()> {
        for node in &self.nodes {
            if let Some(t) = token {
                t.check(node.name)?;
            }
            let mut items = 0u64;
            let mut bl = 0u64;
            let mut bg = 0u64;
            let mut lbytes = 0usize;
            for g in 0..node.num_groups {
                let gid = node.groups_range.delinearize(g);
                let ctx = GroupCtx::new(gid, node.nd, self.local_mem_limit, None);
                std::panic::catch_unwind(AssertUnwindSafe(|| (node.kernel)(&ctx)))
                    .map_err(|p| classify_panic(node.name, g, p))?;
                let (it, l, gl, lb) = ctx.stats();
                items += it;
                bl += l;
                bg += gl;
                lbytes = lbytes.max(lb);
            }
            node.slot.items.store(items, Ordering::Relaxed);
            node.slot.barriers_local.store(bl, Ordering::Relaxed);
            node.slot.barriers_global.store(bg, Ordering::Relaxed);
            node.slot.local_bytes.store(lbytes, Ordering::Relaxed);
            node.done.store(node.num_groups, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Number of recorded launches.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph records no launches.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of execution phases (groups of mutually independent
    /// launches) the declared access modes allowed.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// The recorded name of launch `i`.
    pub fn node_name(&self, i: usize) -> &'static str {
        self.nodes[i].name
    }

    /// Launch statistics of node `i` from the most recent execution
    /// (replay or submit_each).
    pub fn node_stats(&self, i: usize) -> LaunchStats {
        let n = &self.nodes[i];
        LaunchStats {
            groups: n.done.load(Ordering::Relaxed) as u64,
            items: n.slot.items.load(Ordering::Relaxed),
            barriers_local: n.slot.barriers_local.load(Ordering::Relaxed),
            barriers_global: n.slot.barriers_global.load(Ordering::Relaxed),
            local_bytes: n.slot.local_bytes.load(Ordering::Relaxed),
        }
    }

    /// Replica count node `i` ran with in the most recent execution
    /// (&gt; 1 only when the slow path voted under Dmr/Tmr).
    pub fn node_replicas(&self, i: usize) -> u32 {
        self.nodes[i].slot.replicas.load(Ordering::Relaxed)
    }

    /// Sum of every node's statistics from the most recent execution.
    pub fn aggregate_stats(&self) -> LaunchStats {
        let mut total = LaunchStats::default();
        for i in 0..self.nodes.len() {
            total.merge(&self.node_stats(i));
        }
        total
    }

    /// Successful executions of this graph, fast or slow path.
    pub fn replays(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    /// Successful single-wake-up (fast path) replays only.
    pub fn fast_replays(&self) -> u64 {
        self.fast_replays.load(Ordering::Relaxed)
    }

    /// Whether recorded launch `later` has a dependency edge on launch
    /// `earlier` (derived from declared access modes at record time).
    pub fn depends_on(&self, later: usize, earlier: usize) -> bool {
        self.nodes[later].deps.contains(&earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::executor::Parallelism;

    fn disarmed(q: Queue) -> Queue {
        q.with_fault_plan(None).with_sanitizer(false)
    }

    #[test]
    fn empty_graph_replays_ok() {
        let q = disarmed(Queue::new(Device::cpu()));
        let g = Graph::record(&q, |_| {}).unwrap();
        assert!(g.is_empty());
        g.replay(&q).unwrap();
    }

    #[test]
    fn replay_matches_per_launch_results() {
        let q = disarmed(Queue::new(Device::cpu()));
        let n = 1000;
        let a = Buffer::from_slice(&(0..n as u32).collect::<Vec<_>>());
        let b = Buffer::<u32>::new(n);
        let c = Buffer::<u32>::new(n);
        let (av, bv) = (a.view(), b.view());
        let (bv2, cv) = (b.view(), c.view());
        let g = Graph::record(&q, |g| {
            g.parallel_for("double", Range::d1(n), &[reads(&a), writes(&b)], move |it| {
                bv.set(it.gid(0), av.get(it.gid(0)) * 2);
            })
            .parallel_for("inc", Range::d1(n), &[reads(&b), writes(&c)], move |it| {
                cv.set(it.gid(0), bv2.get(it.gid(0)) + 1);
            });
        })
        .unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.phase_count(), 2);
        assert!(g.depends_on(1, 0));

        g.replay(&q).unwrap();
        let fast = c.to_vec();
        g.submit_each(&q).unwrap();
        let slow = c.to_vec();
        assert_eq!(fast, slow);
        assert!(fast.iter().enumerate().all(|(i, &x)| x == i as u32 * 2 + 1));
        assert_eq!(g.fast_replays(), 1);
    }

    #[test]
    fn independent_nodes_share_a_phase() {
        let q = disarmed(Queue::new(Device::cpu()));
        let src = Buffer::from_slice(&[1u32; 64]);
        let x = Buffer::<u32>::new(64);
        let y = Buffer::<u32>::new(64);
        let (sv1, xv) = (src.view(), x.view());
        let (sv2, yv) = (src.view(), y.view());
        let g = Graph::record(&q, |g| {
            g.parallel_for("wx", Range::d1(64), &[reads(&src), writes(&x)], move |it| {
                xv.set(it.gid(0), sv1.get(it.gid(0)) + 1);
            })
            .parallel_for("wy", Range::d1(64), &[reads(&src), writes(&y)], move |it| {
                yv.set(it.gid(0), sv2.get(it.gid(0)) + 2);
            });
        })
        .unwrap();
        assert_eq!(g.phase_count(), 1);
        assert!(!g.depends_on(1, 0));
        g.replay(&q).unwrap();
        assert!(x.to_vec().iter().all(|&v| v == 2));
        assert!(y.to_vec().iter().all(|&v| v == 3));
    }

    #[test]
    fn undeclared_bindings_serialize() {
        let q = disarmed(Queue::new(Device::cpu()));
        let x = Buffer::<u32>::new(8);
        let xv = x.view();
        let xv2 = x.view();
        let g = Graph::record(&q, |g| {
            g.parallel_for("a", Range::d1(8), &[], move |it| xv.set(it.gid(0), 1))
                .parallel_for("b", Range::d1(8), &[], move |it| {
                    xv2.update(it.gid(0), |v| v + 1)
                });
        })
        .unwrap();
        assert_eq!(g.phase_count(), 2);
        g.replay(&q).unwrap();
        assert!(x.to_vec().iter().all(|&v| v == 2));
    }

    #[test]
    fn record_validates_group_size() {
        let q = disarmed(Queue::new(Device::stratix10()));
        let e = Graph::record(&q, |g| {
            g.nd_range("too_big", NdRange::d1(512, 256), &[], |_ctx: &GroupCtx| {});
        })
        .unwrap_err();
        assert_eq!(e, Error::WorkGroupTooLarge { requested: 256, limit: 128 });

        let e = Graph::record(&q, |g| {
            g.nd_range_with_limit("attr", NdRange::d1(128, 64), Some(32), &[], |_: &GroupCtx| {});
        })
        .unwrap_err();
        assert_eq!(e, Error::WorkGroupTooLarge { requested: 64, limit: 32 });
    }

    #[test]
    fn sequential_queue_replays_inline() {
        let q = disarmed(Queue::new(Device::cpu())).with_parallelism(Parallelism::Sequential);
        let b = Buffer::<u32>::new(100);
        let bv = b.view();
        let g = Graph::record(&q, |g| {
            g.parallel_for("iota", Range::d1(100), &[writes(&b)], move |it| {
                bv.set(it.gid(0), it.gid(0) as u32);
            });
        })
        .unwrap();
        g.replay(&q).unwrap();
        assert!(b.to_vec().iter().enumerate().all(|(i, &v)| v == i as u32));
        assert_eq!(g.fast_replays(), 1);
        assert_eq!(g.node_stats(0).items, 100);
    }

    #[test]
    fn single_task_node_runs_once_per_replay() {
        let q = disarmed(Queue::new(Device::cpu()));
        let b = Buffer::<u32>::new(1);
        let bv = b.view();
        let g = Graph::record(&q, |g| {
            g.single_task("bump", &[reads_writes(&b)], move || {
                bv.update(0, |v| v + 1);
            });
        })
        .unwrap();
        for _ in 0..5 {
            g.replay(&q).unwrap();
        }
        assert_eq!(b.to_vec()[0], 5);
        assert_eq!(g.replays(), 5);
    }

    #[test]
    fn record_does_not_execute() {
        let q = disarmed(Queue::new(Device::cpu()));
        let b = Buffer::<u32>::new(4);
        let bv = b.view();
        let _g = Graph::record(&q, |g| {
            g.parallel_for("w", Range::d1(4), &[writes(&b)], move |it| bv.set(it.gid(0), 7));
        })
        .unwrap();
        assert!(b.to_vec().iter().all(|&v| v == 0));
    }
}
