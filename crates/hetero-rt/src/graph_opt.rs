//! Graph optimizer: rewrite a recorded launch graph before replaying it.
//!
//! PR 5's record-and-replay executor replays the recorded plan
//! *verbatim*. This module lowers a recorded [`Graph`] into the
//! `hetero-ir` plan representation ([`hetero_ir::PlanGraph`]), runs the
//! pass pipeline ([`hetero_ir::optimize_plan`]) over it, and compiles
//! the optimized schedule back into executable graphs:
//!
//! * **Kernel fusion** — schedule-adjacent elementwise launches with
//!   identical item ranges merge into a single launch (`f1(it); f2(it)`
//!   per item) when every shared object is either read by both sides or
//!   declared with item-disjoint footprints on both sides. FDTD2D's
//!   hx/hy field updates are the canonical win (3 → 2 launches per
//!   timestep); SRAD's derivative→update pair is the canonical
//!   *rejection* (the consumer gathers what the producer writes).
//! * **Dead-launch elimination** — launches whose writes feed neither a
//!   declared graph output ([`GraphBuilder::output`]) nor any other
//!   launch are dropped. Only runs on graphs that declare outputs.
//! * **Ping-pong rewrite** — a recorded whole-buffer copy
//!   ([`GraphBuilder::copy`]) becomes an O(1) storage swap
//!   ([`crate::Buffer::swap_contents`]) when the clobbered source is
//!   provably overwritten densely before its next read. CFD's
//!   save-state copy is the target (copy + 2 launches → swap + 1 fused
//!   launch).
//! * **Loop-invariant hoisting** — pure-write launches over objects no
//!   other launch writes compute the same values every replay; they move
//!   to a prologue graph executed once.
//!
//! # Armed-queue degradation contract
//!
//! The optimized steady schedule executes **only** on the fast replay
//! path. Whenever the queue is armed (fault plan, sanitizer,
//! redundancy, CPU fallback, integrity layer) or the device capability
//! snapshot mismatches, [`OptimizedGraph::replay`] routes through the
//! *original* recording's hardened [`Graph::submit_each`] path — every
//! recorded launch, unfused, with every PR 2–4 resilience check active.
//! This is sound in both directions because every rewrite preserves
//! buffer *contents* semantics: fusion and elimination change only
//! unobservable intermediate schedules, hoisted launches are idempotent,
//! and a swap leaves the same observable values as the copy it replaced
//! (the clobbered source is densely rewritten within the replay).
//! Replays may therefore alternate between the optimized and hardened
//! paths at any boundary.
//!
//! # Toggles
//!
//! Passes toggle independently via [`GraphOptLevel`]; the
//! `HETERO_RT_GRAPH_OPT` environment variable selects a level at
//! recording sites that opt in via [`GraphOptLevel::from_env`]
//! (`0`/`none`, `1`/`full`, or a comma list of pass names:
//! `fuse,dle,ping-pong,hoist`). Every rewrite is reported in a
//! deterministic [`OptReport`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use hetero_ir::{
    optimize_plan, validate_translation, OptReport, OptimizedPlan, PassToggles, PlanAccess,
    PlanBinding, PlanFootprint, PlanGraph, PlanNode, PlanStep,
};

use crate::device::DeviceCaps;
use crate::error::Result;
use crate::graph::{Access, Binding, Footprint, Graph, GraphBuilder, Node};
use crate::ndrange::Item;
use crate::queue::Queue;

/// Lock a mutex, recovering the guard if a previous holder panicked.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Optimized schedules accepted by the independent translation-validation
/// checker since process start.
static TV_ACCEPTED: AtomicU64 = AtomicU64::new(0);

/// Optimized schedules *rejected* by the checker (and degraded to a
/// verbatim replay) since process start. Nonzero means a pass produced
/// an unjustifiable rewrite — the `prove` sweep gates on zero.
static TV_REJECTED: AtomicU64 = AtomicU64::new(0);

fn last_rejection_slot() -> &'static Mutex<Option<String>> {
    static SLOT: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Optimized schedules the translation-validation gate accepted.
pub fn tv_accepted() -> u64 {
    TV_ACCEPTED.load(Ordering::Relaxed)
}

/// Optimized schedules the translation-validation gate rejected.
pub fn tv_rejected() -> u64 {
    TV_REJECTED.load(Ordering::Relaxed)
}

/// The most recent rejection's rendered errors, for diagnostics.
pub fn last_tv_rejection() -> Option<String> {
    lock(last_rejection_slot()).clone()
}

/// Which optimizer passes [`OptimizedGraph::compile`] runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphOptLevel {
    /// Fuse adjacent compatible elementwise launches.
    pub fuse: bool,
    /// Eliminate launches with provably unobservable writes.
    pub dle: bool,
    /// Rewrite recorded copies into O(1) swaps.
    pub ping_pong: bool,
    /// Hoist loop-invariant pure-write launches into the prologue.
    pub hoist: bool,
}

impl GraphOptLevel {
    /// Every pass disabled: the compiled schedule replays the recording
    /// verbatim (PR 5 behaviour).
    pub fn none() -> Self {
        GraphOptLevel::default()
    }

    /// Every pass enabled.
    pub fn full() -> Self {
        GraphOptLevel { fuse: true, dle: true, ping_pong: true, hoist: true }
    }

    /// Read the level from the `HETERO_RT_GRAPH_OPT` environment
    /// variable; unset means [`GraphOptLevel::none`].
    pub fn from_env() -> Self {
        match std::env::var("HETERO_RT_GRAPH_OPT") {
            Ok(v) => Self::parse(&v),
            Err(_) => Self::none(),
        }
    }

    /// Parse a level string: `0`/`none`/`off`/empty → none,
    /// `1`/`full`/`all`/`on` → full, otherwise a comma-separated list of
    /// pass names (`fuse`, `dle`, `ping-pong`, `hoist`); unknown tokens
    /// are ignored.
    pub fn parse(s: &str) -> Self {
        let t = s.trim().to_ascii_lowercase();
        match t.as_str() {
            "" | "0" | "none" | "off" => return Self::none(),
            "1" | "full" | "all" | "on" => return Self::full(),
            _ => {}
        }
        let mut level = Self::none();
        for tok in t.split(',') {
            match tok.trim() {
                "fuse" | "fusion" => level.fuse = true,
                "dle" => level.dle = true,
                "ping-pong" | "pingpong" | "ping_pong" => level.ping_pong = true,
                "hoist" => level.hoist = true,
                _ => {}
            }
        }
        level
    }

    fn toggles(self) -> PassToggles {
        PassToggles { fuse: self.fuse, dle: self.dle, ping_pong: self.ping_pong, hoist: self.hoist }
    }
}

/// Lower a recorded graph into the pure-data plan representation the
/// pass pipeline rewrites.
fn lower(g: &Graph) -> PlanGraph {
    PlanGraph {
        nodes: g
            .nodes()
            .iter()
            .map(|n| PlanNode {
                name: n.name.to_string(),
                bindings: n
                    .bindings
                    .iter()
                    .map(|b| PlanBinding {
                        object: b.object,
                        access: match b.access {
                            Access::Read => PlanAccess::Read,
                            Access::Write => PlanAccess::Write,
                            Access::ReadWrite => PlanAccess::ReadWrite,
                        },
                        footprint: match b.footprint {
                            Footprint::Whole => PlanFootprint::Whole,
                            Footprint::Item => PlanFootprint::Item,
                            Footprint::ItemDense => PlanFootprint::ItemDense,
                        },
                    })
                    .collect(),
                range: n.item.as_ref().map(|ik| ik.range.dims),
                copy: n.copy.as_ref().map(|c| (c.src, c.dst)),
            })
            .collect(),
        outputs: g.output_ids().to_vec(),
    }
}

/// Union of the access modes two launches declare on one object.
fn merge_access(a: Access, b: Access) -> Access {
    if a == b {
        a
    } else {
        Access::ReadWrite
    }
}

/// Weakest of two footprints (a merged binding must be safe for both).
fn merge_footprint(a: Footprint, b: Footprint) -> Footprint {
    use Footprint::*;
    match (a, b) {
        (Whole, _) | (_, Whole) => Whole,
        (Item, _) | (_, Item) => Item,
        (ItemDense, ItemDense) => ItemDense,
    }
}

/// Union the bindings of a fused group, merging per object.
fn merge_bindings(nodes: &[Node], group: &[usize]) -> Vec<Binding> {
    let mut merged: Vec<Binding> = Vec::new();
    for &i in group {
        for b in &nodes[i].bindings {
            match merged.iter_mut().find(|m| m.object == b.object) {
                Some(m) => {
                    m.access = merge_access(m.access, b.access);
                    m.footprint = merge_footprint(m.footprint, b.footprint);
                }
                None => merged.push(*b),
            }
        }
    }
    merged
}

/// Intern a computed node name. Compilation happens once per graph, so
/// the leak is bounded by the number of `compile` calls.
fn leak_name(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// Build the single fused node for `group`, or `None` when a member
/// lacks its elementwise form (a broken invariant compile degrades on
/// rather than panics).
fn build_fused(graph: &Graph, group: &[usize], caps: &DeviceCaps) -> Result<Option<Node>> {
    let nodes = graph.nodes();
    let mut parts: Vec<Arc<dyn Fn(Item) + Send + Sync>> = Vec::with_capacity(group.len());
    let mut range = None;
    for &i in group {
        let Some(ik) = &nodes[i].item else { return Ok(None) };
        parts.push(Arc::clone(&ik.f));
        range.get_or_insert(ik.range);
    }
    let Some(range) = range else { return Ok(None) };
    let name = leak_name(format!(
        "fused({})",
        group.iter().map(|&i| nodes[i].name).collect::<Vec<_>>().join("+")
    ));
    let merged = merge_bindings(nodes, group);
    let mut b = GraphBuilder::new(caps.clone());
    // Recording through the same builder entry point reproduces the
    // original chunking exactly, so fused replays are bit-compatible
    // with the separate launches they replace.
    b.parallel_for(name, range, &merged, move |it| {
        for f in &parts {
            f(it);
        }
    });
    let (mut built, _) = b.finish()?;
    // Fusion preserves each member's per-item accesses and range, so
    // member elision certificates stay valid: the fused node arms the
    // union of its members' gates.
    if let Some(n) = built.last_mut() {
        n.gates = group.iter().flat_map(|&i| nodes[i].gates.iter().cloned()).collect();
    }
    Ok(built.pop())
}

/// Build the O(1) swap step for rewritten copy node `node`, or `None`
/// when the node carries no copy metadata.
fn build_swap(graph: &Graph, node: usize, caps: &DeviceCaps) -> Result<Option<Node>> {
    let nodes = graph.nodes();
    let Some(ci) = nodes[node].copy.clone() else { return Ok(None) };
    let name = leak_name(format!("swap({})", nodes[node].name));
    // The swap rebinds both storages: declare read-write on both objects
    // with whole footprints so phase derivation serialises it against
    // every launch touching either side.
    let bindings = [
        Binding { object: ci.src, access: Access::ReadWrite, footprint: Footprint::Whole },
        Binding { object: ci.dst, access: Access::ReadWrite, footprint: Footprint::Whole },
    ];
    let swap = Arc::clone(&ci.swap);
    let mut b = GraphBuilder::new(caps.clone());
    b.single_task(name, &bindings, move || {
        if let Err(e) = swap() {
            // Containment converts the typed payload into an error
            // return from the replay, as with any kernel failure.
            std::panic::panic_any(e);
        }
    });
    let (mut built, _) = b.finish()?;
    Ok(built.pop())
}

/// A recorded graph compiled through the optimizer pass pipeline.
///
/// Holds three executable artifacts: the untouched original recording
/// (the hardened degradation path), an optional prologue of hoisted
/// launches (runs once before the first fast replay), and the optimized
/// steady-state graph replayed every iteration.
pub struct OptimizedGraph {
    original: Graph,
    prologue: Option<Graph>,
    steady: Graph,
    report: OptReport,
    prologue_done: AtomicBool,
    replay_lock: Mutex<()>,
}

impl std::fmt::Debug for OptimizedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptimizedGraph")
            .field("recorded", &self.original.len())
            .field("steady", &self.steady.len())
            .field("report", &self.report)
            .finish()
    }
}

impl OptimizedGraph {
    /// Lower `graph`, run the passes `level` enables, and compile the
    /// optimized schedule. With [`GraphOptLevel::none`] the steady graph
    /// is a node-for-node copy of the recording (verbatim PR 5 replay).
    pub fn compile(graph: Graph, level: GraphOptLevel) -> Result<OptimizedGraph> {
        let plan = lower(&graph);
        let (mut sched, mut report) = optimize_plan(&plan, level.toggles());
        // Translation-validation gate: an independent checker re-derives
        // each pass's justification and happens-before preservation
        // between the original and optimized plans. A schedule it cannot
        // justify never executes — compile degrades it to a verbatim
        // node-for-node replay (level-none shape) and counts the
        // rejection for the CI sweep.
        match validate_translation(&plan, &sched, &report) {
            Ok(()) => {
                TV_ACCEPTED.fetch_add(1, Ordering::Relaxed);
            }
            Err(errs) => {
                TV_REJECTED.fetch_add(1, Ordering::Relaxed);
                let rendered =
                    errs.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ");
                *lock(last_rejection_slot()) = Some(rendered);
                let n = plan.nodes.len();
                sched = OptimizedPlan {
                    prologue: Vec::new(),
                    steady: (0..n).map(|i| PlanStep::Launch(vec![i])).collect(),
                };
                report = OptReport {
                    launches_before: n,
                    launches_after: n,
                    ..OptReport::default()
                };
            }
        }
        let caps = graph.device_caps().clone();
        let outputs = graph.output_ids().to_vec();

        let prologue = if sched.prologue.is_empty() {
            None
        } else {
            let nodes =
                sched.prologue.iter().map(|&i| graph.nodes()[i].replay_clone()).collect();
            Some(Graph::assemble(nodes, outputs.clone(), caps.clone()))
        };

        let mut nodes: Vec<Node> = Vec::new();
        for step in &sched.steady {
            match step {
                PlanStep::Launch(group) if group.len() == 1 => {
                    nodes.push(graph.nodes()[group[0]].replay_clone());
                }
                PlanStep::Launch(group) => match build_fused(&graph, group, &caps)? {
                    Some(n) => nodes.push(n),
                    None => {
                        nodes.extend(group.iter().map(|&i| graph.nodes()[i].replay_clone()));
                    }
                },
                PlanStep::Swap { node } => match build_swap(&graph, *node, &caps)? {
                    Some(n) => nodes.push(n),
                    None => nodes.push(graph.nodes()[*node].replay_clone()),
                },
            }
        }
        let steady = Graph::assemble(nodes, outputs, caps);
        Ok(OptimizedGraph {
            original: graph,
            prologue,
            steady,
            report,
            prologue_done: AtomicBool::new(false),
            replay_lock: Mutex::new(()),
        })
    }

    /// Execute one iteration. On a fully disarmed queue this replays the
    /// optimized steady graph (after running the hoisted prologue once);
    /// on an armed queue or capability mismatch it degrades to the
    /// original recording's hardened [`Graph::submit_each`] path — the
    /// optimized schedule never runs with a hardening layer active.
    pub fn replay(&self, q: &Queue) -> Result<()> {
        let _lock = lock(&self.replay_lock);
        if !self.original.fast_eligible(q) {
            // Graph::replay re-checks eligibility and routes through its
            // hardened submit_each path, counting the replay.
            return self.original.replay(q);
        }
        if let Some(p) = &self.prologue {
            if !self.prologue_done.load(Ordering::Acquire) {
                p.replay(q)?;
                self.prologue_done.store(true, Ordering::Release);
            }
        }
        self.steady.replay(q)
    }

    /// What the pass pipeline rewrote, deterministically.
    pub fn report(&self) -> &OptReport {
        &self.report
    }

    /// Launches in the original recording.
    pub fn recorded_launches(&self) -> usize {
        self.original.len()
    }

    /// Nodes in the optimized steady graph. Swap steps count as nodes
    /// here (they occupy a schedule slot) but not as kernel launches in
    /// [`OptReport::launches_after`].
    pub fn steady_nodes(&self) -> usize {
        self.steady.len()
    }

    /// Fast single-wake-up replays of the optimized steady graph.
    pub fn fast_replays(&self) -> u64 {
        self.steady.fast_replays()
    }

    /// Replays that degraded to the hardened original recording.
    pub fn hardened_replays(&self) -> u64 {
        self.original.replays()
    }

    /// Times the hoisted prologue has executed (0 or 1).
    pub fn prologue_runs(&self) -> u64 {
        self.prologue.as_ref().map(Graph::replays).unwrap_or(0)
    }

    /// Aggregate launch statistics of the most recent steady replay.
    pub fn steady_stats(&self) -> crate::event::LaunchStats {
        self.steady.aggregate_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::device::Device;
    use crate::graph::{reads, reads_item, reads_writes_item, writes_dense};
    use crate::ndrange::Range;

    fn disarmed(q: Queue) -> Queue {
        q.with_fault_plan(None).with_sanitizer(false)
    }

    fn level_parse_round_trips() -> GraphOptLevel {
        GraphOptLevel::parse("fuse,ping-pong")
    }

    #[test]
    fn parse_levels() {
        assert_eq!(GraphOptLevel::parse("0"), GraphOptLevel::none());
        assert_eq!(GraphOptLevel::parse("none"), GraphOptLevel::none());
        assert_eq!(GraphOptLevel::parse("1"), GraphOptLevel::full());
        assert_eq!(GraphOptLevel::parse("full"), GraphOptLevel::full());
        let l = level_parse_round_trips();
        assert!(l.fuse && l.ping_pong && !l.dle && !l.hoist);
        let l = GraphOptLevel::parse("dle, hoist, bogus");
        assert!(l.dle && l.hoist && !l.fuse && !l.ping_pong);
    }

    /// Two same-range elementwise launches with item-disjoint writes
    /// fuse into one; results stay bit-equal to the unoptimized path.
    #[test]
    fn fusion_merges_and_matches_unfused_results() {
        let q = disarmed(Queue::new(Device::cpu()));
        let n = 1000;
        let a = Buffer::from_slice(&(0..n as u32).collect::<Vec<_>>());
        let x = Buffer::<u32>::new(n);
        let y = Buffer::<u32>::new(n);
        let record = |x: &Buffer<u32>, y: &Buffer<u32>| {
            let (av1, xv) = (a.view(), x.view());
            let (av2, yv) = (a.view(), y.view());
            let (xb, yb) = (x.clone(), y.clone());
            let ab = a.clone();
            Graph::record(&q, move |g| {
                g.parallel_for("wx", Range::d1(n), &[reads(&ab), writes_dense(&xb)], move |it| {
                    xv.set(it.gid(0), av1.get(it.gid(0)) * 2);
                })
                .parallel_for("wy", Range::d1(n), &[reads(&ab), writes_dense(&yb)], move |it| {
                    yv.set(it.gid(0), av2.get(it.gid(0)) + 7);
                })
                .output(&xb)
                .output(&yb);
            })
            .unwrap()
        };

        let baseline = record(&x, &y);
        baseline.replay(&q).unwrap();
        let (bx, by) = (x.to_vec(), y.to_vec());

        x.write_from(&vec![0; n]);
        y.write_from(&vec![0; n]);
        let og = OptimizedGraph::compile(record(&x, &y), GraphOptLevel::full()).unwrap();
        assert_eq!(og.report().launches_before, 2);
        assert_eq!(og.report().launches_after, 1);
        assert_eq!(og.report().fused, vec![vec!["wx".to_string(), "wy".to_string()]]);
        assert_eq!(og.steady_nodes(), 1);
        og.replay(&q).unwrap();
        assert_eq!(og.fast_replays(), 1);
        assert_eq!(x.to_vec(), bx);
        assert_eq!(y.to_vec(), by);
    }

    /// Range mismatch defeats fusion even when bindings would allow it.
    #[test]
    fn fusion_rejected_on_range_mismatch() {
        let q = disarmed(Queue::new(Device::cpu()));
        let x = Buffer::<u32>::new(64);
        let y = Buffer::<u32>::new(63);
        let (xv, yv) = (x.view(), y.view());
        let (xb, yb) = (x.clone(), y.clone());
        let g = Graph::record(&q, move |g| {
            g.parallel_for("wx", Range::d1(64), &[writes_dense(&xb)], move |it| {
                xv.set(it.gid(0), 1);
            })
            .parallel_for("wy", Range::d1(63), &[writes_dense(&yb)], move |it| {
                yv.set(it.gid(0), 2);
            })
            .output(&xb)
            .output(&yb);
        })
        .unwrap();
        // Fuse-only: under `full()` the hoist pass would legally move
        // both pure-write launches to the prologue instead.
        let level = GraphOptLevel { fuse: true, ..GraphOptLevel::none() };
        let og = OptimizedGraph::compile(g, level).unwrap();
        assert!(og.report().fused.is_empty());
        assert_eq!(og.report().launches_after, 2);
        og.replay(&q).unwrap();
        assert!(x.to_vec().iter().all(|&v| v == 1));
        assert!(y.to_vec().iter().all(|&v| v == 2));
    }

    /// An armed queue must never run the optimized steady schedule: the
    /// replay degrades to the hardened original recording.
    #[test]
    fn armed_queue_degrades_to_hardened_original() {
        let q = disarmed(Queue::new(Device::cpu()));
        let n = 128;
        let a = Buffer::from_slice(&vec![3u32; n]);
        let x = Buffer::<u32>::new(n);
        let (av, xv) = (a.view(), x.view());
        let (ab, xb) = (a.clone(), x.clone());
        let av2 = a.view();
        let g = Graph::record(&q, move |g| {
            g.parallel_for("wx", Range::d1(n), &[reads(&ab), writes_dense(&xb)], move |it| {
                xv.set(it.gid(0), av.get(it.gid(0)) + 1);
            })
            .parallel_for("wa", Range::d1(n), &[reads_writes_item(&ab)], move |it| {
                av2.update(it.gid(0), |v| v + 1);
            })
            .output(&ab)
            .output(&xb);
        })
        .unwrap();
        let og = OptimizedGraph::compile(g, GraphOptLevel::full()).unwrap();

        let armed = q.clone().with_sanitizer(true);
        og.replay(&armed).unwrap();
        assert_eq!(og.fast_replays(), 0);
        assert_eq!(og.hardened_replays(), 1);
        assert!(x.to_vec().iter().all(|&v| v == 4));

        // Disarm again: the same graph switches to the fast optimized
        // path, continuing from the hardened replay's state.
        og.replay(&q).unwrap();
        assert_eq!(og.fast_replays(), 1);
        assert!(x.to_vec().iter().all(|&v| v == 5));
    }

    /// DLE removes a launch whose written buffer is unobservable, and
    /// keeps one alive solely because its buffer is a declared output.
    #[test]
    fn dead_launch_elimination_respects_declared_outputs() {
        let q = disarmed(Queue::new(Device::cpu()));
        let n = 64;
        let out = Buffer::<u32>::new(n);
        let scratch = Buffer::<u32>::new(n);
        let (ov, sv) = (out.view(), scratch.view());
        let (ob, sb) = (out.clone(), scratch.clone());
        let g = Graph::record(&q, move |g| {
            g.parallel_for("live", Range::d1(n), &[writes_dense(&ob)], move |it| {
                ov.set(it.gid(0), 11);
            })
            .parallel_for("dead", Range::d1(n), &[writes_dense(&sb)], move |it| {
                sv.set(it.gid(0), 99);
            })
            .output(&ob);
        })
        .unwrap();
        let og = OptimizedGraph::compile(g, GraphOptLevel::full()).unwrap();
        assert_eq!(og.report().eliminated, vec!["dead".to_string()]);
        og.replay(&q).unwrap();
        assert!(out.to_vec().iter().all(|&v| v == 11));
        // The dead launch never ran on the fast path.
        assert!(scratch.to_vec().iter().all(|&v| v == 0));

        // Same recording with scratch declared an output: nothing dies.
        let (ov, sv) = (out.view(), scratch.view());
        let (ob, sb) = (out.clone(), scratch.clone());
        let g2 = Graph::record(&q, move |g| {
            g.parallel_for("live", Range::d1(n), &[writes_dense(&ob)], move |it| {
                ov.set(it.gid(0), 11);
            })
            .parallel_for("kept", Range::d1(n), &[writes_dense(&sb)], move |it| {
                sv.set(it.gid(0), 99);
            })
            .output(&ob)
            .output(&sb);
        })
        .unwrap();
        let og2 = OptimizedGraph::compile(g2, GraphOptLevel::full()).unwrap();
        assert!(og2.report().eliminated.is_empty());
        og2.replay(&q).unwrap();
        assert!(scratch.to_vec().iter().all(|&v| v == 99));
    }

    /// Ping-pong: copy(src→dst) + dense rewrite of src becomes an O(1)
    /// swap, bit-equal to the copy-based recording — including views
    /// captured at record time (aliasing safety: the swap must retarget
    /// them, not leave them on the old allocation).
    #[test]
    fn ping_pong_swap_matches_copy_semantics() {
        let q = disarmed(Queue::new(Device::cpu()));
        let n = 500;
        let vars = Buffer::from_slice(&(0..n as u64).collect::<Vec<_>>());
        let old = Buffer::<u64>::new(n);
        let record = |vars: &Buffer<u64>, old: &Buffer<u64>| {
            let (ov2, vv2) = (old.view(), vars.view());
            let (vb, ob) = (vars.clone(), old.clone());
            Graph::record(&q, move |g| {
                g.copy("save", &vb, &ob)
                    .parallel_for(
                        "step",
                        Range::d1(n),
                        &[reads_item(&ob), writes_dense(&vb)],
                        move |it| {
                            let i = it.gid(0);
                            vv2.set(i, ov2.get(i) * 3 + 1);
                        },
                    )
                    .output(&vb);
            })
            .unwrap()
        };

        let baseline = record(&vars, &old);
        for _ in 0..4 {
            baseline.submit_each(&q).unwrap();
        }
        let expect = vars.to_vec();

        vars.write_from(&(0..n as u64).collect::<Vec<_>>());
        old.write_from(&vec![0; n]);
        let og = OptimizedGraph::compile(record(&vars, &old), GraphOptLevel::full()).unwrap();
        assert_eq!(og.report().swapped, vec!["save".to_string()]);
        assert_eq!(og.report().launches_after, 1);
        for _ in 0..4 {
            og.replay(&q).unwrap();
        }
        assert_eq!(vars.to_vec(), expect);
        // `old` must hold the previous iteration's state, exactly as
        // the copy-based path would leave it.
        let prev: Vec<u64> = expect.iter().map(|&v| (v - 1) / 3).collect();
        assert_eq!(old.to_vec(), prev);
    }

    /// Hoisting runs a loop-invariant init launch exactly once.
    #[test]
    fn hoisted_prologue_runs_once() {
        let q = disarmed(Queue::new(Device::cpu()));
        let n = 32;
        let lut = Buffer::<u32>::new(n);
        let acc = Buffer::<u32>::new(n);
        let (lv, av) = (lut.view(), acc.view());
        let lv2 = lut.view();
        let (lb, ab) = (lut.clone(), acc.clone());
        let g = Graph::record(&q, move |g| {
            g.parallel_for("init_lut", Range::d1(n), &[writes_dense(&lb)], move |it| {
                lv.set(it.gid(0), it.gid(0) as u32 * 10);
            })
            .parallel_for(
                "accumulate",
                Range::d1(n),
                &[reads_item(&lb), reads_writes_item(&ab)],
                move |it| {
                    let i = it.gid(0);
                    av.update(i, |v| v + lv2.get(i));
                },
            )
            .output(&ab);
        })
        .unwrap();
        let og = OptimizedGraph::compile(g, GraphOptLevel::full()).unwrap();
        assert_eq!(og.report().hoisted, vec!["init_lut".to_string()]);
        for _ in 0..3 {
            og.replay(&q).unwrap();
        }
        assert_eq!(og.prologue_runs(), 1);
        assert_eq!(og.fast_replays(), 3);
        let acc_v = acc.to_vec();
        assert!(acc_v.iter().enumerate().all(|(i, &v)| v == i as u32 * 30));
    }

    /// A compile at level none replays the recording verbatim.
    #[test]
    fn level_none_is_verbatim() {
        let q = disarmed(Queue::new(Device::cpu()));
        let n = 64;
        let x = Buffer::<u32>::new(n);
        let xv = x.view();
        let xb = x.clone();
        let g = Graph::record(&q, move |g| {
            g.parallel_for("w", Range::d1(n), &[writes_dense(&xb)], move |it| {
                xv.set(it.gid(0), 5);
            })
            .output(&xb);
        })
        .unwrap();
        let og = OptimizedGraph::compile(g, GraphOptLevel::none()).unwrap();
        assert_eq!(og.report().launches_before, og.report().launches_after);
        assert!(og.report().fused.is_empty() && og.report().eliminated.is_empty());
        og.replay(&q).unwrap();
        assert!(x.to_vec().iter().all(|&v| v == 5));
    }
}
