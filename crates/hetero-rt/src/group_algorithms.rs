//! Group collective algorithms — the `sycl::group_*` function family.
//!
//! Real SYCL ports lean on these to replace hand-written shared-memory
//! reductions; Altis' kernels use the hand-written forms (they predate
//! SYCL 2020), but the optimised Altis-SYCL code the paper describes
//! could be expressed with them, and downstream users of this runtime
//! will expect them. All collectives operate on one work-group via its
//! [`GroupCtx`] and encapsulate the barrier phasing internally.

use crate::local::PrivateArray;
use crate::ndrange::{FenceSpace, GroupCtx};

/// Reduce one value per work-item with `op`, returning the result (as
/// `sycl::reduce_over_group`). `values` holds each item's contribution,
/// indexed by local linear id.
pub fn group_reduce<T, F>(ctx: &GroupCtx, values: &PrivateArray<T>, identity: T, op: F) -> T
where
    T: Copy + Default + 'static,
    F: Fn(T, T) -> T,
{
    // The collective runs between item phases, so a sequential fold is
    // both correct and deterministic (matching our single-thread-per-
    // group execution model).
    let mut acc = identity;
    for lid in 0..ctx.group_size() {
        acc = op(acc, values.get(lid));
    }
    ctx.barrier(FenceSpace::Local);
    acc
}

/// Exclusive scan over the group's per-item values (as
/// `sycl::exclusive_scan_over_group`); returns a private array holding
/// each item's prefix.
pub fn group_exclusive_scan<T, F>(
    ctx: &GroupCtx,
    values: &PrivateArray<T>,
    identity: T,
    op: F,
) -> PrivateArray<T>
where
    T: Copy + Default + 'static,
    F: Fn(T, T) -> T,
{
    let out = ctx.private_array::<T>();
    let mut acc = identity;
    for lid in 0..ctx.group_size() {
        out.set(lid, acc);
        acc = op(acc, values.get(lid));
    }
    ctx.barrier(FenceSpace::Local);
    out
}

/// Inclusive scan over the group's per-item values.
pub fn group_inclusive_scan<T, F>(
    ctx: &GroupCtx,
    values: &PrivateArray<T>,
    identity: T,
    op: F,
) -> PrivateArray<T>
where
    T: Copy + Default + 'static,
    F: Fn(T, T) -> T,
{
    let out = ctx.private_array::<T>();
    let mut acc = identity;
    for lid in 0..ctx.group_size() {
        acc = op(acc, values.get(lid));
        out.set(lid, acc);
    }
    ctx.barrier(FenceSpace::Local);
    out
}

/// Broadcast the value held by `source_lid` to every item (as
/// `sycl::group_broadcast`).
pub fn group_broadcast<T>(ctx: &GroupCtx, values: &PrivateArray<T>, source_lid: usize) -> T
where
    T: Copy + Default + 'static,
{
    let v = values.get(source_lid);
    ctx.barrier(FenceSpace::Local);
    v
}

/// Whether `pred` holds for *any* work-item (as `sycl::any_of_group`).
pub fn group_any_of(ctx: &GroupCtx, flags: &PrivateArray<bool>) -> bool {
    let mut any = false;
    for lid in 0..ctx.group_size() {
        any |= flags.get(lid);
    }
    ctx.barrier(FenceSpace::Local);
    any
}

/// Whether `pred` holds for *all* work-items (as `sycl::all_of_group`).
pub fn group_all_of(ctx: &GroupCtx, flags: &PrivateArray<bool>) -> bool {
    let mut all = true;
    for lid in 0..ctx.group_size() {
        all &= flags.get(lid);
    }
    ctx.barrier(FenceSpace::Local);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::device::Device;
    use crate::ndrange::NdRange;
    use crate::queue::Queue;

    #[test]
    fn group_reduce_sums_items() {
        let q = Queue::new(Device::cpu());
        let out = Buffer::<u32>::new(4);
        let ov = out.view();
        q.nd_range("reduce", NdRange::d1(256, 64), move |ctx| {
            let vals = ctx.private_array::<u32>();
            ctx.items(|it| vals.set(it.local_linear, it.global_linear as u32));
            let sum = group_reduce(ctx, &vals, 0u32, |a, b| a + b);
            ov.set(ctx.group_linear(), sum);
        })
        .unwrap();
        let got = out.to_vec();
        // Group g sums ids g*64 .. g*64+63.
        for (g, &s) in got.iter().enumerate() {
            let lo = (g * 64) as u32;
            let expect: u32 = (lo..lo + 64).sum();
            assert_eq!(s, expect);
        }
    }

    #[test]
    fn group_scans_match_manual_prefix() {
        let q = Queue::new(Device::cpu());
        let exc = Buffer::<u32>::new(32);
        let inc = Buffer::<u32>::new(32);
        let (ev, iv) = (exc.view(), inc.view());
        q.nd_range("scan", NdRange::d1(32, 32), move |ctx| {
            let vals = ctx.private_array::<u32>();
            ctx.items(|it| vals.set(it.local_linear, 1 + it.local_linear as u32));
            let e = group_exclusive_scan(ctx, &vals, 0u32, |a, b| a + b);
            let i = group_inclusive_scan(ctx, &vals, 0u32, |a, b| a + b);
            ctx.items(|it| {
                ev.set(it.local_linear, e.get(it.local_linear));
                iv.set(it.local_linear, i.get(it.local_linear));
            });
        })
        .unwrap();
        let e = exc.to_vec();
        let i = inc.to_vec();
        for lid in 0..32u32 {
            // values are 1..=32; exclusive prefix = lid*(lid+1)/2.
            assert_eq!(e[lid as usize], lid * (lid + 1) / 2);
            assert_eq!(i[lid as usize], (lid + 1) * (lid + 2) / 2);
        }
    }

    #[test]
    fn group_broadcast_distributes_leader_value() {
        let q = Queue::new(Device::cpu());
        let out = Buffer::<u32>::new(64);
        let ov = out.view();
        q.nd_range("bcast", NdRange::d1(64, 32), move |ctx| {
            let vals = ctx.private_array::<u32>();
            ctx.items(|it| vals.set(it.local_linear, it.global_linear as u32 * 10));
            let leader = group_broadcast(ctx, &vals, 0);
            ctx.items(|it| ov.set(it.global_linear, leader));
        })
        .unwrap();
        let got = out.to_vec();
        assert!(got[..32].iter().all(|&v| v == 0));
        assert!(got[32..].iter().all(|&v| v == 320));
    }

    #[test]
    fn any_all_semantics() {
        let q = Queue::new(Device::cpu());
        let out = Buffer::<u32>::new(2);
        let ov = out.view();
        q.nd_range("anyall", NdRange::d1(16, 16), move |ctx| {
            let flags = ctx.private_array::<bool>();
            ctx.items(|it| flags.set(it.local_linear, it.local_linear == 7));
            let any = group_any_of(ctx, &flags);
            let all = group_all_of(ctx, &flags);
            ov.set(0, any as u32);
            ov.set(1, all as u32);
        })
        .unwrap();
        assert_eq!(out.to_vec(), vec![1, 0]);
    }
}
