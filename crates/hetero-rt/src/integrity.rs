//! Silent-data-corruption detection: region-granular page checksums.
//!
//! The chaos layer (see [`crate::fault`]) defends against *fail-stop*
//! faults — panics, allocation failures, transient launches. A bit that
//! silently flips inside a [`crate::Buffer`] or USM region produces no
//! panic at all: the wrong answer sails straight through to the benchmark
//! report. This module is the detection half of the SDC defense:
//!
//! * every `Buffer`/`UsmAlloc` backing allocation registers a [`Region`]
//!   while the layer is armed ([`arm`]), carrying per-page (1 KiB)
//!   checksums of its contents;
//! * regions are **sealed** (checksummed) after every kernel launch on an
//!   integrity queue and **verified** at the next launch entry — any
//!   mutation between those boundaries that did not go through a host
//!   write API surfaces as [`Error::DataCorruption`] naming the exact
//!   region and page;
//! * parked pool workers run an idle-time **scrubber**
//!   ([`scrub_step`], called from `pool.rs`) that sweeps one region per
//!   idle tick, so corruption in cold data is found before the next
//!   launch consumes it;
//! * redundant execution (see `Redundancy` in [`crate::queue`]) uses
//!   [`digest_all`]/[`snapshot_all`]/[`restore`] to vote on whole-memory
//!   digests across replica runs.
//!
//! # Host-write protocol
//!
//! Coarse host mutations (`Buffer::write_from`, `Buffer::write`,
//! `UsmAlloc::set`, `as_mut_slice`, …) reseal or unseal their region, so
//! ordinary host-side initialization between launches never trips
//! verification. Raw [`crate::GlobalView`] writes from host code outside
//! a kernel are **not** hooked — while armed they are indistinguishable
//! from corruption, which is exactly why the SDC tests use them as the
//! corruption primitive. Application code keeps host writes on the
//! coarse APIs; the rate-0 armed clean-run of the whole suite pins that.
//!
//! # Concurrency contract
//!
//! Verify/seal/snapshot walks read region bytes through raw pointers.
//! The launch protocol only runs them when no kernel is in flight
//! (a global active-launch count guards both boundaries and the
//! scrubber), matching the runtime's existing single-host-thread driving
//! model. Nested or concurrent launches skip the protocol at the inner
//! boundaries and reseal once at the outermost exit.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::error::Error;
use crate::fault::FaultPlan;

/// Checksum granularity. Small enough to localize a flip to a useful
/// page index, large enough that sealing large buffers stays cheap.
pub const PAGE_BYTES: usize = 1024;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether the integrity layer is armed process-wide. Disarmed (the
/// default), registration is skipped entirely and every hook is a single
/// relaxed atomic load — the configuration `sdc_overhead` pins <2%.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Launches currently in flight (counted only while armed). Boundary
/// verification and the scrubber only touch memory when they hold the
/// only active slot / no slot at all.
static ACTIVE_LAUNCHES: AtomicUsize = AtomicUsize::new(0);

static DETECTIONS: AtomicU64 = AtomicU64::new(0);
static CORRECTED: AtomicU64 = AtomicU64::new(0);
static SCRUB_PASSES: AtomicU64 = AtomicU64::new(0);
static REGIONS_VERIFIED: AtomicU64 = AtomicU64::new(0);
static SCRUB_CURSOR: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<Vec<Arc<Region>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Region>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn pending() -> &'static Mutex<Vec<Violation>> {
    static PENDING: OnceLock<Mutex<Vec<Violation>>> = OnceLock::new();
    PENDING.get_or_init(|| Mutex::new(Vec::new()))
}

/// Arm the integrity layer process-wide. Buffers and USM allocations
/// created from now on register checksummed regions; integrity queues
/// start verifying at launch boundaries; parked pool workers scrub.
pub fn arm() {
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm the layer (tests and overhead benchmarks). Existing regions
/// stay registered but are no longer verified, injected into, or
/// scrubbed until re-armed.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// Is the layer armed?
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// One checksummed backing allocation (a `Buffer` or USM region).
#[derive(Debug)]
pub struct Region {
    id: u64,
    label: &'static str,
    ptr: usize,
    bytes: usize,
    /// Faults are only injected into regions whose element type tolerates
    /// arbitrary bit patterns (primitive numerics). Detection and voting
    /// still cover non-injectable regions.
    injectable: bool,
    /// Fast-path mirror of `state.seal.is_some()`, so hot host-write
    /// hooks can skip the mutex when the region is already unsealed.
    sealed_hint: AtomicBool,
    state: Mutex<RegionState>,
}

#[derive(Debug)]
struct RegionState {
    alive: bool,
    /// Per-page checksums from the last seal; `None` while host writes
    /// have the region deliberately unsealed.
    seal: Option<Vec<u64>>,
    /// Bumped on every reseal; reported in [`Error::DataCorruption`] so a
    /// violation names *which* seal the contents diverged from.
    epoch: u64,
}

/// A corruption found by the idle scrubber, parked until the next launch
/// boundary (or [`take_scrub_reports`]) surfaces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Region id (sanitizer object-id namespace).
    pub region: u64,
    /// `"buffer"` or `"usm"`.
    pub label: &'static str,
    /// Index of the first mismatching [`PAGE_BYTES`] page.
    pub page: usize,
    /// Seal epoch the contents diverged from.
    pub epoch: u64,
}

impl Region {
    /// Stable region id (shared namespace with the sanitizer's object
    /// ids: deterministic program-creation order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// `"buffer"` or `"usm"`.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Region length in bytes.
    pub fn len_bytes(&self) -> usize {
        self.bytes
    }

    /// The region's bytes. Caller must hold `state` and honor the
    /// concurrency contract (no kernel in flight).
    fn bytes_slice(&self) -> &[u8] {
        // SAFETY: `ptr`/`bytes` come from a live allocation registered by
        // its owner, which unregisters (under the state lock) before
        // freeing; callers check `alive` under that same lock.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.bytes) }
    }

    fn checksums(&self) -> Vec<u64> {
        self.bytes_slice().chunks(PAGE_BYTES).map(page_checksum).collect()
    }

    fn reseal_locked(&self, st: &mut RegionState) {
        st.seal = Some(self.checksums());
        st.epoch += 1;
        self.sealed_hint.store(true, Ordering::Release);
    }

    /// Recompute checksums after a coarse host write (keeps protection
    /// active across host-side initialization).
    pub(crate) fn reseal_now(&self) {
        let mut st = lock(&self.state);
        if st.alive {
            self.reseal_locked(&mut st);
        }
    }

    /// Drop the seal (hot host-write hook, e.g. `UsmAlloc::set`):
    /// verification skips the region until the next launch-exit reseal.
    pub(crate) fn unseal_fast(&self) {
        if self.sealed_hint.swap(false, Ordering::AcqRel) {
            lock(&self.state).seal = None;
        }
    }

    /// First page whose checksum no longer matches the seal, if any.
    fn verify_locked(&self, st: &RegionState) -> Option<usize> {
        let seal = st.seal.as_ref()?;
        for (page, chunk) in self.bytes_slice().chunks(PAGE_BYTES).enumerate() {
            if seal.get(page).copied() != Some(page_checksum(chunk)) {
                return Some(page);
            }
        }
        None
    }
}

#[inline]
fn fold_word(h: u64, w: u64) -> u64 {
    let mut x = (h ^ w).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// Checksum of one page: a word-folded multiply-xor hash (a few GB/s,
/// so sealing whole suites of buffers stays off the profile).
fn page_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        h = fold_word(h, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        h = fold_word(h, u64::from_le_bytes(w));
        h = fold_word(h, rem.len() as u64);
    }
    h
}

/// Is `T` a primitive numeric type for which any bit pattern is a valid
/// value? Bit-flip injection is restricted to such regions; flipping a
/// bit of, say, an enum could forge an invalid discriminant (UB), while
/// detection via checksums is type-oblivious and covers everything.
pub(crate) fn bit_safe<T: 'static>() -> bool {
    use std::any::TypeId;
    let t = TypeId::of::<T>();
    t == TypeId::of::<u8>()
        || t == TypeId::of::<i8>()
        || t == TypeId::of::<u16>()
        || t == TypeId::of::<i16>()
        || t == TypeId::of::<u32>()
        || t == TypeId::of::<i32>()
        || t == TypeId::of::<u64>()
        || t == TypeId::of::<i64>()
        || t == TypeId::of::<usize>()
        || t == TypeId::of::<isize>()
        || t == TypeId::of::<f32>()
        || t == TypeId::of::<f64>()
}

/// Register a backing allocation. Returns `None` while disarmed (the
/// overhead-free default). The region is sealed immediately.
pub(crate) fn register(
    id: u64,
    label: &'static str,
    ptr: *const u8,
    bytes: usize,
    injectable: bool,
) -> Option<Arc<Region>> {
    if !armed() {
        return None;
    }
    let region = Arc::new(Region {
        id,
        label,
        ptr: ptr as usize,
        bytes,
        injectable,
        sealed_hint: AtomicBool::new(false),
        state: Mutex::new(RegionState { alive: true, seal: None, epoch: 0 }),
    });
    region.reseal_now();
    lock(registry()).push(Arc::clone(&region));
    Some(region)
}

/// Unregister a region before its allocation is freed. Taking the state
/// lock here synchronizes with any in-flight verify/scrub touching it.
pub(crate) fn unregister(region: &Arc<Region>) {
    {
        let mut st = lock(&region.state);
        st.alive = false;
        st.seal = None;
    }
    region.sealed_hint.store(false, Ordering::Release);
    lock(registry()).retain(|r| r.id != region.id);
}

fn live_regions() -> Vec<Arc<Region>> {
    lock(registry()).clone()
}

/// Execute exactly the per-launch work the defense performs when it is
/// disarmed — the launch-scope enter/exit and the armed/exclusive
/// branch loads — and report whether the boundary protocol would run.
/// Exists so the `sdc_overhead` benchmark can time the dormant hook
/// sequence directly; it is not part of the defense API.
pub fn disarmed_hook_probe() -> bool {
    let scope = LaunchScope::enter();
    scope.exclusive() && armed()
}

/// RAII active-launch accounting. Counted only while armed, so the
/// disarmed cost is one relaxed load.
pub(crate) struct LaunchScope {
    counted: bool,
    depth: usize,
}

impl LaunchScope {
    pub(crate) fn enter() -> Self {
        if armed() {
            let prev = ACTIVE_LAUNCHES.fetch_add(1, Ordering::SeqCst);
            LaunchScope { counted: true, depth: prev + 1 }
        } else {
            LaunchScope { counted: false, depth: 0 }
        }
    }

    /// Was this the outermost (only) launch at entry? Boundary
    /// verification and redundancy only run in that exclusive position.
    pub(crate) fn exclusive(&self) -> bool {
        self.counted && self.depth == 1
    }

    /// Is this now the only launch still in flight? The exit reseal runs
    /// at the last launch out, so concurrent launches cannot seal each
    /// other's in-flux writes.
    pub(crate) fn sole_remaining(&self) -> bool {
        self.counted && ACTIVE_LAUNCHES.load(Ordering::SeqCst) == 1
    }
}

impl Drop for LaunchScope {
    fn drop(&mut self) {
        if self.counted {
            ACTIVE_LAUNCHES.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Verify every sealed live region (and surface any parked scrubber
/// finding). Returns the first corruption as a typed error; the
/// offending region is resealed to its current contents so one fault is
/// reported once.
pub fn verify_all() -> Result<(), Error> {
    let parked: Vec<Violation> = std::mem::take(&mut *lock(pending()));
    if let Some(v) = parked.first() {
        return Err(Error::DataCorruption { region: v.region, page: v.page, epoch: v.epoch });
    }
    for region in live_regions() {
        let mut st = lock(&region.state);
        if !st.alive {
            continue;
        }
        REGIONS_VERIFIED.fetch_add(1, Ordering::Relaxed);
        if let Some(page) = region.verify_locked(&st) {
            let epoch = st.epoch;
            DETECTIONS.fetch_add(1, Ordering::Relaxed);
            region.reseal_locked(&mut st);
            return Err(Error::DataCorruption { region: region.id, page, epoch });
        }
    }
    Ok(())
}

/// Reseal every live region to its current contents (launch exit).
pub fn reseal_all() {
    for region in live_regions() {
        region.reseal_now();
    }
}

/// A full copy of every live region's bytes, for replica restore.
pub(crate) struct Snapshot {
    entries: Vec<(Arc<Region>, Vec<u8>)>,
}

pub(crate) fn snapshot_all() -> Snapshot {
    let mut entries = Vec::new();
    for region in live_regions() {
        let st = lock(&region.state);
        if st.alive {
            entries.push((Arc::clone(&region), region.bytes_slice().to_vec()));
        }
    }
    Snapshot { entries }
}

/// Write every snapshotted region's bytes back (between replica runs).
pub(crate) fn restore(snap: &Snapshot) {
    for (region, bytes) in &snap.entries {
        let st = lock(&region.state);
        if st.alive && bytes.len() == region.bytes {
            // SAFETY: restoring bytes previously read from this same live
            // allocation; every value written was a valid value of the
            // element type. No kernel is in flight (caller holds the
            // exclusive launch slot).
            unsafe {
                std::ptr::copy_nonoverlapping(bytes.as_ptr(), region.ptr as *mut u8, bytes.len());
            }
        }
    }
}

/// Order-insensitive-free digest over all live regions' contents, in
/// deterministic (creation-order) region order. Replica voting compares
/// these.
pub(crate) fn digest_all() -> u64 {
    let mut h = 0x5DEE_CE66_D47A_11E5u64;
    for region in live_regions() {
        let st = lock(&region.state);
        if !st.alive {
            continue;
        }
        h = fold_word(h, region.id);
        h = fold_word(h, page_checksum(region.bytes_slice()));
    }
    h
}

/// One idle-scrubber tick (called from parked pool workers): verify the
/// next region in cursor order if armed and no launch is in flight.
/// A mismatch is parked as a [`Violation`] (surfaced at the next launch
/// entry or by [`take_scrub_reports`]) and the region is resealed.
/// Returns whether a region was actually verified.
pub fn scrub_step() -> bool {
    if !armed() || ACTIVE_LAUNCHES.load(Ordering::SeqCst) != 0 {
        return false;
    }
    let regions = live_regions();
    if regions.is_empty() {
        return false;
    }
    let region = &regions[SCRUB_CURSOR.fetch_add(1, Ordering::Relaxed) % regions.len()];
    let mut st = lock(&region.state);
    // Re-check under the lock: a launch that started meanwhile blocks in
    // verify_all on this same lock, so contents are still stable, but a
    // finding while kernels queue up is better re-discovered at the
    // boundary itself.
    if !st.alive || ACTIVE_LAUNCHES.load(Ordering::SeqCst) != 0 {
        return false;
    }
    match region.verify_locked(&st) {
        None => {
            SCRUB_PASSES.fetch_add(1, Ordering::Relaxed);
            true
        }
        Some(page) => {
            DETECTIONS.fetch_add(1, Ordering::Relaxed);
            lock(pending()).push(Violation {
                region: region.id,
                label: region.label,
                page,
                epoch: st.epoch,
            });
            region.reseal_locked(&mut st);
            true
        }
    }
}

/// Synchronously scrub every live region (deterministic test hook).
/// Findings are returned (not parked) and offenders resealed.
pub fn scrub_now() -> Vec<Violation> {
    let mut found = Vec::new();
    for region in live_regions() {
        let mut st = lock(&region.state);
        if !st.alive {
            continue;
        }
        if let Some(page) = region.verify_locked(&st) {
            DETECTIONS.fetch_add(1, Ordering::Relaxed);
            found.push(Violation {
                region: region.id,
                label: region.label,
                page,
                epoch: st.epoch,
            });
            region.reseal_locked(&mut st);
        } else {
            SCRUB_PASSES.fetch_add(1, Ordering::Relaxed);
        }
    }
    found
}

/// Drain violations parked by the idle scrubber.
pub fn take_scrub_reports() -> Vec<Violation> {
    std::mem::take(&mut *lock(pending()))
}

/// Aggregate counters for reporting and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Live registered regions.
    pub regions: usize,
    /// Region verifications at launch boundaries.
    pub regions_verified: u64,
    /// Corruptions detected (boundary + scrubber).
    pub detections: u64,
    /// Clean idle-scrubber region sweeps.
    pub scrub_passes: u64,
    /// Divergent replica digests outvoted by redundancy.
    pub corrected: u64,
}

/// Current aggregate counters (process-wide).
pub fn stats() -> IntegrityStats {
    IntegrityStats {
        regions: lock(registry()).len(),
        regions_verified: REGIONS_VERIFIED.load(Ordering::Relaxed),
        detections: DETECTIONS.load(Ordering::Relaxed),
        scrub_passes: SCRUB_PASSES.load(Ordering::Relaxed),
        corrected: CORRECTED.load(Ordering::Relaxed),
    }
}

/// Record `n` outvoted divergences. Called by the queue's redundant
/// launch path when voting rejects a minority digest; public so
/// out-of-tree recovery layers (and harness tests) can report
/// corrections into the same counter the suite harness diffs.
pub fn record_corrected(n: u64) {
    CORRECTED.fetch_add(n, Ordering::Relaxed);
}

/// Total divergences outvoted by redundant execution since process
/// start. The suite harness diffs this around a run to distinguish
/// `Corrected` from `Correct`.
pub fn corrected_total() -> u64 {
    CORRECTED.load(Ordering::Relaxed)
}

/// Total corruptions detected since process start.
pub fn detections_total() -> u64 {
    DETECTIONS.load(Ordering::Relaxed)
}

// --- injection (driven by a FaultPlan at launch boundaries) ---------------

/// Launch-entry injection: targeted one-shot flips first (exact
/// deterministic true-positive tests), then the seeded at-rest flip the
/// entry verification must catch.
pub(crate) fn inject_entry(plan: &FaultPlan) {
    apply_flip_targets(plan);
    if plan.wants_flip(false) {
        flip_random(plan);
    }
}

/// Launch-exit injection: an in-flight flip landing after the kernel ran
/// but before the reseal — the case only redundant execution can vote
/// away (the corrupt bytes get sealed otherwise).
pub(crate) fn inject_exit(plan: &FaultPlan) {
    if plan.wants_flip(true) {
        flip_random(plan);
    }
}

fn apply_flip_targets(plan: &FaultPlan) {
    let targets = plan.take_flip_targets();
    if targets.is_empty() {
        return;
    }
    let regions = live_regions();
    for (rid, byte, bit) in targets {
        if let Some(region) = regions.iter().find(|r| r.id == rid) {
            let st = lock(&region.state);
            if st.alive && region.injectable && byte < region.bytes {
                // SAFETY: in-bounds byte of a live, bit-safe region; no
                // kernel in flight at a launch boundary.
                unsafe {
                    *(region.ptr as *mut u8).add(byte) ^= 1 << (bit & 7);
                }
                plan.note_flips(1);
            }
        }
    }
}

fn flip_random(plan: &FaultPlan) {
    let regions: Vec<Arc<Region>> = live_regions()
        .into_iter()
        .filter(|r| r.injectable && r.bytes > 0)
        .collect();
    if regions.is_empty() {
        return;
    }
    let region = &regions[plan.pick(regions.len())];
    let st = lock(&region.state);
    if !st.alive {
        return;
    }
    // Single or multi-bit event (1–3 flips), all sites sequenced draws.
    let flips = 1 + plan.pick(3) as u64;
    for _ in 0..flips {
        let byte = plan.pick(region.bytes);
        let bit = plan.pick(8) as u8;
        // SAFETY: as in apply_flip_targets.
        unsafe {
            *(region.ptr as *mut u8).add(byte) ^= 1 << bit;
        }
    }
    plan.note_flips(flips);
}

/// Apply the plan's stuck-at page, choosing the site on first
/// application (stateless seed-derived draws over the then-live
/// regions). The same page gets the same OR-mask every launch, so the
/// corruption is deterministic across replicas — it survives voting by
/// design and must be caught by the suite's output validators.
pub(crate) fn apply_stuck(plan: &FaultPlan) {
    let site = {
        let mut slot = plan.stuck_slot();
        if slot.is_none() {
            if !plan.stuck_wanted() {
                return;
            }
            let regions: Vec<Arc<Region>> = live_regions()
                .into_iter()
                .filter(|r| r.injectable && r.bytes > 0)
                .collect();
            if regions.is_empty() {
                return;
            }
            let (ri, pi, bit) = plan.stuck_draws();
            let region = &regions[ri % regions.len()];
            let pages = region.bytes.div_ceil(PAGE_BYTES);
            *slot = Some((region.id, pi % pages.max(1), bit & 7));
        }
        match *slot {
            Some(s) => s,
            None => return,
        }
    };
    let (rid, page, bit) = site;
    let Some(region) = live_regions().into_iter().find(|r| r.id == rid) else {
        return;
    };
    let st = lock(&region.state);
    if !st.alive {
        return;
    }
    let start = page * PAGE_BYTES;
    if start >= region.bytes {
        return;
    }
    let end = (start + PAGE_BYTES).min(region.bytes);
    let mask = 1u8 << bit;
    let mut changed = false;
    for off in start..end {
        // SAFETY: in-bounds bytes of a live, bit-safe region at a launch
        // boundary.
        unsafe {
            let p = (region.ptr as *mut u8).add(off);
            if *p & mask == 0 {
                *p |= mask;
                changed = true;
            }
        }
    }
    if changed {
        plan.note_stuck();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_checksum_is_deterministic_and_sensitive() {
        let a = vec![7u8; 1024];
        let mut b = a.clone();
        assert_eq!(page_checksum(&a), page_checksum(&a));
        b[511] ^= 0x10;
        assert_ne!(page_checksum(&a), page_checksum(&b));
        // Trailing partial pages fold their length, so a page of three
        // zero bytes differs from one of four.
        assert_ne!(page_checksum(&[0, 0, 0]), page_checksum(&[0, 0, 0, 0]));
    }

    #[test]
    fn bit_safe_admits_numerics_only() {
        assert!(bit_safe::<f32>());
        assert!(bit_safe::<u64>());
        assert!(bit_safe::<i8>());
        assert!(!bit_safe::<bool>());
        assert!(!bit_safe::<char>());
        assert!(!bit_safe::<(f32, f32)>());
    }

    #[test]
    fn empty_page_checksum_is_stable() {
        assert_eq!(page_checksum(&[]), page_checksum(&[]));
    }
}
