//! Fixed-width SIMD lanes for kernel inner loops.
//!
//! `std::simd` is unstable and this build is offline, so vector width is
//! expressed the portable way: small fixed-size array structs whose
//! elementwise operator loops LLVM reliably autovectorizes at `-O`
//! (the same idiom `sycl::vec<float, 8>` lowers to on CPU targets). The
//! width is fixed at [`LANES`] = 8 — one AVX2 register of `f32`/`u32`,
//! two NEON registers — matching the `float8`/`uint8` shapes the
//! Altis-SYCL FPGA ports unroll to.
//!
//! # Bit-exactness policy
//!
//! Converted kernels must stay bit-identical to their scalar form, so
//! lane ops are **plain elementwise ops in the original per-element
//! order** — no FMA contraction (each `*` and `+` stays a separate
//! rounding, exactly as the scalar loop rounds), no horizontal
//! reassociation of `f32` sums. Horizontal folds exist only for types
//! whose op is fully associative and commutative (`u32` wrapping adds)
//! or order-insensitive up to documented IEEE caveats (`f32` min/max).
//! Order-sensitive `f32` sum reductions are *refused* vectorization and
//! keep their deterministic chunk-order tree (see DESIGN.md §10).
//!
//! # Opt-in
//!
//! Conversion is per-kernel: a kernel opts in by branching on
//! [`enabled`] between its lane path and its scalar path, and every lane
//! loop carries a scalar remainder arm (enforced by the `lanes-remainder`
//! lint). `HETERO_RT_LANES=0` disables all lane paths at once — the
//! scalar arms then run the full range, which is also how the roofline
//! benchmark measures the scalar baseline in-process via [`force`].
//!
//! Lane accessors on [`crate::GlobalView`] amortize the bounds check to
//! one per [`LANES`] elements but still record **per-element** sanitizer
//! accesses while a sanitized launch is armed, so race reports are
//! identical whether a kernel ran its lane path or its scalar path.

// Lane bodies are written as indexed `for k in 0..LANES` loops on
// purpose: the index form states "lane k of the output is exactly this
// expression of lane k of the inputs", which is the bit-exactness
// contract, and it is the shape LLVM's loop vectorizer recognizes.
// Iterator/assign-op rewrites obscure that without changing codegen.
#![allow(clippy::needless_range_loop, clippy::assign_op_pattern)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Fixed lane width of every vector struct in this module.
pub const LANES: usize = 8;

/// Tri-state: 0 = unresolved, 1 = enabled, 2 = disabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether lane paths are enabled. Resolved once from `HETERO_RT_LANES`
/// (default: enabled; `0`, `off` or `false` disable), overridable at
/// runtime with [`force`].
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => resolve(),
    }
}

#[cold]
fn resolve() -> bool {
    let on = match std::env::var("HETERO_RT_LANES") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
        Err(_) => true,
    };
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Force lane paths on or off, overriding the environment. Used by the
/// roofline benchmark to measure scalar and lane variants of the same
/// kernel in one process, and by tests pinning lane/scalar equality.
pub fn force(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

macro_rules! lane_struct {
    ($(#[$doc:meta])* $name:ident, $elem:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        #[repr(transparent)]
        pub struct $name(pub [$elem; LANES]);

        impl $name {
            /// Broadcast `v` into every lane.
            #[inline]
            pub fn splat(v: $elem) -> Self {
                $name([v; LANES])
            }

            /// The underlying lane array.
            #[inline]
            pub fn to_array(self) -> [$elem; LANES] {
                self.0
            }
        }

        impl From<[$elem; LANES]> for $name {
            #[inline]
            fn from(a: [$elem; LANES]) -> Self {
                $name(a)
            }
        }
    };
}

macro_rules! lane_binop {
    ($name:ident, $trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for $name {
            type Output = $name;
            #[inline]
            fn $method(self, rhs: $name) -> $name {
                let mut out = self.0;
                for k in 0..LANES {
                    out[k] = out[k] $op rhs.0[k];
                }
                $name(out)
            }
        }
    };
}

lane_struct!(
    /// Eight `f32` lanes. Arithmetic is elementwise with per-lane
    /// rounding identical to the scalar op sequence (no FMA).
    F32x8,
    f32
);
lane_binop!(F32x8, Add, add, +);
lane_binop!(F32x8, Sub, sub, -);
lane_binop!(F32x8, Mul, mul, *);
lane_binop!(F32x8, Div, div, /);

impl F32x8 {
    /// Elementwise `f32::min` (NaN-ignoring, like the scalar fold).
    #[inline]
    pub fn min(self, rhs: F32x8) -> F32x8 {
        let mut out = self.0;
        for k in 0..LANES {
            out[k] = out[k].min(rhs.0[k]);
        }
        F32x8(out)
    }

    /// Elementwise `f32::max`.
    #[inline]
    pub fn max(self, rhs: F32x8) -> F32x8 {
        let mut out = self.0;
        for k in 0..LANES {
            out[k] = out[k].max(rhs.0[k]);
        }
        F32x8(out)
    }

    /// Elementwise clamp, same semantics as `f32::clamp` per lane.
    #[inline]
    pub fn clamp(self, lo: f32, hi: f32) -> F32x8 {
        let mut out = self.0;
        for k in 0..LANES {
            out[k] = out[k].clamp(lo, hi);
        }
        F32x8(out)
    }

    /// Elementwise `self < rhs` as `u32` 0/1 lanes — the compaction
    /// flag shape (`u32::from(a < b)` per lane).
    #[inline]
    pub fn lt_flags(self, rhs: F32x8) -> U32x8 {
        let mut out = [0u32; LANES];
        for k in 0..LANES {
            out[k] = u32::from(self.0[k] < rhs.0[k]);
        }
        U32x8(out)
    }
}

lane_struct!(
    /// Eight `u32` lanes; arithmetic is wrapping (fully associative and
    /// commutative, so horizontal folds are bit-exact in any order).
    U32x8,
    u32
);

impl U32x8 {
    /// Elementwise wrapping add.
    #[inline]
    pub fn wrapping_add(self, rhs: U32x8) -> U32x8 {
        let mut out = self.0;
        for k in 0..LANES {
            out[k] = out[k].wrapping_add(rhs.0[k]);
        }
        U32x8(out)
    }

    /// Horizontal wrapping sum. Wrapping addition is associative and
    /// commutative, so this equals the sequential fold bit-for-bit.
    #[inline]
    pub fn hsum_wrapping(self) -> u32 {
        self.0.iter().fold(0u32, |a, &b| a.wrapping_add(b))
    }

    /// Elementwise `% m` (lane bucket indices for histograms). Takes a
    /// scalar modulus, so it is deliberately not `std::ops::Rem`.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, m: u32) -> U32x8 {
        let mut out = self.0;
        for k in 0..LANES {
            out[k] %= m;
        }
        U32x8(out)
    }

    /// In-lane exclusive wrapping prefix plus the lane-group total:
    /// `out[k] = self[0] + … + self[k-1]`. Wrapping adds make this
    /// bit-equal to the scalar running prefix.
    #[inline]
    pub fn prefix_exclusive_wrapping(self) -> (U32x8, u32) {
        let mut out = [0u32; LANES];
        let mut acc = 0u32;
        for k in 0..LANES {
            out[k] = acc;
            acc = acc.wrapping_add(self.0[k]);
        }
        (U32x8(out), acc)
    }
}

lane_struct!(
    /// Eight `i32` lanes; wrapping arithmetic like [`U32x8`].
    I32x8,
    i32
);

impl I32x8 {
    /// Elementwise wrapping add.
    #[inline]
    pub fn wrapping_add(self, rhs: I32x8) -> I32x8 {
        let mut out = self.0;
        for k in 0..LANES {
            out[k] = out[k].wrapping_add(rhs.0[k]);
        }
        I32x8(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_ops_match_scalar_sequence_bitwise() {
        let a: [f32; LANES] = std::array::from_fn(|k| (k as f32 + 1.0) * 0.3);
        let b: [f32; LANES] = std::array::from_fn(|k| (k as f32 - 3.5) * 1.7);
        let v = (F32x8(a) - F32x8(b)) * F32x8::splat(0.7) + F32x8(b);
        for k in 0..LANES {
            let s = (a[k] - b[k]) * 0.7 + b[k];
            assert_eq!(v.0[k].to_bits(), s.to_bits(), "lane {k}");
        }
    }

    #[test]
    fn u32_horizontal_sum_is_order_free() {
        let a: [u32; LANES] = std::array::from_fn(|k| u32::MAX - k as u32 * 1_000_000);
        let seq = a.iter().fold(0u32, |x, &y| x.wrapping_add(y));
        assert_eq!(U32x8(a).hsum_wrapping(), seq);
    }

    #[test]
    fn exclusive_prefix_matches_running_scalar() {
        let a: [u32; LANES] = std::array::from_fn(|k| (k as u32 + 1).wrapping_mul(0x9E37_79B9));
        let (pre, total) = U32x8(a).prefix_exclusive_wrapping();
        let mut acc = 0u32;
        for k in 0..LANES {
            assert_eq!(pre.0[k], acc);
            acc = acc.wrapping_add(a[k]);
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn lt_flags_match_scalar_compare() {
        let a = F32x8([1.0, 2.0, 3.0, f32::NAN, -1.0, 0.0, 5.5, -0.0]);
        let b = F32x8::splat(2.5);
        let f = a.lt_flags(b);
        for k in 0..LANES {
            assert_eq!(f.0[k], u32::from(a.0[k] < b.0[k]), "lane {k}");
        }
    }

    #[test]
    fn force_overrides_environment() {
        force(false);
        assert!(!enabled());
        force(true);
        assert!(enabled());
    }
}
