//! # hetero-rt — a SYCL-like heterogeneous runtime for Altis-SYCL-rs
//!
//! This crate is the execution substrate of the Altis-SYCL reproduction.
//! It provides the programming-model surface the paper's applications are
//! written against:
//!
//! * [`Device`] handles with capability queries (USM support, maximum
//!   work-group sizes, local-memory capacity) mirroring the paper's
//!   Table 2 devices,
//! * [`Queue`]s with in-order submission and profiling [`Event`]s,
//! * [`Buffer`]s with host/device accessors,
//! * ND-Range kernel execution with work-groups, work-items, local
//!   (shared) memory and barrier phases ([`ndrange`]),
//! * Single-Task kernel execution (the FPGA-style flavour the paper's
//!   Section 5.3 rewrites ND-Range kernels into),
//! * [`Pipe`]s — bounded FIFOs connecting concurrently running kernels,
//!   used by the paper's optimized KMeans design (Figure 3),
//! * USM-style allocations whose availability depends on the device
//!   (the paper's FPGAs return null for `sycl::malloc_host`).
//!
//! ## Execution model
//!
//! Kernels execute *functionally* on host threads: work-groups are
//! distributed over a persistent, process-wide worker pool ([`pool`]) —
//! work-groups are independent in SYCL, so this parallelisation is
//! semantics-preserving — and the work-items *within* a group run as
//! explicit per-phase iteration, which is the standard technique for
//! executing barrier-synchronised SIMT code on a CPU. The pool is
//! created lazily on the first parallel launch and reused for every
//! subsequent one, so iterative applications pay thread-creation cost
//! once per process instead of once per kernel launch. Timing of the modelled accelerators is *not* done here — the
//! `device-model` and `fpga-sim` crates consume work profiles instead.
//!
//! ## Example
//!
//! ```
//! use hetero_rt::prelude::*;
//!
//! let q = Queue::new(Device::cpu());
//! let data = Buffer::from_slice(&[1.0f32, 2.0, 3.0, 4.0]);
//! let out = Buffer::<f32>::new(4);
//! let (dv, ov) = (data.view(), out.view());
//! q.parallel_for("square", Range::d1(4), move |it| {
//!     let x = dv.get(it.gid(0));
//!     ov.set(it.gid(0), x * x);
//! });
//! assert_eq!(out.to_vec(), vec![1.0, 4.0, 9.0, 16.0]);
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod cancel;
pub mod constant;
pub mod cooperative;
pub mod device;
pub mod elide;
pub mod error;
pub mod event;
pub mod executor;
pub mod fault;
pub mod graph;
pub mod graph_opt;
pub mod group_algorithms;
pub mod integrity;
pub mod lanes;
pub mod local;
pub mod ndrange;
pub mod pipe;
pub mod pool;
pub mod prove;
pub mod queue;
pub mod reduction;
pub mod sanitize;
pub mod stream;
pub mod usm;

pub use buffer::{Buffer, GlobalView, SlabStats};
pub use elide::{Gate, ProvenView};
pub use cancel::CancelToken;
pub use constant::ConstantMemory;
pub use cooperative::GridCtx;
pub use device::{Device, DeviceCaps, DeviceKind};
pub use error::{Error, Result};
pub use event::{Event, LaunchStats, LedgerSnapshot, ProfilingInfo, ResilienceInfo, ResilienceLedger};
pub use fault::{FaultKind, FaultPlan};
pub use graph::{
    reads, reads_item, reads_writes, reads_writes_item, writes, writes_dense, writes_item,
    Access, Binding, Footprint, Graph, GraphBuilder,
};
pub use graph_opt::{GraphOptLevel, OptimizedGraph};
pub use hetero_ir::OptReport;
pub use integrity::{IntegrityStats, Violation};
pub use lanes::{F32x8, I32x8, U32x8, LANES};
pub use local::{LocalArray, PrivateArray};
pub use ndrange::{GroupCtx, Item, NdRange, Range};
pub use pipe::{Pipe, PipeReceiver, PipeSender};
pub use queue::{Fallback, Queue, Redundancy, RetryPolicy};
pub use sanitize::{MemSpace, RaceKind, RaceReport};
pub use stream::{
    run_piped, Ingress, StreamConfig, StreamRunner, StreamStage, StreamStats, WindowReport,
    WindowVerdict,
};

/// Crate-wide prelude bringing the common runtime types into scope,
/// mirroring `sycl.hpp`'s role in the original code base.
pub mod prelude {
    pub use crate::buffer::{Buffer, GlobalView};
    pub use crate::elide::{Gate, ProvenView};
    pub use crate::cancel::CancelToken;
    pub use crate::device::{Device, DeviceCaps, DeviceKind};
    pub use crate::error::{Error, Result};
    pub use crate::event::{Event, ResilienceLedger};
    pub use crate::fault::{FaultKind, FaultPlan};
    pub use crate::graph::{
        reads, reads_item, reads_writes, reads_writes_item, writes, writes_dense, writes_item,
        Binding, Footprint, Graph, GraphBuilder,
    };
    pub use crate::graph_opt::{GraphOptLevel, OptimizedGraph};
    pub use crate::lanes::{F32x8, I32x8, U32x8, LANES};
    pub use crate::local::{LocalArray, PrivateArray};
    pub use crate::ndrange::{GroupCtx, Item, NdRange, Range};
    pub use crate::pipe::{Pipe, PipeReceiver, PipeSender};
    pub use crate::queue::{Fallback, Queue, Redundancy, RetryPolicy};
    pub use crate::sanitize::{MemSpace, RaceKind, RaceReport};
    pub use crate::stream::{
        run_piped, Ingress, StreamConfig, StreamRunner, StreamStage, StreamStats, WindowReport,
        WindowVerdict,
    };
}
