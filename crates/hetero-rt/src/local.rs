//! Local (shared) memory and per-item private state.
//!
//! [`LocalArray`] models a work-group-shared array, the analogue of CUDA
//! `__shared__` / SYCL `local_accessor`. Because our runtime executes the
//! work-items of one group on a single thread (phase-wise), local arrays
//! need no synchronisation and are plain `Rc`-backed cells.
//!
//! [`PrivateArray`] carries per-work-item "register" state across barrier
//! phases (one slot per local id), a standard device-to-CPU porting tool.
//!
//! The arena enforces a per-group capacity limit so that Altis kernels
//! whose shared usage would not fit a device surface the problem in tests
//! — the CPU-side stand-in for the paper's observation that DPCT's
//! dynamically-sized accessors force the FPGA compiler to assume 16 kB per
//! shared variable.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::fault::LocalFaultCtx;
use crate::sanitize::{self, AccessKind};

/// A work-group-shared array of `T`.
///
/// Cloning shares the underlying storage (all work-items of the group see
/// the same memory).
pub struct LocalArray<T> {
    data: Rc<RefCell<Box<[T]>>>,
    // Per-group allocation index under the race sanitizer; `None` when
    // the owning launch is not sanitized, making the accessor hooks a
    // single never-taken branch.
    san_id: Option<u64>,
    // One-shot SDC flip site (element, bit): the first plain load of that
    // element returns a bit-flipped value and clears the cell. `None`
    // (the default) keeps the accessor a single never-taken branch;
    // shared via Rc so clones consume the same one-shot event.
    flip: Option<FlipCell>,
}

/// One-shot SDC flip site `(element, bit)`, shared across clones so the
/// whole group consumes the same single event.
type FlipCell = Rc<Cell<Option<(usize, u8)>>>;

impl<T> Clone for LocalArray<T> {
    fn clone(&self) -> Self {
        LocalArray {
            data: Rc::clone(&self.data),
            san_id: self.san_id,
            flip: self.flip.clone(),
        }
    }
}

/// Flip `bit` of the value's first storage byte. Callers only request
/// flips for element types where every bit pattern is a valid value
/// (see `integrity::bit_safe`).
fn flip_first_byte<T: Copy>(v: T, bit: u8) -> T {
    if std::mem::size_of::<T>() == 0 {
        return v;
    }
    let mut out = v;
    // SAFETY: T is at least one byte; the result is a valid T by the
    // caller's bit-safety gate.
    unsafe {
        *(&mut out as *mut T as *mut u8) ^= 1 << (bit & 7);
    }
    out
}

impl<T: Copy + Default> LocalArray<T> {
    pub(crate) fn new(len: usize, san_id: Option<u64>) -> Self {
        let data: Box<[T]> = (0..len).map(|_| T::default()).collect();
        LocalArray { data: Rc::new(RefCell::new(data)), san_id, flip: None }
    }

    pub(crate) fn with_flip(mut self, site: Option<(usize, u8)>) -> Self {
        if let Some(site) = site {
            self.flip = Some(Rc::new(Cell::new(Some(site))));
        }
        self
    }

    #[inline]
    fn record(&self, i: usize, kind: AccessKind) {
        if let Some(id) = self.san_id {
            sanitize::record_local(id, i, kind);
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.record(i, AccessKind::Read);
        let v = self.data.borrow()[i];
        if let Some(flip) = &self.flip {
            if let Some((fi, bit)) = flip.get() {
                if fi == i {
                    flip.set(None);
                    return flip_first_byte(v, bit);
                }
            }
        }
        v
    }

    /// Store `v` at element `i`.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        self.record(i, AccessKind::Write);
        self.data.borrow_mut()[i] = v;
    }

    /// Read-modify-write element `i`. The closure runs with no borrow
    /// held, so it may freely read other elements of the same array
    /// (common in tree reductions).
    #[inline]
    pub fn update(&self, i: usize, f: impl FnOnce(T) -> T) {
        self.record(i, AccessKind::Read);
        let cur = self.data.borrow()[i];
        let new = f(cur);
        self.record(i, AccessKind::Write);
        self.data.borrow_mut()[i] = new;
    }

    /// Fill the whole array with `v`.
    pub fn fill(&self, v: T) {
        if self.san_id.is_some() {
            for i in 0..self.len() {
                self.record(i, AccessKind::Write);
            }
        }
        self.data.borrow_mut().iter_mut().for_each(|x| *x = v);
    }

    /// Snapshot the contents into a `Vec` (test/diagnostic helper).
    pub fn to_vec(&self) -> Vec<T> {
        self.data.borrow().to_vec()
    }
}

/// Per-work-item private state that survives across barrier phases: one
/// slot per local linear id.
pub struct PrivateArray<T> {
    data: Rc<RefCell<Box<[T]>>>,
}

impl<T> Clone for PrivateArray<T> {
    fn clone(&self) -> Self {
        PrivateArray { data: Rc::clone(&self.data) }
    }
}

impl<T: Copy + Default> PrivateArray<T> {
    pub(crate) fn new(group_size: usize) -> Self {
        let data: Box<[T]> = (0..group_size).map(|_| T::default()).collect();
        PrivateArray { data: Rc::new(RefCell::new(data)) }
    }

    /// Load the slot of local id `lid`.
    #[inline]
    pub fn get(&self, lid: usize) -> T {
        self.data.borrow()[lid]
    }

    /// Store into the slot of local id `lid`.
    #[inline]
    pub fn set(&self, lid: usize, v: T) {
        self.data.borrow_mut()[lid] = v;
    }

    /// Read-modify-write the slot of local id `lid`. As with
    /// [`LocalArray::update`], the closure runs with no borrow held.
    #[inline]
    pub fn update(&self, lid: usize, f: impl FnOnce(T) -> T) {
        let cur = self.data.borrow()[lid];
        let new = f(cur);
        self.data.borrow_mut()[lid] = new;
    }
}

/// Per-group local-memory arena tracking allocated bytes against the
/// device capacity.
pub(crate) struct LocalArena {
    limit: usize,
    bytes: usize,
    // Stateless local-flip decisions for this (kernel, group); `None`
    // unless the launch runs under an SDC fault plan.
    fault: Option<LocalFaultCtx>,
    allocs: u32,
}

impl LocalArena {
    pub(crate) fn new(limit: usize, fault: Option<LocalFaultCtx>) -> Self {
        LocalArena { limit, bytes: 0, fault, allocs: 0 }
    }

    pub(crate) fn alloc<T: Copy + Default + 'static>(&mut self, len: usize) -> LocalArray<T> {
        let req = len * std::mem::size_of::<T>();
        if self.bytes + req > self.limit {
            // Typed payload: kernel containment reports this launch as
            // Error::LocalMemExceeded (a fallback-eligible capability
            // error) rather than a generic kernel panic.
            std::panic::panic_any(crate::error::Error::LocalMemExceeded {
                requested: self.bytes + req,
                limit: self.limit,
            });
        }
        self.bytes += req;
        let alloc_index = self.allocs;
        self.allocs += 1;
        let arr = LocalArray::new(len, sanitize::next_local_array_id());
        match &self.fault {
            Some(ctx) if crate::integrity::bit_safe::<T>() => {
                arr.with_flip(ctx.flip_for_alloc(alloc_index, len))
            }
            _ => arr,
        }
    }

    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_array_shared_between_clones() {
        let a = LocalArray::<f32>::new(4, None);
        let b = a.clone();
        a.set(2, 5.5);
        assert_eq!(b.get(2), 5.5);
    }

    #[test]
    fn fill_and_snapshot() {
        let a = LocalArray::<i32>::new(3, None);
        a.fill(-1);
        assert_eq!(a.to_vec(), vec![-1, -1, -1]);
    }

    #[test]
    fn arena_tracks_bytes_and_enforces_limit() {
        let mut arena = LocalArena::new(64, None);
        let _a = arena.alloc::<f64>(4); // 32 B
        assert_eq!(arena.bytes(), 32);
        let _b = arena.alloc::<u8>(32); // 32 B more, exactly at limit
        assert_eq!(arena.bytes(), 64);
    }

    #[test]
    fn arena_over_limit_panics_with_typed_payload() {
        crate::fault::install_quiet_hook();
        let payload = std::panic::catch_unwind(|| {
            let mut arena = LocalArena::new(16, None);
            let _a = arena.alloc::<f64>(3); // 24 B > 16 B
        })
        .unwrap_err();
        let e = payload
            .downcast::<crate::error::Error>()
            .expect("payload should be a typed Error");
        assert_eq!(
            *e,
            crate::error::Error::LocalMemExceeded { requested: 24, limit: 16 }
        );
    }

    #[test]
    fn one_shot_flip_corrupts_exactly_one_load() {
        let a = LocalArray::<u32>::new(4, None).with_flip(Some((2, 3)));
        a.set(2, 0);
        // First load of the flipped element returns the corrupted value…
        assert_eq!(a.get(2), 1 << 3);
        // …and the event is consumed: later loads see the real contents.
        assert_eq!(a.get(2), 0);
        // Other elements were never affected.
        assert_eq!(a.get(0), 0);
        // `with_flip(None)` is inert.
        let b = LocalArray::<u32>::new(2, None).with_flip(None);
        assert_eq!(b.get(0), 0);
    }

    #[test]
    fn private_array_update() {
        let p = PrivateArray::<u64>::new(2);
        p.set(1, 10);
        p.update(1, |v| v * 3);
        assert_eq!(p.get(1), 30);
        assert_eq!(p.get(0), 0);
    }
}
