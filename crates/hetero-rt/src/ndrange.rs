//! ND-Range index space, work-groups, and work-items.
//!
//! SYCL's `nd_range<3>` is reproduced by [`NdRange`]: a global range
//! partitioned into work-groups of a fixed local range. Kernels are
//! written *group-wise*: the runtime hands the kernel a [`GroupCtx`] and
//! the kernel iterates its work-items in phases, with
//! [`GroupCtx::barrier`] separating phases — the standard way of giving
//! SIMT barrier semantics on a CPU. This mirrors the paper's porting
//! direction, where ND-Range structure is kept explicit so it can later be
//! refactored for FPGA consumption.

use std::cell::{Cell, RefCell};

use crate::local::{LocalArena, LocalArray, PrivateArray};

/// An up-to-3-dimensional index range (like `sycl::range<3>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Extent per dimension; unused dimensions are 1.
    pub dims: [usize; 3],
}

impl Range {
    /// 1-D range.
    pub fn d1(x: usize) -> Self {
        Range { dims: [x, 1, 1] }
    }

    /// 2-D range (`x` is the fastest-varying dimension).
    pub fn d2(x: usize, y: usize) -> Self {
        Range { dims: [x, y, 1] }
    }

    /// 3-D range.
    pub fn d3(x: usize, y: usize, z: usize) -> Self {
        Range { dims: [x, y, z] }
    }

    /// Total number of indices (product of extents).
    pub fn size(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Convert a linear index into (x, y, z) coordinates.
    pub fn delinearize(&self, lin: usize) -> [usize; 3] {
        let x = lin % self.dims[0];
        let y = (lin / self.dims[0]) % self.dims[1];
        let z = lin / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// Convert (x, y, z) coordinates into a linear index.
    pub fn linearize(&self, idx: [usize; 3]) -> usize {
        idx[0] + self.dims[0] * (idx[1] + self.dims[1] * idx[2])
    }
}

/// A global range partitioned into work-groups (like `sycl::nd_range<3>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    /// Total global index space.
    pub global: Range,
    /// Work-group (local) extent; must divide `global` per dimension.
    pub local: Range,
}

impl NdRange {
    /// 1-D ND-range.
    pub fn d1(global: usize, local: usize) -> Self {
        NdRange { global: Range::d1(global), local: Range::d1(local) }
    }

    /// 2-D ND-range.
    pub fn d2(gx: usize, gy: usize, lx: usize, ly: usize) -> Self {
        NdRange { global: Range::d2(gx, gy), local: Range::d2(lx, ly) }
    }

    /// 3-D ND-range.
    #[allow(clippy::too_many_arguments)]
    pub fn d3(gx: usize, gy: usize, gz: usize, lx: usize, ly: usize, lz: usize) -> Self {
        NdRange { global: Range::d3(gx, gy, gz), local: Range::d3(lx, ly, lz) }
    }

    /// Number of work-groups per dimension.
    pub fn groups(&self) -> Range {
        Range {
            dims: [
                self.global.dims[0] / self.local.dims[0],
                self.global.dims[1] / self.local.dims[1],
                self.global.dims[2] / self.local.dims[2],
            ],
        }
    }

    /// Total number of work-groups.
    pub fn num_groups(&self) -> usize {
        self.groups().size()
    }

    /// Work-items per work-group.
    pub fn group_size(&self) -> usize {
        self.local.size()
    }

    /// Check divisibility of global by local per dimension.
    pub fn validate(&self) -> crate::error::Result<()> {
        for d in 0..3 {
            if self.local.dims[d] == 0 || !self.global.dims[d].is_multiple_of(self.local.dims[d]) {
                return Err(crate::error::Error::IndivisibleRange {
                    global: self.global.dims[d],
                    local: self.local.dims[d],
                    dim: d,
                });
            }
        }
        Ok(())
    }
}

/// One work-item's identity within a kernel launch
/// (like `sycl::nd_item<3>`).
#[derive(Debug, Clone, Copy)]
pub struct Item {
    /// Global id per dimension.
    pub global: [usize; 3],
    /// Local id within the work-group per dimension.
    pub local: [usize; 3],
    /// Work-group id per dimension.
    pub group: [usize; 3],
    /// Linear local id (0..group_size).
    pub local_linear: usize,
    /// Linear global id.
    pub global_linear: usize,
}

impl Item {
    /// Global id in dimension `d` (like `item.get_global_id(d)`).
    #[inline]
    pub fn gid(&self, d: usize) -> usize {
        self.global[d]
    }

    /// Local id in dimension `d`.
    #[inline]
    pub fn lid(&self, d: usize) -> usize {
        self.local[d]
    }

    /// Group id in dimension `d`.
    #[inline]
    pub fn grp(&self, d: usize) -> usize {
        self.group[d]
    }
}

/// Barrier memory scope, mirroring
/// `sycl::access::fence_space`. The paper's Section 3.2.1 narrows DPCT's
/// conservative global-scope barriers to local scope where safe; the
/// runtime records which scopes were requested so tests (and the
/// migration-pass crate) can observe the distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceSpace {
    /// Fence local (shared) memory only — the cheap barrier.
    Local,
    /// Fence local and global memory — DPCT's conservative default.
    Global,
}

/// Execution context for one work-group.
///
/// A group kernel receives `&mut GroupCtx` and expresses SIMT code as
/// *phases*: `ctx.items(|item| ...)` runs the closure once per work-item;
/// `ctx.barrier(..)` ends a phase. Because phases run to completion before
/// the next phase starts, all barrier orderings of the original SIMT
/// program are preserved.
pub struct GroupCtx {
    group_id: [usize; 3],
    nd: NdRange,
    arena: RefCell<LocalArena>,
    barriers_local: Cell<u64>,
    barriers_global: Cell<u64>,
    items_executed: Cell<u64>,
}

impl GroupCtx {
    pub(crate) fn new(
        group_id: [usize; 3],
        nd: NdRange,
        local_mem_limit: usize,
        local_fault: Option<crate::fault::LocalFaultCtx>,
    ) -> Self {
        GroupCtx {
            group_id,
            nd,
            arena: RefCell::new(LocalArena::new(local_mem_limit, local_fault)),
            barriers_local: Cell::new(0),
            barriers_global: Cell::new(0),
            items_executed: Cell::new(0),
        }
    }

    /// This group's id per dimension.
    pub fn group_id(&self) -> [usize; 3] {
        self.group_id
    }

    /// Linear group id.
    pub fn group_linear(&self) -> usize {
        self.nd.groups().linearize(self.group_id)
    }

    /// Work-items per group.
    pub fn group_size(&self) -> usize {
        self.nd.group_size()
    }

    /// The launch's ND-range.
    pub fn nd_range(&self) -> NdRange {
        self.nd
    }

    /// Allocate a zero-initialised local (shared) array of `len` elements,
    /// the equivalent of a `sycl::local_accessor` /
    /// `group_local_memory_for_overwrite` allocation. Panics if the
    /// device's local-memory capacity would be exceeded, which is how we
    /// surface the paper's FPGA local-memory sizing issues in tests.
    pub fn local_array<T: Copy + Default + 'static>(&self, len: usize) -> LocalArray<T> {
        self.arena.borrow_mut().alloc::<T>(len)
    }

    /// Allocate a per-work-item private array: one `T` slot per work-item
    /// in the group, used to carry "register" state across barrier phases.
    pub fn private_array<T: Copy + Default + 'static>(&self) -> PrivateArray<T> {
        PrivateArray::new(self.group_size())
    }

    /// Bytes of local memory allocated so far by this group.
    pub fn local_bytes(&self) -> usize {
        self.arena.borrow().bytes()
    }

    /// Run `f` once per work-item of this group (one *phase*).
    pub fn items(&self, mut f: impl FnMut(Item)) {
        let ls = self.nd.local;
        for lin in 0..ls.size() {
            let local = ls.delinearize(lin);
            let global = [
                self.group_id[0] * ls.dims[0] + local[0],
                self.group_id[1] * ls.dims[1] + local[1],
                self.group_id[2] * ls.dims[2] + local[2],
            ];
            let item = Item {
                global,
                local,
                group: self.group_id,
                local_linear: lin,
                global_linear: self.nd.global.linearize(global),
            };
            crate::sanitize::set_current_item(Some(lin));
            f(item);
        }
        crate::sanitize::set_current_item(None);
        self.items_executed.set(self.items_executed.get() + ls.size() as u64);
    }

    /// End the current phase. Since phases already run to completion this
    /// only records the barrier for profiling; the *scope* distinction is
    /// kept so migration passes and tests can verify the paper's
    /// barrier-narrowing optimisation was applied.
    pub fn barrier(&self, space: FenceSpace) {
        crate::sanitize::phase_bump();
        match space {
            FenceSpace::Local => self.barriers_local.set(self.barriers_local.get() + 1),
            FenceSpace::Global => self.barriers_global.set(self.barriers_global.get() + 1),
        }
    }

    pub(crate) fn stats(&self) -> (u64, u64, u64, usize) {
        (
            self.items_executed.get(),
            self.barriers_local.get(),
            self.barriers_global.get(),
            self.local_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_size_and_linearize_roundtrip() {
        let r = Range::d3(4, 3, 2);
        assert_eq!(r.size(), 24);
        for lin in 0..r.size() {
            assert_eq!(r.linearize(r.delinearize(lin)), lin);
        }
    }

    #[test]
    fn nd_range_group_partitioning() {
        let nd = NdRange::d2(64, 32, 16, 8);
        assert_eq!(nd.num_groups(), (64 / 16) * (32 / 8));
        assert_eq!(nd.group_size(), 128);
        assert!(nd.validate().is_ok());
    }

    #[test]
    fn indivisible_range_rejected() {
        let nd = NdRange::d1(100, 32);
        let e = nd.validate().unwrap_err();
        assert!(matches!(e, crate::error::Error::IndivisibleRange { dim: 0, .. }));
    }

    #[test]
    fn group_ctx_iterates_all_items_with_correct_ids() {
        let nd = NdRange::d2(8, 4, 4, 2);
        let ctx = GroupCtx::new([1, 0, 0], nd, 1 << 20, None);
        let mut seen = Vec::new();
        ctx.items(|it| seen.push((it.gid(0), it.gid(1), it.local_linear)));
        assert_eq!(seen.len(), 8);
        // Group (1,0) covers global x in [4,8), y in [0,2).
        assert!(seen.iter().all(|&(gx, gy, _)| (4..8).contains(&gx) && gy < 2));
        // Local linear ids are 0..8 in order.
        assert_eq!(seen.iter().map(|s| s.2).collect::<Vec<_>>(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn barriers_are_counted_by_scope() {
        let nd = NdRange::d1(4, 4);
        let ctx = GroupCtx::new([0, 0, 0], nd, 1 << 20, None);
        ctx.barrier(FenceSpace::Local);
        ctx.barrier(FenceSpace::Local);
        ctx.barrier(FenceSpace::Global);
        let (_, bl, bg, _) = ctx.stats();
        assert_eq!((bl, bg), (2, 1));
    }

    #[test]
    fn phase_ordering_preserves_barrier_semantics() {
        // Classic SIMT pattern: every item writes its slot in phase 1,
        // then every item reads its neighbour's slot in phase 2. Correct
        // iff the barrier separates the phases.
        let nd = NdRange::d1(8, 8);
        let ctx = GroupCtx::new([0, 0, 0], nd, 1 << 20, None);
        let shared = ctx.local_array::<u32>(8);
        let out = ctx.private_array::<u32>();
        ctx.items(|it| shared.set(it.local_linear, it.local_linear as u32 * 10));
        ctx.barrier(FenceSpace::Local);
        ctx.items(|it| {
            let n = (it.local_linear + 1) % 8;
            out.set(it.local_linear, shared.get(n));
        });
        for i in 0..8 {
            assert_eq!(out.get(i), (((i + 1) % 8) as u32) * 10);
        }
    }
}
