//! Inter-kernel pipes.
//!
//! On Intel FPGAs, pipes are on-chip FIFOs that let concurrently running
//! kernels stream data to each other without touching global memory — the
//! mechanism behind the paper's 510× KMeans speedup (Figure 3) and the
//! CFD memory-access decoupling. We model a pipe as a bounded ring buffer
//! guarded by a `Mutex` + two `Condvar`s (no external channel crate, so
//! the runtime builds offline); producer and consumer kernels run as
//! concurrent host threads (see
//! [`crate::queue::Queue::submit_concurrent`]).
//!
//! Blocking operations carry a generous timeout so that a mis-designed
//! kernel graph (e.g. a consumer that reads more items than the producer
//! writes) is diagnosed as [`Error::PipeDeadlock`] instead of hanging the
//! test suite.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::error::{Error, Result};
use crate::fault::FaultPlan;

/// Default blocking-op timeout before a deadlock is diagnosed.
const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(30);

struct Inner<T> {
    fifo: Mutex<VecDeque<T>>,
    /// Signalled when an element is popped (writers wait on this).
    not_full: Condvar,
    /// Signalled when an element is pushed (readers wait on this).
    not_empty: Condvar,
    capacity: usize,
}

/// A bounded FIFO connecting two kernels, like `sycl::ext::intel::pipe`.
///
/// Cloning yields another handle to the same FIFO (a pipe endpoint is
/// usually captured by both the producer and the consumer closure).
pub struct Pipe<T> {
    inner: Arc<Inner<T>>,
    timeout: Duration,
    fault: Option<Arc<FaultPlan>>,
}

impl<T> Clone for Pipe<T> {
    fn clone(&self) -> Self {
        Pipe {
            inner: Arc::clone(&self.inner),
            timeout: self.timeout,
            fault: self.fault.clone(),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T: Send + 'static> Pipe<T> {
    /// Create a pipe with FIFO `capacity` (the `min_capacity` of the SYCL
    /// pipe declaration). Capacity 0 is rounded up to 1: a rendezvous
    /// pipe still needs one slot in this host model.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_timeout(capacity, DEADLOCK_TIMEOUT)
    }

    /// Like [`Pipe::with_capacity`] but with an explicit deadlock-
    /// detection timeout (tests use short timeouts to exercise the
    /// diagnosis quickly).
    pub fn with_capacity_and_timeout(capacity: usize, timeout: Duration) -> Self {
        let cap = capacity.max(1);
        Pipe {
            inner: Arc::new(Inner {
                fifo: Mutex::new(VecDeque::with_capacity(cap)),
                not_full: Condvar::new(),
                not_empty: Condvar::new(),
                capacity: cap,
            }),
            timeout,
            fault: None,
        }
    }

    /// Attach a fault plan: blocking operations on this endpoint may be
    /// deterministically stalled for a few milliseconds before touching
    /// the FIFO, modelling back-pressure hiccups in the FPGA fabric. The
    /// stall happens *before* the deadlock deadline is computed, so a
    /// stalled-but-live pipe graph is never misdiagnosed as deadlocked.
    pub fn with_fault_plan(mut self, plan: Option<Arc<FaultPlan>>) -> Self {
        self.fault = plan;
        self
    }

    fn stall_if_injected(&self) {
        if let Some(p) = &self.fault {
            let d = p.maybe_stall();
            if !d.is_zero() {
                std::thread::sleep(d);
            }
        }
    }

    /// FIFO capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Blocking write (like `pipe::write`). Diagnoses deadlock after a
    /// timeout.
    pub fn write(&self, v: T) -> Result<()> {
        self.stall_if_injected();
        let deadline = Instant::now() + self.timeout;
        let mut fifo = lock(&self.inner.fifo);
        while fifo.len() >= self.inner.capacity {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(Error::PipeDeadlock { waited_secs: self.timeout.as_secs() });
            };
            let (guard, wait) = self
                .inner
                .not_full
                .wait_timeout(fifo, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            fifo = guard;
            if wait.timed_out() && fifo.len() >= self.inner.capacity {
                return Err(Error::PipeDeadlock { waited_secs: self.timeout.as_secs() });
            }
        }
        fifo.push_back(v);
        drop(fifo);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Blocking read (like `pipe::read`). Diagnoses deadlock after a
    /// timeout.
    pub fn read(&self) -> Result<T> {
        self.stall_if_injected();
        let deadline = Instant::now() + self.timeout;
        let mut fifo = lock(&self.inner.fifo);
        loop {
            if let Some(v) = fifo.pop_front() {
                drop(fifo);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(Error::PipeDeadlock { waited_secs: self.timeout.as_secs() });
            };
            let (guard, wait) = self
                .inner
                .not_empty
                .wait_timeout(fifo, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            fifo = guard;
            if wait.timed_out() && fifo.is_empty() {
                return Err(Error::PipeDeadlock { waited_secs: self.timeout.as_secs() });
            }
        }
    }

    /// Non-blocking write (like the `success`-flag overload of
    /// `pipe::write`). Returns the value back if the FIFO is full.
    pub fn try_write(&self, v: T) -> std::result::Result<(), T> {
        let mut fifo = lock(&self.inner.fifo);
        if fifo.len() >= self.inner.capacity {
            return Err(v);
        }
        fifo.push_back(v);
        drop(fifo);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking read. Returns `None` if the FIFO is empty.
    pub fn try_read(&self) -> Option<T> {
        let v = lock(&self.inner.fifo).pop_front();
        if v.is_some() {
            self.inner.not_full.notify_one();
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let p = Pipe::with_capacity(8);
        for i in 0..8 {
            p.write(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(p.read().unwrap(), i);
        }
    }

    #[test]
    fn try_write_full_returns_value() {
        let p = Pipe::with_capacity(1);
        p.try_write(1u8).unwrap();
        assert_eq!(p.try_write(2u8), Err(2));
    }

    #[test]
    fn try_read_empty_returns_none() {
        let p = Pipe::<u8>::with_capacity(1);
        assert!(p.try_read().is_none());
    }

    #[test]
    fn producer_consumer_across_threads() {
        let p = Pipe::with_capacity(4);
        let q = p.clone();
        let n = 10_000u64;
        let t = std::thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..n {
                sum += q.read().unwrap();
            }
            sum
        });
        for i in 0..n {
            p.write(i).unwrap();
        }
        assert_eq!(t.join().unwrap(), n * (n - 1) / 2);
    }

    #[test]
    fn capacity_is_respected() {
        let p = Pipe::with_capacity(3);
        assert_eq!(p.capacity(), 3);
        assert!(p.try_write(1).is_ok());
        assert!(p.try_write(2).is_ok());
        assert!(p.try_write(3).is_ok());
        assert!(p.try_write(4).is_err());
    }

    #[test]
    fn deadlock_is_diagnosed_not_hung() {
        // A consumer that reads more than the producer writes: the read
        // must come back as a PipeDeadlock error, quickly.
        let p = Pipe::<u8>::with_capacity_and_timeout(2, Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        let e = p.read().unwrap_err();
        assert!(matches!(e, Error::PipeDeadlock { .. }));
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn overfull_pipe_is_diagnosed() {
        let p = Pipe::with_capacity_and_timeout(1, Duration::from_millis(50));
        p.write(1u8).unwrap();
        let e = p.write(2u8).unwrap_err();
        assert!(matches!(e, Error::PipeDeadlock { .. }));
    }

    #[test]
    fn zero_capacity_rounds_up() {
        let p = Pipe::<u8>::with_capacity(0);
        assert_eq!(p.capacity(), 1);
        p.write(9).unwrap();
        assert_eq!(p.read().unwrap(), 9);
    }

    #[test]
    fn stalled_pipe_still_delivers_in_order() {
        use crate::fault::{FaultKind, FaultPlan};
        let plan = Arc::new(FaultPlan::new(5, 1.0).with_kinds(&[FaultKind::PipeStall]));
        let p = Pipe::with_capacity(4).with_fault_plan(Some(plan.clone()));
        let t0 = Instant::now();
        for i in 0..4u8 {
            p.write(i).unwrap();
        }
        for i in 0..4u8 {
            assert_eq!(p.read().unwrap(), i);
        }
        // Every op at rate 1.0 stalls at least 1 ms.
        assert!(t0.elapsed() >= Duration::from_millis(8));
        assert!(plan.injected() >= 8);
    }

    #[test]
    fn blocked_writer_resumes_when_reader_drains() {
        let p = Pipe::with_capacity(1);
        p.write(1u32).unwrap();
        let q = p.clone();
        let t = std::thread::spawn(move || q.write(2u32));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(p.read().unwrap(), 1);
        t.join().unwrap().unwrap();
        assert_eq!(p.read().unwrap(), 2);
    }
}
