//! Inter-kernel pipes.
//!
//! On Intel FPGAs, pipes are on-chip FIFOs that let concurrently running
//! kernels stream data to each other without touching global memory — the
//! mechanism behind the paper's 510× KMeans speedup (Figure 3) and the
//! CFD memory-access decoupling. We model a pipe as a bounded ring buffer
//! guarded by a `Mutex` + two `Condvar`s (no external channel crate, so
//! the runtime builds offline); producer and consumer kernels run as
//! concurrent host threads (see
//! [`crate::queue::Queue::submit_concurrent`]).
//!
//! Long-lived streams need more than the original bounded FIFO:
//!
//! * **Disconnect detection.** Every handle is counted as a sender and/or
//!   a receiver. When the last sender drops, blocked readers wake with a
//!   typed [`Error::PipeClosed`] (after draining buffered items); when
//!   the last receiver drops, blocked writers wake with `PipeClosed`
//!   immediately. A stage crash therefore unwinds the whole pipeline with
//!   typed errors instead of parking its peers until the deadlock
//!   timeout. Split a pipe into role-typed ends with [`Pipe::split`] or
//!   [`Pipe::channel`].
//! * **Cancellation.** A [`CancelToken`] attached via
//!   [`Pipe::with_cancel_token`] is polled inside blocking operations, so
//!   a supervisor can yank a stream out of a blocked `read`/`write`
//!   without waiting for data to arrive ([`Error::Canceled`]).
//! * **Bounded-overwrite ingress.** [`Pipe::force_write`] never blocks:
//!   on a full FIFO it evicts and returns the *oldest* element. Stream
//!   runners use it to shed the oldest in-flight window under sustained
//!   backpressure instead of queuing without bound.
//!
//! Blocking operations still carry a generous timeout so that a
//! mis-designed kernel graph (e.g. a consumer that reads more items than
//! the producer writes while both ends stay alive) is diagnosed as
//! [`Error::PipeDeadlock`] instead of hanging the test suite.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::error::{Error, Result};
use crate::fault::FaultPlan;

/// Default blocking-op timeout before a deadlock is diagnosed.
const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// Wait-slice used when a cancel token is attached: blocked ops wake at
/// this cadence to poll the token even if no peer ever signals.
const CANCEL_POLL: Duration = Duration::from_millis(5);

struct Chan<T> {
    fifo: VecDeque<T>,
    /// Live handles that can push (plain `Pipe` clones + `PipeSender`s).
    senders: usize,
    /// Live handles that can pop (plain `Pipe` clones + `PipeReceiver`s).
    receivers: usize,
}

struct Inner<T> {
    chan: Mutex<Chan<T>>,
    /// Signalled when an element is popped or the last receiver drops
    /// (writers wait on this).
    not_full: Condvar,
    /// Signalled when an element is pushed or the last sender drops
    /// (readers wait on this).
    not_empty: Condvar,
    capacity: usize,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T> Inner<T> {
    fn write_blocking(
        &self,
        v: T,
        timeout: Duration,
        cancel: Option<&CancelToken>,
    ) -> Result<()> {
        let deadline = Instant::now() + timeout;
        let mut chan = lock(&self.chan);
        loop {
            if chan.receivers == 0 {
                return Err(Error::PipeClosed);
            }
            if chan.fifo.len() < self.capacity {
                chan.fifo.push_back(v);
                drop(chan);
                self.not_empty.notify_one();
                return Ok(());
            }
            if let Some(t) = cancel {
                t.check("pipe_write")?;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(Error::PipeDeadlock { waited_secs: timeout.as_secs() });
            };
            let slice = if cancel.is_some() { remaining.min(CANCEL_POLL) } else { remaining };
            chan = self
                .not_full
                .wait_timeout(chan, slice)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    fn read_blocking(&self, timeout: Duration, cancel: Option<&CancelToken>) -> Result<T> {
        let deadline = Instant::now() + timeout;
        let mut chan = lock(&self.chan);
        loop {
            if let Some(v) = chan.fifo.pop_front() {
                drop(chan);
                self.not_full.notify_one();
                return Ok(v);
            }
            // Buffered items drain first; only an empty *and* producer-
            // less pipe is closed.
            if chan.senders == 0 {
                return Err(Error::PipeClosed);
            }
            if let Some(t) = cancel {
                t.check("pipe_read")?;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(Error::PipeDeadlock { waited_secs: timeout.as_secs() });
            };
            let slice = if cancel.is_some() { remaining.min(CANCEL_POLL) } else { remaining };
            chan = self
                .not_empty
                .wait_timeout(chan, slice)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    fn try_write(&self, v: T) -> std::result::Result<(), T> {
        let mut chan = lock(&self.chan);
        if chan.receivers == 0 || chan.fifo.len() >= self.capacity {
            return Err(v);
        }
        chan.fifo.push_back(v);
        drop(chan);
        self.not_empty.notify_one();
        Ok(())
    }

    fn try_read(&self) -> Option<T> {
        let v = lock(&self.chan).fifo.pop_front();
        if v.is_some() {
            self.not_full.notify_one();
        }
        v
    }

    fn force_write(&self, v: T) -> Result<Option<T>> {
        let mut chan = lock(&self.chan);
        if chan.receivers == 0 {
            return Err(Error::PipeClosed);
        }
        let evicted = if chan.fifo.len() >= self.capacity {
            chan.fifo.pop_front()
        } else {
            None
        };
        chan.fifo.push_back(v);
        drop(chan);
        self.not_empty.notify_one();
        Ok(evicted)
    }

    fn add_handle(&self, senders: usize, receivers: usize) {
        let mut chan = lock(&self.chan);
        chan.senders += senders;
        chan.receivers += receivers;
    }

    fn drop_handle(&self, senders: usize, receivers: usize) {
        let mut chan = lock(&self.chan);
        chan.senders -= senders;
        chan.receivers -= receivers;
        let wake_readers = senders > 0 && chan.senders == 0;
        let wake_writers = receivers > 0 && chan.receivers == 0;
        drop(chan);
        // The last peer of a role is gone: wake everyone parked on the
        // opposite side so they observe PipeClosed instead of timing out.
        if wake_readers {
            self.not_empty.notify_all();
        }
        if wake_writers {
            self.not_full.notify_all();
        }
    }
}

/// A bounded FIFO connecting two kernels, like `sycl::ext::intel::pipe`.
///
/// Cloning yields another handle to the same FIFO (a pipe endpoint is
/// usually captured by both the producer and the consumer closure); a
/// plain `Pipe` handle counts as both a sender and a receiver. For
/// long-lived pipelines, [`Pipe::split`] (or [`Pipe::channel`]) yields
/// role-typed [`PipeSender`] / [`PipeReceiver`] ends whose drop closes
/// the pipe for their role.
pub struct Pipe<T> {
    inner: Arc<Inner<T>>,
    timeout: Duration,
    fault: Option<Arc<FaultPlan>>,
    cancel: Option<CancelToken>,
}

impl<T> Clone for Pipe<T> {
    fn clone(&self) -> Self {
        self.inner.add_handle(1, 1);
        Pipe {
            inner: Arc::clone(&self.inner),
            timeout: self.timeout,
            fault: self.fault.clone(),
            cancel: self.cancel.clone(),
        }
    }
}

impl<T> Drop for Pipe<T> {
    fn drop(&mut self) {
        self.inner.drop_handle(1, 1);
    }
}

fn stall_if_injected(fault: &Option<Arc<FaultPlan>>) {
    if let Some(p) = fault {
        let d = p.maybe_stall();
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

impl<T: Send + 'static> Pipe<T> {
    /// Create a pipe with FIFO `capacity` (the `min_capacity` of the SYCL
    /// pipe declaration). Capacity 0 is rounded up to 1: a rendezvous
    /// pipe still needs one slot in this host model.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_timeout(capacity, DEADLOCK_TIMEOUT)
    }

    /// Like [`Pipe::with_capacity`] but with an explicit deadlock-
    /// detection timeout (tests use short timeouts to exercise the
    /// diagnosis quickly).
    pub fn with_capacity_and_timeout(capacity: usize, timeout: Duration) -> Self {
        let cap = capacity.max(1);
        Pipe {
            inner: Arc::new(Inner {
                chan: Mutex::new(Chan {
                    fifo: VecDeque::with_capacity(cap),
                    senders: 1,
                    receivers: 1,
                }),
                not_full: Condvar::new(),
                not_empty: Condvar::new(),
                capacity: cap,
            }),
            timeout,
            fault: None,
            cancel: None,
        }
    }

    /// Create a pipe and immediately split it into role-typed ends —
    /// the shape stream pipelines use (`let (tx, rx) = Pipe::channel(8)`).
    pub fn channel(capacity: usize) -> (PipeSender<T>, PipeReceiver<T>) {
        Pipe::with_capacity(capacity).split()
    }

    /// Attach a fault plan: blocking operations on this endpoint may be
    /// deterministically stalled for a few milliseconds before touching
    /// the FIFO, modelling back-pressure hiccups in the FPGA fabric. The
    /// stall happens *before* the deadlock deadline is computed, so a
    /// stalled-but-live pipe graph is never misdiagnosed as deadlocked.
    pub fn with_fault_plan(mut self, plan: Option<Arc<FaultPlan>>) -> Self {
        self.fault = plan;
        self
    }

    /// Attach a cancellation token: blocking `read`/`write` on this
    /// endpoint (and on ends split from it) poll the token and return
    /// [`Error::Canceled`] when it fires, instead of waiting out the
    /// deadlock timeout.
    pub fn with_cancel_token(mut self, token: Option<CancelToken>) -> Self {
        self.cancel = token;
        self
    }

    /// Consume this handle into a role-typed `(sender, receiver)` pair
    /// sharing the same FIFO. Dropping the last sender closes the pipe
    /// for readers ([`Error::PipeClosed`] once drained); dropping the
    /// last receiver closes it for writers.
    pub fn split(self) -> (PipeSender<T>, PipeReceiver<T>) {
        // Mint one extra handle of each role, then let `self` drop its
        // own sender+receiver count: net ownership transfers to the pair.
        self.inner.add_handle(1, 1);
        let tx = PipeSender {
            inner: Arc::clone(&self.inner),
            timeout: self.timeout,
            fault: self.fault.clone(),
            cancel: self.cancel.clone(),
        };
        let rx = PipeReceiver {
            inner: Arc::clone(&self.inner),
            timeout: self.timeout,
            fault: self.fault.clone(),
            cancel: self.cancel.clone(),
        };
        (tx, rx)
    }

    /// FIFO capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Blocking write (like `pipe::write`). Returns
    /// [`Error::PipeClosed`] if every receiver is gone, propagates an
    /// attached [`CancelToken`], and diagnoses deadlock after a timeout.
    pub fn write(&self, v: T) -> Result<()> {
        stall_if_injected(&self.fault);
        self.inner.write_blocking(v, self.timeout, self.cancel.as_ref())
    }

    /// Blocking read (like `pipe::read`). Returns [`Error::PipeClosed`]
    /// once the pipe is empty and every sender is gone, propagates an
    /// attached [`CancelToken`], and diagnoses deadlock after a timeout.
    pub fn read(&self) -> Result<T> {
        stall_if_injected(&self.fault);
        self.inner.read_blocking(self.timeout, self.cancel.as_ref())
    }

    /// Non-blocking write (like the `success`-flag overload of
    /// `pipe::write`). Returns the value back if the FIFO is full or
    /// every receiver is gone.
    pub fn try_write(&self, v: T) -> std::result::Result<(), T> {
        self.inner.try_write(v)
    }

    /// Non-blocking read. Returns `None` if the FIFO is empty.
    pub fn try_read(&self) -> Option<T> {
        self.inner.try_read()
    }

    /// Never-blocking overwrite ingress: push `v`, evicting and
    /// returning the *oldest* buffered element if the FIFO is full.
    /// Returns [`Error::PipeClosed`] if every receiver is gone. Stream
    /// runners use the evicted element to issue a typed `Shed` verdict
    /// for the oldest in-flight window instead of queuing unboundedly.
    pub fn force_write(&self, v: T) -> Result<Option<T>> {
        self.inner.force_write(v)
    }
}

/// The producing end of a split [`Pipe`]. Cloning adds a sender; when
/// the last sender drops, blocked readers wake with
/// [`Error::PipeClosed`] after draining buffered items.
pub struct PipeSender<T> {
    inner: Arc<Inner<T>>,
    timeout: Duration,
    fault: Option<Arc<FaultPlan>>,
    cancel: Option<CancelToken>,
}

impl<T> Clone for PipeSender<T> {
    fn clone(&self) -> Self {
        self.inner.add_handle(1, 0);
        PipeSender {
            inner: Arc::clone(&self.inner),
            timeout: self.timeout,
            fault: self.fault.clone(),
            cancel: self.cancel.clone(),
        }
    }
}

impl<T> Drop for PipeSender<T> {
    fn drop(&mut self) {
        self.inner.drop_handle(1, 0);
    }
}

impl<T: Send + 'static> PipeSender<T> {
    /// Blocking write; see [`Pipe::write`].
    pub fn write(&self, v: T) -> Result<()> {
        stall_if_injected(&self.fault);
        self.inner.write_blocking(v, self.timeout, self.cancel.as_ref())
    }

    /// Non-blocking write; see [`Pipe::try_write`].
    pub fn try_write(&self, v: T) -> std::result::Result<(), T> {
        self.inner.try_write(v)
    }

    /// Never-blocking overwrite ingress; see [`Pipe::force_write`].
    pub fn force_write(&self, v: T) -> Result<Option<T>> {
        self.inner.force_write(v)
    }

    /// FIFO capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

/// The consuming end of a split [`Pipe`]. Cloning adds a receiver; when
/// the last receiver drops, blocked writers wake with
/// [`Error::PipeClosed`].
pub struct PipeReceiver<T> {
    inner: Arc<Inner<T>>,
    timeout: Duration,
    fault: Option<Arc<FaultPlan>>,
    cancel: Option<CancelToken>,
}

impl<T> Clone for PipeReceiver<T> {
    fn clone(&self) -> Self {
        self.inner.add_handle(0, 1);
        PipeReceiver {
            inner: Arc::clone(&self.inner),
            timeout: self.timeout,
            fault: self.fault.clone(),
            cancel: self.cancel.clone(),
        }
    }
}

impl<T> Drop for PipeReceiver<T> {
    fn drop(&mut self) {
        self.inner.drop_handle(0, 1);
    }
}

impl<T: Send + 'static> PipeReceiver<T> {
    /// Blocking read; see [`Pipe::read`].
    pub fn read(&self) -> Result<T> {
        stall_if_injected(&self.fault);
        self.inner.read_blocking(self.timeout, self.cancel.as_ref())
    }

    /// Non-blocking read; see [`Pipe::try_read`].
    pub fn try_read(&self) -> Option<T> {
        self.inner.try_read()
    }

    /// FIFO capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let p = Pipe::with_capacity(8);
        for i in 0..8 {
            p.write(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(p.read().unwrap(), i);
        }
    }

    #[test]
    fn try_write_full_returns_value() {
        let p = Pipe::with_capacity(1);
        p.try_write(1u8).unwrap();
        assert_eq!(p.try_write(2u8), Err(2));
    }

    #[test]
    fn try_read_empty_returns_none() {
        let p = Pipe::<u8>::with_capacity(1);
        assert!(p.try_read().is_none());
    }

    #[test]
    fn producer_consumer_across_threads() {
        let p = Pipe::with_capacity(4);
        let q = p.clone();
        let n = 10_000u64;
        let t = std::thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..n {
                sum += q.read().unwrap();
            }
            sum
        });
        for i in 0..n {
            p.write(i).unwrap();
        }
        assert_eq!(t.join().unwrap(), n * (n - 1) / 2);
    }

    #[test]
    fn capacity_is_respected() {
        let p = Pipe::with_capacity(3);
        assert_eq!(p.capacity(), 3);
        assert!(p.try_write(1).is_ok());
        assert!(p.try_write(2).is_ok());
        assert!(p.try_write(3).is_ok());
        assert!(p.try_write(4).is_err());
    }

    #[test]
    fn deadlock_is_diagnosed_not_hung() {
        // A consumer that reads more than the producer writes while both
        // ends stay alive: the read must come back as a PipeDeadlock
        // error, quickly. (A plain Pipe handle is itself a live sender,
        // so this is a deadlock, not a closed pipe.)
        let p = Pipe::<u8>::with_capacity_and_timeout(2, Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        let e = p.read().unwrap_err();
        assert!(matches!(e, Error::PipeDeadlock { .. }));
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn overfull_pipe_is_diagnosed() {
        let p = Pipe::with_capacity_and_timeout(1, Duration::from_millis(50));
        p.write(1u8).unwrap();
        let e = p.write(2u8).unwrap_err();
        assert!(matches!(e, Error::PipeDeadlock { .. }));
    }

    #[test]
    fn zero_capacity_rounds_up() {
        let p = Pipe::<u8>::with_capacity(0);
        assert_eq!(p.capacity(), 1);
        p.write(9).unwrap();
        assert_eq!(p.read().unwrap(), 9);
    }

    #[test]
    fn stalled_pipe_still_delivers_in_order() {
        use crate::fault::{FaultKind, FaultPlan};
        let plan = Arc::new(FaultPlan::new(5, 1.0).with_kinds(&[FaultKind::PipeStall]));
        let p = Pipe::with_capacity(4).with_fault_plan(Some(plan.clone()));
        let t0 = Instant::now();
        for i in 0..4u8 {
            p.write(i).unwrap();
        }
        for i in 0..4u8 {
            assert_eq!(p.read().unwrap(), i);
        }
        // Every op at rate 1.0 stalls at least 1 ms.
        assert!(t0.elapsed() >= Duration::from_millis(8));
        assert!(plan.injected() >= 8);
    }

    #[test]
    fn blocked_writer_resumes_when_reader_drains() {
        let p = Pipe::with_capacity(1);
        p.write(1u32).unwrap();
        let q = p.clone();
        let t = std::thread::spawn(move || q.write(2u32));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(p.read().unwrap(), 1);
        t.join().unwrap().unwrap();
        assert_eq!(p.read().unwrap(), 2);
    }

    #[test]
    fn sender_drop_wakes_blocked_reader_with_pipe_closed() {
        // Generous default timeout: the test passes quickly only if the
        // drop *wakes* the reader — a missed wakeup would park the reader
        // for the full 30 s deadlock window.
        let (tx, rx) = Pipe::<u8>::channel(4);
        let t = std::thread::spawn(move || rx.read());
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        drop(tx);
        let e = t.join().unwrap().unwrap_err();
        assert_eq!(e, Error::PipeClosed);
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn receiver_drop_wakes_blocked_writer_with_pipe_closed() {
        let (tx, rx) = Pipe::channel(1);
        tx.write(1u8).unwrap();
        let t = std::thread::spawn(move || tx.write(2u8));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        let e = t.join().unwrap().unwrap_err();
        assert_eq!(e, Error::PipeClosed);
    }

    #[test]
    fn closed_pipe_drains_buffered_items_before_erroring() {
        let (tx, rx) = Pipe::channel(4);
        tx.write(1u8).unwrap();
        tx.write(2u8).unwrap();
        drop(tx);
        assert_eq!(rx.read().unwrap(), 1);
        assert_eq!(rx.read().unwrap(), 2);
        let t0 = Instant::now();
        assert_eq!(rx.read().unwrap_err(), Error::PipeClosed);
        assert!(t0.elapsed() < Duration::from_millis(100), "closed check precedes any wait");
    }

    #[test]
    fn write_to_dropped_receiver_fails_fast() {
        let (tx, rx) = Pipe::channel(4);
        drop(rx);
        assert_eq!(tx.write(1u8).unwrap_err(), Error::PipeClosed);
        assert!(tx.try_write(2u8).is_err());
        assert_eq!(tx.force_write(3u8).unwrap_err(), Error::PipeClosed);
    }

    #[test]
    fn clone_keeps_role_open_until_last_handle_drops() {
        let (tx, rx) = Pipe::channel(4);
        let tx2 = tx.clone();
        drop(tx);
        tx2.write(7u8).unwrap();
        assert_eq!(rx.read().unwrap(), 7);
        drop(tx2);
        assert_eq!(rx.read().unwrap_err(), Error::PipeClosed);
    }

    #[test]
    fn cancel_unblocks_read() {
        let token = CancelToken::new();
        let p = Pipe::<u8>::with_capacity(1).with_cancel_token(Some(token.clone()));
        let t = std::thread::spawn(move || p.read());
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        token.cancel();
        let e = t.join().unwrap().unwrap_err();
        assert_eq!(e, Error::Canceled { kernel: "pipe_read" });
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn cancel_unblocks_write() {
        let token = CancelToken::new();
        let p = Pipe::with_capacity(1).with_cancel_token(Some(token.clone()));
        p.write(1u8).unwrap();
        let q = p.clone();
        let t = std::thread::spawn(move || q.write(2u8));
        std::thread::sleep(Duration::from_millis(20));
        token.cancel();
        let e = t.join().unwrap().unwrap_err();
        assert_eq!(e, Error::Canceled { kernel: "pipe_write" });
    }

    #[test]
    fn split_ends_survive_token_cancellation_for_nonblocking_ops() {
        let token = CancelToken::new();
        let (tx, rx) = Pipe::with_capacity(2).with_cancel_token(Some(token.clone())).split();
        tx.write(1u8).unwrap();
        token.cancel();
        // Non-blocking ops stay usable for draining after cancellation.
        assert_eq!(rx.try_read(), Some(1));
        assert!(tx.try_write(2).is_ok());
    }

    #[test]
    fn force_write_evicts_oldest() {
        let (tx, rx) = Pipe::channel(2);
        assert_eq!(tx.force_write(1u8).unwrap(), None);
        assert_eq!(tx.force_write(2u8).unwrap(), None);
        assert_eq!(tx.force_write(3u8).unwrap(), Some(1), "oldest element is shed");
        assert_eq!(rx.read().unwrap(), 2);
        assert_eq!(rx.read().unwrap(), 3);
    }
}
