//! Persistent work-stealing worker pool shared by every kernel launch in
//! the process.
//!
//! The original executor created a fresh `std::thread::scope` — and
//! therefore N fresh OS threads — on **every** kernel launch. Iterative
//! applications (FDTD2D timesteps, KMeans Lloyd iterations, CFD RK steps)
//! launch thousands of small kernels, so thread-creation cost dominated
//! exactly the way the paper's Figure 1 shows SYCL per-launch overhead
//! dominating CUDA's at small input sizes. This module replaces that with
//! one process-wide pool, lazily initialised on first use:
//!
//! * `available_parallelism() - 1` workers (overridable with the
//!   `HETERO_RT_THREADS` environment variable, read once), parked on a
//!   condvar while no job is pending;
//! * the submitting thread always participates in its own job, so a pool
//!   of size 1 degenerates to inline execution with zero handoff;
//! * each participant owns a contiguous *span* of the index range and
//!   claims from its front; a participant whose span drains steals the
//!   **back half** of a victim's span (see [`SpanSet`]). This replaces
//!   the original single shared claim counter, whose
//!   `max(1, remaining / (threads * 4))` chunk sizing degenerated to a
//!   storm of one-element claims on one hot atomic near the end of every
//!   job.
//!
//! # The span deque
//!
//! A [`SpanSet`] holds one span per participant, each packed as
//! `(lo, hi)` halves of a single `AtomicU64` so both ends move with one
//! CAS. The owner pops from the *front* (`lo`) in halving chunks —
//! newest-first locality, ascending order within the span — while
//! thieves take the *back half* (`hi` side), the oldest and
//! cache-coldest work, half a span at a time. This is the Chase–Lev
//! split: owner and thieves operate on opposite ends and only collide
//! when one element remains, where the CAS arbitrates. Halving claim
//! sizes mean a job of `n` indices costs `O(parts · log n)` claims total
//! and the smallest claim is half of whatever remains — the tiny-chunk
//! floor pathology cannot occur.
//!
//! Jobs are bounded to `u32::MAX` indices so the two ends fit one
//! atomic word; every caller (group counts, item counts, part counts) is
//! orders of magnitude below that.
//!
//! # Claim modes
//!
//! * [`ClaimMode::Stealing`] (default): front halves + back-half steals.
//! * [`ClaimMode::Static`]: whole-span claims, no redistribution — the
//!   static-chunking baseline `launch_storm --steal` compares against.
//! * [`ClaimMode::Ordered`]: one global span claimed front-to-back in
//!   adaptive chunks — **globally ascending claim order**, the contract
//!   the chained look-back scan spin-waits rely on
//!   ([`parallel_parts_ordered`]). Stealing would hand out a successor
//!   chunk while its predecessor is still unclaimed, and a single active
//!   thread spinning on that predecessor would never run it: ordered
//!   callers must never run under stealing.
//!
//! # Deadlock freedom for nested launches
//!
//! A kernel running on a pool worker may itself submit launches (Altis
//! exercises CUDA nested parallelism). That is safe here because the
//! submitter *always* helps execute its own job and can, if every other
//! thread is busy or blocked, complete the entire job alone — its own
//! span first, then everything it can steal. While a submitter waits, it
//! waits only for chunks that were already claimed by other threads —
//! and a claimed chunk is being actively executed, so the wait chain
//! always bottoms out at a thread making progress.
//!
//! # Safety
//!
//! The job queue stores a lifetime-erased pointer to the caller's task
//! closure. This is sound because [`run_job`] does not return until every
//! index of the job has been executed or retired (`done == total`), and
//! workers only dereference the pointer for chunks they successfully
//! claimed — claims are impossible once every span is empty, and all
//! claimed chunks complete before `done` reaches `total`.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Lock a mutex, recovering the guard if a previous holder panicked.
/// Pool state stays consistent across panics because every mutation is
/// completed before the guard drops.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How claims are handed out from a [`SpanSet`]; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimMode {
    /// Owner pops front halves of its own span; thieves steal back
    /// halves of victims' spans. The default.
    Stealing,
    /// Whole-span claims, lowest nonempty span first: classic static
    /// chunking (the `launch_storm --steal` baseline).
    Static,
    /// One global span, front-to-back adaptive chunks: globally
    /// ascending claim order for tasks with cross-chunk waits.
    Ordered,
}

/// Pack a span's bounds into one atomic word: `lo` in the high half,
/// `hi` in the low half. Empty when `lo >= hi`.
#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Per-participant work spans with two-ended atomic claiming — the
/// work-stealing deque structure shared by [`run_job`] and graph
/// replay's per-node group sweeps (crate-internal).
pub(crate) struct SpanSet {
    /// One packed `(lo, hi)` span per participant.
    spans: Box<[AtomicU64]>,
    /// Total indices the set was initialised with.
    total: usize,
    /// Thread basis for [`ClaimMode::Ordered`] chunk sizing.
    basis: usize,
    /// Indices not yet claimed (advisory; exactness lives in the spans).
    unclaimed: AtomicUsize,
    /// Successful claims since the last reset (owner + stolen).
    claims: AtomicUsize,
    /// Claims served from a victim's span rather than the claimant's own.
    steals: AtomicUsize,
}

impl SpanSet {
    /// A zero-length set (builder placeholder; re-initialised later).
    pub(crate) fn empty() -> SpanSet {
        SpanSet::new(0, 1)
    }

    /// Partition `0..total` into `parts` near-equal spans.
    pub(crate) fn new(total: usize, parts: usize) -> SpanSet {
        let parts = parts.max(1);
        let mut s = SpanSet {
            spans: (0..parts).map(|_| AtomicU64::new(0)).collect(),
            total,
            basis: parts,
            unclaimed: AtomicUsize::new(0),
            claims: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        };
        s.init(total, parts, parts);
        s
    }

    /// Re-initialise in place (job-scratch reuse path; exclusivity is
    /// guaranteed by the caller holding `&mut`). `basis` is the thread
    /// count [`ClaimMode::Ordered`] sizing divides by; equal to `parts`
    /// except in ordered mode, where `parts == 1`.
    pub(crate) fn init(&mut self, total: usize, parts: usize, basis: usize) {
        assert!(
            total <= u32::MAX as usize,
            "pool jobs are bounded to u32::MAX indices (got {total})"
        );
        let parts = parts.max(1);
        if self.spans.len() != parts {
            self.spans = (0..parts).map(|_| AtomicU64::new(0)).collect();
        }
        self.total = total;
        self.basis = basis.max(1);
        self.reset();
    }

    /// Restore the initial partition. Callers must ensure no claimer is
    /// concurrently active (between replays / before dispatch).
    pub(crate) fn reset(&self) {
        let parts = self.spans.len();
        for (p, s) in self.spans.iter().enumerate() {
            let lo = (p * self.total / parts) as u32;
            let hi = ((p + 1) * self.total / parts) as u32;
            s.store(pack(lo, hi), Ordering::Relaxed);
        }
        self.unclaimed.store(self.total, Ordering::Relaxed);
        self.claims.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
    }

    /// Whether any index is still claimable (advisory, monotone within
    /// one run: once false it stays false until the next reset).
    pub(crate) fn has_unclaimed(&self) -> bool {
        self.unclaimed.load(Ordering::Relaxed) > 0
    }

    pub(crate) fn claim_count(&self) -> usize {
        self.claims.load(Ordering::Relaxed)
    }

    pub(crate) fn steal_count(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }

    /// Take up to `size(n)` indices from the front of span `p`.
    fn take_front(&self, p: usize, size: impl Fn(usize) -> usize) -> Option<(usize, usize)> {
        let span = &self.spans[p];
        let mut cur = span.load(Ordering::Relaxed);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let n = (hi - lo) as usize;
            let take = size(n).clamp(1, n) as u32;
            match span.compare_exchange_weak(
                cur,
                pack(lo + take, hi),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.unclaimed.fetch_sub(take as usize, Ordering::Relaxed);
                    self.claims.fetch_add(1, Ordering::Relaxed);
                    return Some((lo as usize, (lo + take) as usize));
                }
                Err(v) => cur = v,
            }
        }
    }

    /// Steal up to half the indices from the *back* of span `p`.
    fn take_back(&self, p: usize) -> Option<(usize, usize)> {
        let span = &self.spans[p];
        let mut cur = span.load(Ordering::Relaxed);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let take = (hi - lo).div_ceil(2);
            match span.compare_exchange_weak(
                cur,
                pack(lo, hi - take),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.unclaimed.fetch_sub(take as usize, Ordering::Relaxed);
                    self.claims.fetch_add(1, Ordering::Relaxed);
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(((hi - take) as usize, hi as usize));
                }
                Err(v) => cur = v,
            }
        }
    }

    /// Claim the next chunk for participant `home` under `mode`, or
    /// `None` when every span is empty.
    pub(crate) fn claim(&self, home: usize, mode: ClaimMode) -> Option<(usize, usize)> {
        let k = self.spans.len();
        match mode {
            ClaimMode::Stealing => {
                // Own span first: front halves, ascending, cache-warm.
                let own = home % k;
                if let Some(r) = self.take_front(own, |n| n.div_ceil(2)) {
                    return Some(r);
                }
                // Steal a back half from the nearest nonempty victim.
                for d in 1..k {
                    if let Some(r) = self.take_back((own + d) % k) {
                        return Some(r);
                    }
                }
                None
            }
            ClaimMode::Static => {
                // Whole spans: own first, then lowest-index orphans (the
                // ascending takeover order keeps chained consumers live).
                if let Some(r) = self.take_front(home % k, |n| n) {
                    return Some(r);
                }
                (0..k).find_map(|p| self.take_front(p, |n| n))
            }
            ClaimMode::Ordered => {
                // Single global span, ascending adaptive chunks — the
                // original shared-counter behaviour, preserved for
                // callers whose tasks wait on lower-indexed chunks.
                let basis = self.basis.max(1);
                self.take_front(0, |n| (n / (basis * 4)).max(1))
            }
        }
    }

    /// Empty every span, returning how many indices were drained.
    /// Used by job cancellation so `done` still reaches `total`.
    pub(crate) fn drain(&self) -> usize {
        let mut drained = 0usize;
        for s in &self.spans {
            let (lo, hi) = unpack(s.swap(pack(0, 0), Ordering::Relaxed));
            if lo < hi {
                drained += (hi - lo) as usize;
            }
        }
        if drained > 0 {
            self.unclaimed.fetch_sub(drained, Ordering::Relaxed);
        }
        drained
    }
}

/// Per-job claim telemetry from [`run_job_counted`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Successful chunk claims (including steals).
    pub claims: usize,
    /// Claims that took work from another participant's span.
    pub steals: usize,
}

/// One submitted launch: a range `0..total` of independent indices to be
/// executed by `task`, claimed from per-participant spans.
struct Job {
    /// Lifetime-erased task; see the module-level safety argument.
    task: *const (dyn Fn(usize, usize) + Sync),
    /// Per-participant work spans.
    spans: SpanSet,
    /// Indices fully executed or retired.
    done: AtomicUsize,
    /// Total indices in the job.
    total: usize,
    /// How claims are handed out.
    mode: ClaimMode,
    /// How many pool workers may help (the submitter is always extra).
    max_helpers: usize,
    /// Pool workers currently helping.
    helpers: AtomicUsize,
    /// Monotone participant-index allocator for joining helpers.
    joiners: AtomicUsize,
    /// Job-level cancellation: set when a chunk panics, so the remaining
    /// unclaimed spans are drained and the job completes immediately.
    canceled: AtomicBool,
    /// First panic payload caught while executing this job's chunks. The
    /// submitter re-raises it on its own thread after the job drains, so a
    /// panicking task never kills a pool worker (the worker survives and
    /// parks again) and never strands the submitter.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion flag + condvar the submitter blocks on.
    complete: Mutex<bool>,
    complete_cv: Condvar,
}

// SAFETY: the raw task pointer is only dereferenced while the submitting
// thread is blocked inside `run_job`, which keeps the referent alive; all
// other fields are Send + Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Whether an idle worker should pick this job up.
    fn wants_help(&self) -> bool {
        self.spans.has_unclaimed()
            && self.helpers.load(Ordering::Relaxed) < self.max_helpers
    }

    /// Execute chunks until none remain. The thread that retires the last
    /// index signals completion.
    ///
    /// Panic containment: each chunk runs under `catch_unwind`. On panic,
    /// the first payload is stored for the submitter, the job is canceled
    /// (no further claims), and **every span is drained** in one sweep so
    /// `done` still reaches `total` and the submitter wakes. Chunks
    /// already claimed by other threads retire themselves as usual.
    fn run_claimed(&self, home: usize) {
        loop {
            if self.canceled.load(Ordering::Acquire) {
                return;
            }
            let Some((start, end)) = self.spans.claim(home, self.mode) else {
                return;
            };
            // SAFETY: chunk successfully claimed, so the submitter is
            // still blocked in run_job and the closure is alive.
            let task = unsafe { &*self.task };
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| task(start, end)));
            let mut retired = end - start;
            let panicked = result.is_err();
            if let Err(payload) = result {
                lock(&self.panic_payload).get_or_insert(payload);
                self.canceled.store(true, Ordering::Release);
                // Drain every deque and retire the drained indices
                // ourselves; any chunk claimed before the drain is owned
                // by a thread that will retire it on its own.
                retired += self.spans.drain();
            }
            // AcqRel: publishes this chunk's writes to whoever observes
            // the final count, and orders the completion signal after
            // every chunk's effects.
            let prev = self.done.fetch_add(retired, Ordering::AcqRel);
            if prev + retired == self.total {
                *lock(&self.complete) = true;
                self.complete_cv.notify_all();
            }
            if panicked {
                return;
            }
        }
    }

    /// Join as a pool helper if the helper cap allows it.
    fn help(&self) {
        if self.helpers.fetch_add(1, Ordering::Relaxed) >= self.max_helpers {
            self.helpers.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        // Participant indices are handed out monotonically; a worker
        // joining after another left may share a (drained) home span,
        // which only means it goes straight to stealing.
        let home = self.joiners.fetch_add(1, Ordering::Relaxed) + 1;
        self.run_claimed(home);
        self.helpers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Process-wide pool state.
struct Shared {
    /// Pending jobs; workers scan it for one that wants help.
    jobs: Mutex<Vec<Arc<Job>>>,
    /// Wakes parked workers when a job is pushed.
    work_cv: Condvar,
    /// Cached thread count (`available_parallelism` or the
    /// `HETERO_RT_THREADS` override), decided once at pool init.
    threads: usize,
    /// OS threads ever spawned by the pool — must stay constant after
    /// init; tests assert this across thousands of launches.
    spawned: AtomicUsize,
    /// Jobs ever dispatched through the pool. Empty jobs (`total == 0`)
    /// return before touching the pool and are not counted.
    dispatched: AtomicUsize,
    /// `Job` allocations actually made (dispatches minus scratch-slot
    /// reuses); `launch_storm` reports the reuse ratio.
    allocated: AtomicUsize,
}

/// How long a worker parks before waking to run one integrity-scrubber
/// tick. Bounded work (one region's checksums) at a low duty cycle; when
/// the integrity layer is disarmed the wake-up is a single relaxed load.
const SCRUB_PARK: Duration = Duration::from_millis(200);

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut jobs = lock(&shared.jobs);
            loop {
                jobs.retain(|j| j.spans.has_unclaimed());
                if let Some(j) = jobs.iter().find(|j| j.wants_help()) {
                    break Arc::clone(j);
                }
                let (guard, timeout) = shared
                    .work_cv
                    .wait_timeout(jobs, SCRUB_PARK)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                jobs = guard;
                if timeout.timed_out() && jobs.is_empty() && crate::integrity::armed() {
                    // Idle-time SDC scrubbing: verify one region per tick
                    // while no work (and no launch) is in flight, without
                    // holding the job-queue lock.
                    drop(jobs);
                    crate::integrity::scrub_step();
                    jobs = lock(&shared.jobs);
                }
            }
        };
        job.help();
    }
}

static POOL: OnceLock<Arc<Shared>> = OnceLock::new();

fn resolve_thread_count() -> usize {
    if let Ok(v) = std::env::var("HETERO_RT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

fn global() -> &'static Arc<Shared> {
    POOL.get_or_init(|| {
        let threads = resolve_thread_count();
        let shared = Arc::new(Shared {
            jobs: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            threads,
            spawned: AtomicUsize::new(0),
            dispatched: AtomicUsize::new(0),
            allocated: AtomicUsize::new(0),
        });
        for i in 0..threads.saturating_sub(1) {
            let s = Arc::clone(&shared);
            shared.spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("hetero-rt-{i}"))
                .spawn(move || worker_loop(s))
                .expect("failed to spawn hetero-rt pool worker");
        }
        shared
    })
}

/// The pool's thread count: `HETERO_RT_THREADS` if set, otherwise
/// `available_parallelism()`. Resolved once at pool initialisation and
/// cached — this is what `Parallelism::Auto` uses instead of re-querying
/// the OS on every launch.
pub fn auto_threads() -> usize {
    global().threads
}

/// Total OS threads the pool has ever spawned. Constant after first use;
/// the pool-reuse test asserts it does not grow across launches.
pub fn spawned_threads() -> usize {
    global().spawned.load(Ordering::Relaxed)
}

/// Number of non-empty jobs dispatched through the pool since process
/// start. A job with `total == 0` never reaches the pool (no workers
/// wake, no chunk is claimed) and is deliberately not counted — the
/// count answers "how many times did the pool run work", which is what
/// the launch-overhead benchmarks divide by.
pub fn jobs_dispatched() -> usize {
    global().dispatched.load(Ordering::Relaxed)
}

/// Number of `Job` structures actually allocated, as opposed to reused
/// from the submitter's scratch slot. `jobs_dispatched() -
/// jobs_allocated()` dispatches paid zero allocations.
pub fn jobs_allocated() -> usize {
    global().allocated.load(Ordering::Relaxed)
}

thread_local! {
    /// Per-submitter scratch: the previous job's allocation, reused for
    /// the next submit when no worker still holds a reference to it.
    /// Thread-local (rather than pool-global) so acquiring it is
    /// lock-free and two threads never contend for one slot.
    static JOB_SCRATCH: std::cell::RefCell<Option<Arc<Job>>> =
        const { std::cell::RefCell::new(None) };
}

/// Reuse the scratch `Job` allocation if it is exclusively ours, else
/// allocate. Exclusivity (`Arc::get_mut`) is the safety linchpin: a
/// worker that still holds a clone from the *previous* job may be inside
/// `claim`, and resetting the spans or swapping the task pointer under
/// it would hand it stale work. Workers obtain clones only from the
/// shared job list, which the previous `run_job_catch` already removed
/// the job from, so once the count drops to one it stays one.
fn acquire_job(
    pool: &Shared,
    task: *const (dyn Fn(usize, usize) + Sync),
    total: usize,
    parts: usize,
    basis: usize,
    mode: ClaimMode,
    max_helpers: usize,
) -> Arc<Job> {
    JOB_SCRATCH.with(|s| {
        let mut slot = s.borrow_mut();
        if let Some(mut job) = slot.take() {
            if let Some(j) = Arc::get_mut(&mut job) {
                j.task = task;
                j.total = total;
                j.mode = mode;
                j.max_helpers = max_helpers;
                j.spans.init(total, parts, basis);
                j.done.store(0, Ordering::Relaxed);
                j.helpers.store(0, Ordering::Relaxed);
                j.joiners.store(0, Ordering::Relaxed);
                j.canceled.store(false, Ordering::Relaxed);
                *j.panic_payload
                    .get_mut()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
                *j.complete.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    false;
                return job;
            }
            // A worker still holds the previous job briefly; keep the
            // scratch for a later submit and allocate fresh this time.
            *slot = Some(job);
        }
        pool.allocated.fetch_add(1, Ordering::Relaxed);
        let mut spans = SpanSet::new(total, parts);
        spans.init(total, parts, basis);
        Arc::new(Job {
            task,
            spans,
            done: AtomicUsize::new(0),
            total,
            mode,
            max_helpers,
            helpers: AtomicUsize::new(0),
            joiners: AtomicUsize::new(0),
            canceled: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            complete: Mutex::new(false),
            complete_cv: Condvar::new(),
        })
    })
}

/// Park a finished job's allocation in the submitter's scratch slot for
/// the next dispatch (first-come basis; an occupied slot drops `job`).
fn stash_job(job: Arc<Job>) {
    JOB_SCRATCH.with(|s| {
        let mut slot = s.borrow_mut();
        if slot.is_none() {
            *slot = Some(job);
        }
    });
}

/// Run `task` over the index range `0..total` on the persistent pool,
/// using at most `threads` threads (the submitting thread plus up to
/// `threads - 1` pool workers). `task(start, end)` is invoked with
/// disjoint, collectively exhaustive sub-ranges; chunk boundaries *and
/// their order* are nondeterministic under contention (thieves run
/// back halves), so tasks must not depend on them — tasks that wait on
/// lower-indexed chunks must use [`parallel_parts_ordered`].
///
/// Returns the dispatch duration: the time spent publishing the job to
/// the pool before the submitting thread started executing work itself.
/// This is the "pool handoff" component of launch overhead, recorded
/// separately from kernel time in profiling events.
pub fn run_job(total: usize, threads: usize, task: &(dyn Fn(usize, usize) + Sync)) -> Duration {
    let (dispatch, payload, _) = run_job_inner(total, threads, ClaimMode::Stealing, task);
    if let Some(p) = payload {
        // Re-raise on the submitting thread: callers keep ordinary panic
        // semantics while the pool workers stay alive and parked.
        std::panic::resume_unwind(p);
    }
    dispatch
}

/// [`run_job`] under [`ClaimMode::Static`]: whole-span claims with no
/// redistribution. Exists for the `launch_storm --steal` baseline — the
/// imbalance cost of static chunking measured on the identical pool.
pub fn run_job_static(
    total: usize,
    threads: usize,
    task: &(dyn Fn(usize, usize) + Sync),
) -> Duration {
    let (dispatch, payload, _) = run_job_inner(total, threads, ClaimMode::Static, task);
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
    dispatch
}

/// [`run_job`] returning per-job claim telemetry (claims and steals) —
/// what the chunk-sizing tests pin and `launch_storm --steal` reports.
pub fn run_job_counted(
    total: usize,
    threads: usize,
    task: &(dyn Fn(usize, usize) + Sync),
) -> (Duration, JobStats) {
    let (dispatch, payload, stats) = run_job_inner(total, threads, ClaimMode::Stealing, task);
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
    (dispatch, stats)
}

/// Like [`run_job`], but a panicking task is *contained*: instead of the
/// panic resuming on the submitter, the first caught payload is returned
/// alongside the dispatch duration. The executor uses this to convert
/// kernel panics into typed errors. In both flavours the pool's worker
/// threads survive the panic and the pool remains fully usable.
pub fn run_job_catch(
    total: usize,
    threads: usize,
    task: &(dyn Fn(usize, usize) + Sync),
) -> (Duration, Option<Box<dyn std::any::Any + Send>>) {
    let (dispatch, payload, _) = run_job_inner(total, threads, ClaimMode::Stealing, task);
    (dispatch, payload)
}

fn run_job_inner(
    total: usize,
    threads: usize,
    mode: ClaimMode,
    task: &(dyn Fn(usize, usize) + Sync),
) -> (Duration, Option<Box<dyn std::any::Any + Send>>, JobStats) {
    crate::fault::install_quiet_hook();
    let pool = global();
    if total == 0 {
        // An empty job never wakes a worker or claims a chunk, so it is
        // not a dispatch; counting it skewed per-launch accounting (the
        // `pool_jobs_dispatched: 30001` off-by-one in early
        // BENCH_launch_storm.json runs).
        return (Duration::ZERO, None, JobStats::default());
    }
    pool.dispatched.fetch_add(1, Ordering::Relaxed);
    let threads = threads.max(1).min(pool.threads.max(1));
    let max_helpers = threads.saturating_sub(1).min(total.saturating_sub(1));
    // Ordered mode keeps a single global span; sizing still divides by
    // the thread basis, so SpanSet records it via `parts` on a 1-span
    // set (see `SpanSet::claim`).
    let parts = match mode {
        ClaimMode::Ordered => 1,
        _ => max_helpers + 1,
    };
    // SAFETY: lifetime erasure only; run_job blocks until done == total,
    // so the referent outlives every dereference (module-level argument).
    let task = unsafe {
        std::mem::transmute::<
            &(dyn Fn(usize, usize) + Sync),
            *const (dyn Fn(usize, usize) + Sync),
        >(task)
    };
    let job = acquire_job(pool, task, total, parts, threads, mode, max_helpers);

    let handoff = Instant::now();
    if max_helpers > 0 {
        lock(&pool.jobs).push(Arc::clone(&job));
        if max_helpers == 1 {
            pool.work_cv.notify_one();
        } else {
            pool.work_cv.notify_all();
        }
    }
    let dispatch = handoff.elapsed();

    // The submitter always helps — this is what makes nested submission
    // from a pool worker deadlock-free.
    job.run_claimed(0);

    let mut finished = lock(&job.complete);
    while !*finished {
        finished = job
            .complete_cv
            .wait(finished)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    drop(finished);

    if max_helpers > 0 {
        lock(&pool.jobs).retain(|j| !Arc::ptr_eq(j, &job));
    }
    let payload = lock(&job.panic_payload).take();
    let stats = JobStats {
        claims: job.spans.claim_count(),
        steals: job.spans.steal_count(),
    };
    stash_job(job);
    (dispatch, payload, stats)
}

/// Raw-pointer wrapper so disjoint `&mut` parts can cross threads.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Sync` wrapper, not the bare `*mut T` field — 2021-edition
    /// closures capture individual fields otherwise.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Apply `f(index, &mut part)` to every element of `parts` on the pool,
/// with at most `threads` threads. Each element is visited exactly once,
/// so handing out disjoint `&mut` references is sound. This is the shape
/// `par-dpl` fan-outs need: per-thread partial slots or `chunks_mut`
/// pieces processed concurrently without spawning scoped threads.
pub fn parallel_parts<T, F>(parts: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    parallel_parts_mode(parts, threads, ClaimMode::Stealing, f);
}

/// [`parallel_parts`] with **globally ascending claim order**: by the
/// time any thread works on part `t`, part `t-1` has already been
/// claimed by a running thread. The chained look-back scan spin-waits on
/// its predecessor's published total and would deadlock under stealing
/// (a back-half thief can hold part `t` while `t-1` is unclaimed and no
/// free thread remains to claim it); this mode keeps the original
/// shared-counter hand-out for exactly such tasks.
pub fn parallel_parts_ordered<T, F>(parts: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    parallel_parts_mode(parts, threads, ClaimMode::Ordered, f);
}

fn parallel_parts_mode<T, F>(parts: &mut [T], threads: usize, mode: ClaimMode, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let base = SendPtr(parts.as_mut_ptr());
    let total = parts.len();
    let task = move |start: usize, end: usize| {
        for i in start..end {
            // SAFETY: the pool claims each index exactly once, so this
            // &mut is exclusive; `base` stays valid while run_job blocks.
            let part = unsafe { &mut *base.get().add(i) };
            f(i, part);
        }
    };
    let (_, payload, _) = run_job_inner(total, threads, mode, &task);
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        run_job(hits.len(), auto_threads(), &|s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn every_index_runs_exactly_once_static_mode() {
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        run_job_static(hits.len(), auto_threads(), &|s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_job_returns_immediately() {
        let d = run_job(0, 8, &|_, _| panic!("must not run"));
        assert_eq!(d, Duration::ZERO);
    }

    #[test]
    fn single_thread_runs_in_ascending_order() {
        let order = Mutex::new(Vec::new());
        run_job(100, 1, &|s, e| {
            for i in s..e {
                lock(&order).push(i);
            }
        });
        assert_eq!(*lock(&order), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_mode_claims_ascend_globally() {
        // The claim *starts* must ascend even under contention — the
        // contract the chained look-back scan builds on.
        let starts = Mutex::new(Vec::new());
        let mut parts = vec![0u8; 64];
        parallel_parts_ordered(&mut parts, auto_threads(), |i, _| {
            lock(&starts).push(i);
            // Parts are claimed ascending; the execution *interleaving*
            // may still overlap, which is fine for the scan (it waits on
            // published predecessors, not on execution order).
        });
        let s = lock(&starts);
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn chunk_ranges_partition_the_total() {
        let covered = AtomicU64::new(0);
        run_job(1_000, 4, &|s, e| {
            covered.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(covered.load(Ordering::Relaxed), 1_000);
    }

    #[test]
    fn halving_claims_bound_the_claim_count() {
        // The pre-steal pool claimed `max(1, remaining/(threads*4))`
        // chunks off one shared counter: the floor degenerated to
        // `threads*4` one-element claims at the end of every job — a
        // contended fetch_add storm. Halving front claims make the
        // smallest claim half of whatever remains, so a 10k-index job
        // costs O(parts · log total) claims and never storms.
        let t = auto_threads();
        let total = 10_000usize;
        let (_, stats) = run_job_counted(total, t, &|s, e| {
            std::hint::black_box(e - s);
        });
        let per_span = (total.div_ceil(t.max(1)) as f64).log2().ceil() as usize + 2;
        let bound = t * per_span + stats.steals * 2;
        assert!(
            stats.claims <= bound,
            "claim storm: {} claims ({} steals) for a {total}-index job on {t} threads \
             (bound {bound})",
            stats.claims,
            stats.steals,
        );
        // And the old pathology's floor: the final `threads*4` indices
        // alone used to cost `threads*4` claims; the whole job must now
        // cost fewer than that tail did.
        assert!(stats.claims < total / 16, "claims did not amortise: {}", stats.claims);
    }

    #[test]
    fn parallel_parts_gives_exclusive_access() {
        let mut parts = vec![0u64; 257];
        parallel_parts(&mut parts, auto_threads(), |i, p| {
            *p += i as u64 + 1;
        });
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(*p, i as u64 + 1);
        }
    }

    #[test]
    fn parallel_parts_ordered_visits_every_part_once() {
        let mut parts = vec![0u64; 57];
        parallel_parts_ordered(&mut parts, auto_threads(), |i, p| {
            *p += i as u64 + 1;
        });
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(*p, i as u64 + 1);
        }
    }

    #[test]
    fn panicking_task_is_contained_and_pool_survives() {
        // Warm the pool, then record its size.
        run_job(64, auto_threads(), &|_, _| {});
        let before = spawned_threads();

        for round in 0..5 {
            let (_, payload) = run_job_catch(10_000, auto_threads(), &|s, _| {
                if s % 2 == round % 2 {
                    panic!("chunk boom");
                }
            });
            assert!(payload.is_some(), "round {round}: panic payload lost");

            // The pool must be immediately reusable: a clean job still
            // executes every index exactly once on the same workers.
            let hits: Vec<AtomicUsize> = (0..4096).map(|_| AtomicUsize::new(0)).collect();
            run_job(hits.len(), auto_threads(), &|s, e| {
                for h in &hits[s..e] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
        assert_eq!(spawned_threads(), before, "panics must not cost worker threads");
    }

    #[test]
    fn run_job_resumes_panic_on_submitter() {
        let caught = std::panic::catch_unwind(|| {
            run_job(100, auto_threads(), &|_, _| panic!("to the submitter"));
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "to the submitter");
    }

    #[test]
    fn canceled_job_still_reaches_completion_quickly() {
        // A panic on the very first chunk must drain every span so the
        // submitter returns promptly instead of hanging.
        let t0 = Instant::now();
        let (_, payload) = run_job_catch(1_000_000, auto_threads(), &|_, _| {
            panic!("first chunk");
        });
        assert!(payload.is_some());
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn dispatch_duration_is_small_relative_to_work() {
        // Sanity: handoff is bounded (pushing one Arc + a notify), not
        // proportional to the job size.
        let d = run_job(100_000, auto_threads(), &|s, e| {
            let mut acc = 0u64;
            for i in s..e {
                acc = acc.wrapping_add(i as u64);
            }
            std::hint::black_box(acc);
        });
        assert!(d < Duration::from_millis(100));
    }

    #[test]
    fn spanset_two_ended_claims_are_disjoint_and_exhaustive() {
        let set = SpanSet::new(1_000, 4);
        let mut seen = vec![false; 1_000];
        // Interleave owner pops and steals until dry.
        let mut turn = 0usize;
        loop {
            let r = if turn.is_multiple_of(3) {
                set.claim(turn % 4, ClaimMode::Stealing)
            } else {
                set.claim((turn + 1) % 4, ClaimMode::Stealing)
            };
            let Some((s, e)) = r else { break };
            for (i, slot) in seen.iter_mut().enumerate().take(e).skip(s) {
                assert!(!*slot, "index {i} claimed twice");
                *slot = true;
            }
            turn += 1;
        }
        assert!(seen.iter().all(|&b| b), "unclaimed indices remain");
        assert!(!set.has_unclaimed());
    }

    #[test]
    fn spanset_drain_accounts_for_every_unclaimed_index() {
        let set = SpanSet::new(1_000, 4);
        let mut claimed = 0usize;
        for home in 0..4 {
            if let Some((s, e)) = set.claim(home, ClaimMode::Stealing) {
                claimed += e - s;
            }
        }
        let drained = set.drain();
        assert_eq!(claimed + drained, 1_000);
        assert_eq!(set.drain(), 0, "second drain must find nothing");
        assert!(!set.has_unclaimed());
    }
}
