//! Persistent worker pool shared by every kernel launch in the process.
//!
//! The original executor created a fresh `std::thread::scope` — and
//! therefore N fresh OS threads — on **every** kernel launch. Iterative
//! applications (FDTD2D timesteps, KMeans Lloyd iterations, CFD RK steps)
//! launch thousands of small kernels, so thread-creation cost dominated
//! exactly the way the paper's Figure 1 shows SYCL per-launch overhead
//! dominating CUDA's at small input sizes. This module replaces that with
//! one process-wide pool, lazily initialised on first use:
//!
//! * `available_parallelism() - 1` workers (overridable with the
//!   `HETERO_RT_THREADS` environment variable, read once), parked on a
//!   condvar while no job is pending;
//! * the submitting thread always participates in its own job, so a pool
//!   of size 1 degenerates to inline execution with zero handoff;
//! * work is claimed in adaptive chunks
//!   (`chunk = max(1, remaining / (threads * 4))`) rather than
//!   one-index-at-a-time, so launches with thousands of tiny work-groups
//!   do not serialise on a single hot atomic.
//!
//! # Deadlock freedom for nested launches
//!
//! A kernel running on a pool worker may itself submit launches (Altis
//! exercises CUDA nested parallelism). That is safe here because the
//! submitter *always* helps execute its own job and can, if every other
//! thread is busy or blocked, complete the entire job alone. While a
//! submitter waits, it waits only for chunks that were already claimed by
//! other threads — and a claimed chunk is being actively executed, so the
//! wait chain always bottoms out at a thread making progress.
//!
//! # Safety
//!
//! The job queue stores a lifetime-erased pointer to the caller's task
//! closure. This is sound because [`run_job`] does not return until every
//! index of the job has been executed (`done == total`), and workers only
//! dereference the pointer for chunks they successfully claimed — claims
//! are impossible once `next >= total`, and all claimed chunks complete
//! before `done` reaches `total`.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Lock a mutex, recovering the guard if a previous holder panicked.
/// Pool state stays consistent across panics because every mutation is
/// completed before the guard drops.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One submitted launch: a range `0..total` of independent indices to be
/// executed by `task`, claimed in adaptive chunks.
struct Job {
    /// Lifetime-erased task; see the module-level safety argument.
    task: *const (dyn Fn(usize, usize) + Sync),
    /// Next unclaimed index.
    next: AtomicUsize,
    /// Indices fully executed.
    done: AtomicUsize,
    /// Total indices in the job.
    total: usize,
    /// Denominator basis for adaptive chunk sizing.
    chunk_threads: usize,
    /// How many pool workers may help (the submitter is always extra).
    max_helpers: usize,
    /// Pool workers currently helping.
    helpers: AtomicUsize,
    /// Job-level cancellation: set when a chunk panics, so the remaining
    /// unclaimed indices are abandoned and the job drains immediately.
    canceled: AtomicBool,
    /// First panic payload caught while executing this job's chunks. The
    /// submitter re-raises it on its own thread after the job drains, so a
    /// panicking task never kills a pool worker (the worker survives and
    /// parks again) and never strands the submitter.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion flag + condvar the submitter blocks on.
    complete: Mutex<bool>,
    complete_cv: Condvar,
}

// SAFETY: the raw task pointer is only dereferenced while the submitting
// thread is blocked inside `run_job`, which keeps the referent alive; all
// other fields are Send + Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim the next adaptive chunk, or `None` when the job is drained
    /// or canceled.
    fn claim(&self) -> Option<(usize, usize)> {
        if self.canceled.load(Ordering::Acquire) {
            return None;
        }
        let seen = self.next.load(Ordering::Relaxed);
        if seen >= self.total {
            return None;
        }
        let remaining = self.total - seen;
        let chunk = (remaining / (self.chunk_threads * 4)).max(1);
        let start = self.next.fetch_add(chunk, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some((start, (start + chunk).min(self.total)))
    }

    /// Whether an idle worker should pick this job up.
    fn wants_help(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.total
            && self.helpers.load(Ordering::Relaxed) < self.max_helpers
    }

    /// Execute chunks until none remain. The thread that retires the last
    /// index signals completion.
    ///
    /// Panic containment: each chunk runs under `catch_unwind`. On panic,
    /// the first payload is stored for the submitter, the job is canceled
    /// (no further claims), and the unclaimed tail is retired in one step
    /// so `done` still reaches `total` and the submitter wakes. Chunks
    /// already claimed by other threads retire themselves as usual.
    fn run_claimed(&self) {
        while let Some((start, end)) = self.claim() {
            // SAFETY: chunk successfully claimed, so the submitter is
            // still blocked in run_job and the closure is alive.
            let task = unsafe { &*self.task };
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| task(start, end)));
            let mut retired = end - start;
            let panicked = result.is_err();
            if let Err(payload) = result {
                lock(&self.panic_payload).get_or_insert(payload);
                self.canceled.store(true, Ordering::Release);
                // Abandon the unclaimed tail and retire it ourselves; any
                // chunk claimed before this swap is owned by a thread that
                // will retire it on its own.
                let prev = self.next.swap(self.total, Ordering::AcqRel);
                retired += self.total.saturating_sub(prev);
            }
            // AcqRel: publishes this chunk's writes to whoever observes
            // the final count, and orders the completion signal after
            // every chunk's effects.
            let prev = self.done.fetch_add(retired, Ordering::AcqRel);
            if prev + retired == self.total {
                *lock(&self.complete) = true;
                self.complete_cv.notify_all();
            }
            if panicked {
                break;
            }
        }
    }

    /// Join as a pool helper if the helper cap allows it.
    fn help(&self) {
        if self.helpers.fetch_add(1, Ordering::Relaxed) >= self.max_helpers {
            self.helpers.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        self.run_claimed();
        self.helpers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Process-wide pool state.
struct Shared {
    /// Pending jobs; workers scan it for one that wants help.
    jobs: Mutex<Vec<Arc<Job>>>,
    /// Wakes parked workers when a job is pushed.
    work_cv: Condvar,
    /// Cached thread count (`available_parallelism` or the
    /// `HETERO_RT_THREADS` override), decided once at pool init.
    threads: usize,
    /// OS threads ever spawned by the pool — must stay constant after
    /// init; tests assert this across thousands of launches.
    spawned: AtomicUsize,
    /// Jobs ever dispatched through the pool. Empty jobs (`total == 0`)
    /// return before touching the pool and are not counted.
    dispatched: AtomicUsize,
    /// `Job` allocations actually made (dispatches minus scratch-slot
    /// reuses); `launch_storm` reports the reuse ratio.
    allocated: AtomicUsize,
}

/// How long a worker parks before waking to run one integrity-scrubber
/// tick. Bounded work (one region's checksums) at a low duty cycle; when
/// the integrity layer is disarmed the wake-up is a single relaxed load.
const SCRUB_PARK: Duration = Duration::from_millis(200);

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut jobs = lock(&shared.jobs);
            loop {
                jobs.retain(|j| j.next.load(Ordering::Relaxed) < j.total);
                if let Some(j) = jobs.iter().find(|j| j.wants_help()) {
                    break Arc::clone(j);
                }
                let (guard, timeout) = shared
                    .work_cv
                    .wait_timeout(jobs, SCRUB_PARK)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                jobs = guard;
                if timeout.timed_out() && jobs.is_empty() && crate::integrity::armed() {
                    // Idle-time SDC scrubbing: verify one region per tick
                    // while no work (and no launch) is in flight, without
                    // holding the job-queue lock.
                    drop(jobs);
                    crate::integrity::scrub_step();
                    jobs = lock(&shared.jobs);
                }
            }
        };
        job.help();
    }
}

static POOL: OnceLock<Arc<Shared>> = OnceLock::new();

fn resolve_thread_count() -> usize {
    if let Ok(v) = std::env::var("HETERO_RT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

fn global() -> &'static Arc<Shared> {
    POOL.get_or_init(|| {
        let threads = resolve_thread_count();
        let shared = Arc::new(Shared {
            jobs: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            threads,
            spawned: AtomicUsize::new(0),
            dispatched: AtomicUsize::new(0),
            allocated: AtomicUsize::new(0),
        });
        for i in 0..threads.saturating_sub(1) {
            let s = Arc::clone(&shared);
            shared.spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("hetero-rt-{i}"))
                .spawn(move || worker_loop(s))
                .expect("failed to spawn hetero-rt pool worker");
        }
        shared
    })
}

/// The pool's thread count: `HETERO_RT_THREADS` if set, otherwise
/// `available_parallelism()`. Resolved once at pool initialisation and
/// cached — this is what `Parallelism::Auto` uses instead of re-querying
/// the OS on every launch.
pub fn auto_threads() -> usize {
    global().threads
}

/// Total OS threads the pool has ever spawned. Constant after first use;
/// the pool-reuse test asserts it does not grow across launches.
pub fn spawned_threads() -> usize {
    global().spawned.load(Ordering::Relaxed)
}

/// Number of non-empty jobs dispatched through the pool since process
/// start. A job with `total == 0` never reaches the pool (no workers
/// wake, no chunk is claimed) and is deliberately not counted — the
/// count answers "how many times did the pool run work", which is what
/// the launch-overhead benchmarks divide by.
pub fn jobs_dispatched() -> usize {
    global().dispatched.load(Ordering::Relaxed)
}

/// Number of `Job` structures actually allocated, as opposed to reused
/// from the submitter's scratch slot. `jobs_dispatched() -
/// jobs_allocated()` dispatches paid zero allocations.
pub fn jobs_allocated() -> usize {
    global().allocated.load(Ordering::Relaxed)
}

thread_local! {
    /// Per-submitter scratch: the previous job's allocation, reused for
    /// the next submit when no worker still holds a reference to it.
    /// Thread-local (rather than pool-global) so acquiring it is
    /// lock-free and two threads never contend for one slot.
    static JOB_SCRATCH: std::cell::RefCell<Option<Arc<Job>>> =
        const { std::cell::RefCell::new(None) };
}

/// Reuse the scratch `Job` allocation if it is exclusively ours, else
/// allocate. Exclusivity (`Arc::get_mut`) is the safety linchpin: a
/// worker that still holds a clone from the *previous* job may be inside
/// `claim`, and resetting the counters or swapping the task pointer
/// under it would hand it stale work. Workers obtain clones only from
/// the shared job list, which the previous `run_job_catch` already
/// removed the job from, so once the count drops to one it stays one.
fn acquire_job(
    pool: &Shared,
    task: *const (dyn Fn(usize, usize) + Sync),
    total: usize,
    chunk_threads: usize,
    max_helpers: usize,
) -> Arc<Job> {
    JOB_SCRATCH.with(|s| {
        let mut slot = s.borrow_mut();
        if let Some(mut job) = slot.take() {
            if let Some(j) = Arc::get_mut(&mut job) {
                j.task = task;
                j.total = total;
                j.chunk_threads = chunk_threads;
                j.max_helpers = max_helpers;
                j.next.store(0, Ordering::Relaxed);
                j.done.store(0, Ordering::Relaxed);
                j.helpers.store(0, Ordering::Relaxed);
                j.canceled.store(false, Ordering::Relaxed);
                *j.panic_payload
                    .get_mut()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
                *j.complete.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    false;
                return job;
            }
            // A worker still holds the previous job briefly; keep the
            // scratch for a later submit and allocate fresh this time.
            *slot = Some(job);
        }
        pool.allocated.fetch_add(1, Ordering::Relaxed);
        Arc::new(Job {
            task,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            total,
            chunk_threads,
            max_helpers,
            helpers: AtomicUsize::new(0),
            canceled: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            complete: Mutex::new(false),
            complete_cv: Condvar::new(),
        })
    })
}

/// Park a finished job's allocation in the submitter's scratch slot for
/// the next dispatch (first-come basis; an occupied slot drops `job`).
fn stash_job(job: Arc<Job>) {
    JOB_SCRATCH.with(|s| {
        let mut slot = s.borrow_mut();
        if slot.is_none() {
            *slot = Some(job);
        }
    });
}

/// Run `task` over the index range `0..total` on the persistent pool,
/// using at most `threads` threads (the submitting thread plus up to
/// `threads - 1` pool workers). `task(start, end)` is invoked with
/// disjoint, collectively exhaustive sub-ranges; chunk boundaries are
/// nondeterministic under contention, so tasks must not depend on them.
///
/// Returns the dispatch duration: the time spent publishing the job to
/// the pool before the submitting thread started executing work itself.
/// This is the "pool handoff" component of launch overhead, recorded
/// separately from kernel time in profiling events.
pub fn run_job(total: usize, threads: usize, task: &(dyn Fn(usize, usize) + Sync)) -> Duration {
    let (dispatch, payload) = run_job_catch(total, threads, task);
    if let Some(p) = payload {
        // Re-raise on the submitting thread: callers keep ordinary panic
        // semantics while the pool workers stay alive and parked.
        std::panic::resume_unwind(p);
    }
    dispatch
}

/// Like [`run_job`], but a panicking task is *contained*: instead of the
/// panic resuming on the submitter, the first caught payload is returned
/// alongside the dispatch duration. The executor uses this to convert
/// kernel panics into typed errors. In both flavours the pool's worker
/// threads survive the panic and the pool remains fully usable.
pub fn run_job_catch(
    total: usize,
    threads: usize,
    task: &(dyn Fn(usize, usize) + Sync),
) -> (Duration, Option<Box<dyn std::any::Any + Send>>) {
    crate::fault::install_quiet_hook();
    let pool = global();
    if total == 0 {
        // An empty job never wakes a worker or claims a chunk, so it is
        // not a dispatch; counting it skewed per-launch accounting (the
        // `pool_jobs_dispatched: 30001` off-by-one in early
        // BENCH_launch_storm.json runs).
        return (Duration::ZERO, None);
    }
    pool.dispatched.fetch_add(1, Ordering::Relaxed);
    let threads = threads.max(1).min(pool.threads.max(1));
    let max_helpers = threads.saturating_sub(1).min(total.saturating_sub(1));
    // SAFETY: lifetime erasure only; run_job blocks until done == total,
    // so the referent outlives every dereference (module-level argument).
    let task = unsafe {
        std::mem::transmute::<
            &(dyn Fn(usize, usize) + Sync),
            *const (dyn Fn(usize, usize) + Sync),
        >(task)
    };
    let job = acquire_job(pool, task, total, threads, max_helpers);

    let handoff = Instant::now();
    if max_helpers > 0 {
        lock(&pool.jobs).push(Arc::clone(&job));
        if max_helpers == 1 {
            pool.work_cv.notify_one();
        } else {
            pool.work_cv.notify_all();
        }
    }
    let dispatch = handoff.elapsed();

    // The submitter always helps — this is what makes nested submission
    // from a pool worker deadlock-free.
    job.run_claimed();

    let mut finished = lock(&job.complete);
    while !*finished {
        finished = job
            .complete_cv
            .wait(finished)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    drop(finished);

    if max_helpers > 0 {
        lock(&pool.jobs).retain(|j| !Arc::ptr_eq(j, &job));
    }
    let payload = lock(&job.panic_payload).take();
    stash_job(job);
    (dispatch, payload)
}

/// Raw-pointer wrapper so disjoint `&mut` parts can cross threads.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Sync` wrapper, not the bare `*mut T` field — 2021-edition
    /// closures capture individual fields otherwise.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Apply `f(index, &mut part)` to every element of `parts` on the pool,
/// with at most `threads` threads. Each element is visited exactly once,
/// so handing out disjoint `&mut` references is sound. This is the shape
/// `par-dpl` fan-outs need: per-thread partial slots or `chunks_mut`
/// pieces processed concurrently without spawning scoped threads.
pub fn parallel_parts<T, F>(parts: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let base = SendPtr(parts.as_mut_ptr());
    let total = parts.len();
    let task = move |start: usize, end: usize| {
        for i in start..end {
            // SAFETY: the pool claims each index exactly once, so this
            // &mut is exclusive; `base` stays valid while run_job blocks.
            let part = unsafe { &mut *base.get().add(i) };
            f(i, part);
        }
    };
    run_job(total, threads, &task);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        run_job(hits.len(), auto_threads(), &|s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_job_returns_immediately() {
        let d = run_job(0, 8, &|_, _| panic!("must not run"));
        assert_eq!(d, Duration::ZERO);
    }

    #[test]
    fn single_thread_runs_in_ascending_order() {
        let order = Mutex::new(Vec::new());
        run_job(100, 1, &|s, e| {
            for i in s..e {
                lock(&order).push(i);
            }
        });
        assert_eq!(*lock(&order), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_ranges_partition_the_total() {
        let covered = AtomicU64::new(0);
        run_job(1_000, 4, &|s, e| {
            covered.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(covered.load(Ordering::Relaxed), 1_000);
    }

    #[test]
    fn parallel_parts_gives_exclusive_access() {
        let mut parts = vec![0u64; 257];
        parallel_parts(&mut parts, auto_threads(), |i, p| {
            *p += i as u64 + 1;
        });
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(*p, i as u64 + 1);
        }
    }

    #[test]
    fn panicking_task_is_contained_and_pool_survives() {
        // Warm the pool, then record its size.
        run_job(64, auto_threads(), &|_, _| {});
        let before = spawned_threads();

        for round in 0..5 {
            let (_, payload) = run_job_catch(10_000, auto_threads(), &|s, _| {
                if s % 2 == round % 2 {
                    panic!("chunk boom");
                }
            });
            assert!(payload.is_some(), "round {round}: panic payload lost");

            // The pool must be immediately reusable: a clean job still
            // executes every index exactly once on the same workers.
            let hits: Vec<AtomicUsize> = (0..4096).map(|_| AtomicUsize::new(0)).collect();
            run_job(hits.len(), auto_threads(), &|s, e| {
                for h in &hits[s..e] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
        assert_eq!(spawned_threads(), before, "panics must not cost worker threads");
    }

    #[test]
    fn run_job_resumes_panic_on_submitter() {
        let caught = std::panic::catch_unwind(|| {
            run_job(100, auto_threads(), &|_, _| panic!("to the submitter"));
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "to the submitter");
    }

    #[test]
    fn canceled_job_still_reaches_completion_quickly() {
        // A panic on the very first chunk must retire the whole range so
        // the submitter returns promptly instead of hanging.
        let t0 = Instant::now();
        let (_, payload) = run_job_catch(1_000_000, auto_threads(), &|_, _| {
            panic!("first chunk");
        });
        assert!(payload.is_some());
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn dispatch_duration_is_small_relative_to_work() {
        // Sanity: handoff is bounded (pushing one Arc + a notify), not
        // proportional to the job size.
        let d = run_job(100_000, auto_threads(), &|s, e| {
            let mut acc = 0u64;
            for i in s..e {
                acc = acc.wrapping_add(i as u64);
            }
            std::hint::black_box(acc);
        });
        assert!(d < Duration::from_millis(100));
    }
}
