//! Record-time binding-contract enforcement — the runtime bridge to the
//! static prover in [`hetero_ir::prove`].
//!
//! A recorded launch may attach a [`LaunchSpec`] describing the affine
//! index structure of every object it touches (one positional slot per
//! binding). At `Graph::record` time the bridge runs
//! [`hetero_ir::infer_contract`] over the spec and the recorded range,
//! cross-checks the declared bindings against the inferred contract
//! with [`hetero_ir::check_contract`], and fails the recording with a
//! typed [`Error::BindingContract`](crate::Error::BindingContract) on
//! any disagreement — before anything executes.
//!
//! # When enforcement runs
//!
//! Contract checks are always on in debug builds (so every test
//! recording is checked), and in release builds when either the
//! `HETERO_RT_PROVE=1` environment variable is set at first use or
//! [`force_enable`] has been called (the `prove` CI sweep uses the
//! latter). When enforcement is off, attaching a contract costs one
//! branch; the inference and check are skipped entirely *unless* the
//! launch requests an elision certificate, which always requires the
//! full proof.
//!
//! # Certificates
//!
//! Independently of enforcement, a launch recorded with
//! [`contract_gated`](crate::graph::GraphBuilder::contract_gated) earns
//! an elision certificate when its proof *closes*: every access proven
//! in-bounds and every declared binding consistent. Certificates arm
//! the launch's [`Gate`](crate::elide::Gate) during fast-path replays
//! only — see [`crate::elide`] for the degradation rules.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

pub use hetero_ir::prove::{
    at, bounded, check_contract, infer_contract, AffineVar, ContractReport, ContractViolation,
    Index, IndexExpr, LaunchSpec, SlotReport, SlotSpec,
};

/// Programmatic enforcement override ([`force_enable`]); lets the
/// release-built `prove` sweep binary turn checking on without relying
/// on process environment mutation.
static FORCE: AtomicBool = AtomicBool::new(false);

/// Contracts checked since process start (attached specs that ran the
/// inference + cross-check, for enforcement or a certificate).
static CHECKED: AtomicU64 = AtomicU64::new(0);

/// Total contract violations found since process start.
static VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// Elision certificates issued (proofs that closed) since process start.
static CERTIFIED: AtomicU64 = AtomicU64::new(0);

/// Turn contract enforcement on for the rest of the process, regardless
/// of build profile or environment.
pub fn force_enable() {
    FORCE.store(true, Ordering::SeqCst);
}

fn env_enabled() -> bool {
    static ONCE: OnceLock<bool> = OnceLock::new();
    *ONCE.get_or_init(|| {
        matches!(std::env::var("HETERO_RT_PROVE"), Ok(v) if !v.is_empty() && v != "0")
    })
}

/// Whether record-time contract checks are enforced: always in debug
/// builds, and under `HETERO_RT_PROVE=1` or [`force_enable`] otherwise.
pub fn enforcing() -> bool {
    cfg!(debug_assertions) || FORCE.load(Ordering::Relaxed) || env_enabled()
}

/// Number of launch contracts checked since process start.
pub fn contracts_checked() -> u64 {
    CHECKED.load(Ordering::Relaxed)
}

/// Number of contract violations found since process start.
pub fn violations_found() -> u64 {
    VIOLATIONS.load(Ordering::Relaxed)
}

/// Number of elision certificates issued since process start.
pub fn certificates_issued() -> u64 {
    CERTIFIED.load(Ordering::Relaxed)
}

pub(crate) fn note_checked() {
    CHECKED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_violations(n: u64) {
    VIOLATIONS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn note_certified() {
    CERTIFIED.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_builds_always_enforce() {
        // Tests run under debug assertions, so enforcement must be on
        // without any environment or force flag.
        assert!(enforcing());
    }

    #[test]
    fn counters_are_monotonic() {
        let before = contracts_checked();
        note_checked();
        assert!(contracts_checked() > before);
        let before = violations_found();
        note_violations(2);
        assert!(violations_found() >= before + 2);
        let before = certificates_issued();
        note_certified();
        assert!(certificates_issued() > before);
    }
}
