//! Command queues.
//!
//! [`Queue`] reproduces `sycl::queue`: kernels are submitted against a
//! device and return profiling [`Event`]s. Three submission styles exist,
//! matching the three kernel shapes in Altis-SYCL:
//!
//! * [`Queue::parallel_for`] — barrier-free ND kernels (one closure per
//!   work-item), the most common migrated shape;
//! * [`Queue::nd_range`] — work-group kernels with local memory and
//!   barrier phases;
//! * [`Queue::single_task`] — the FPGA-style single-threaded kernels the
//!   paper rewrites ND-Range kernels into (Section 5.3);
//! * [`Queue::submit_concurrent`] — launch several kernels that run
//!   simultaneously and communicate through [`crate::pipe::Pipe`]s, the
//!   structure of the optimized KMeans design (Figure 3).

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::buffer::{Buffer, BufferSlab, SlabStats};
use crate::cancel::CancelToken;
use crate::device::{Device, DeviceKind};
use crate::error::{Error, Result};
use crate::event::{Event, LaunchStats, ProfilingInfo, ResilienceInfo, ResilienceLedger};
use crate::executor::{run_groups_contained, Parallelism};
use crate::fault::FaultPlan;
use crate::ndrange::{GroupCtx, Item, NdRange, Range};
use crate::usm::{UsmAlloc, UsmKind};

/// Bounded-retry policy for transient launch failures (the fault layer's
/// [`crate::fault::FaultKind::LaunchTransient`]; on real stacks, a driver
/// hiccup). Transient faults are injected *before* any work-group runs,
/// so re-submission is always side-effect free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts allowed (≥ 1; 1 means no retry).
    pub max_attempts: u32,
    /// Base backoff slept between attempts; attempt `k` (1-based) sleeps
    /// `backoff * k` — deterministic linear backoff, no jitter, so chaos
    /// runs replay identically for a given seed.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// One attempt, no retries — the SYCL queue behaviour the
    /// applications were written against.
    fn default() -> Self {
        RetryPolicy { max_attempts: 1, backoff: Duration::ZERO }
    }
}

impl RetryPolicy {
    /// The policy chaos runs use: three attempts with a 1 ms base backoff.
    /// Adopted automatically when a fault plan comes from the environment
    /// (`HETERO_RT_FAULT_SEED`), so injected transients are absorbed.
    pub fn resilient() -> Self {
        RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(1) }
    }

    /// The sleep taken after failed attempt `attempt` (1-based):
    /// deterministic linear backoff `backoff * attempt`, no jitter, so a
    /// seeded chaos run replays the exact same delay sequence.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        self.backoff * attempt
    }
}

/// Redundant-execution policy for launches on an integrity queue
/// ([`Queue::with_integrity`]): the modular-redundancy answer to silent
/// data corruption that strikes *while* a kernel runs (or between the
/// kernel and the exit reseal), which no checksum boundary can see.
///
/// Replicas re-run the same launch from a byte-exact restore of the
/// pre-launch memory image, **sequentially** (so schedule-dependent
/// floating-point reductions reproduce bit-exactly), and vote on a
/// whole-memory digest. A divergent replica is outvoted and re-run
/// within the [`RetryPolicy`] budget; if the digests never reach a
/// 2-vote agreement the launch fails with
/// [`Error::ReplicaDivergence`] rather than returning unvalidated data.
///
/// Requires the integrity layer to be armed and the launch to be the
/// only one in flight; otherwise the launch silently degrades to a
/// single run (there is no memory image to restore between replicas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Redundancy {
    /// Single execution (default).
    #[default]
    None,
    /// Dual modular redundancy: two runs must agree.
    Dmr,
    /// Triple modular redundancy: three runs, majority (≥ 2) wins.
    Tmr,
}

impl Redundancy {
    /// Minimum replica runs before a 2-vote agreement can be accepted.
    fn need(self) -> u32 {
        match self {
            Redundancy::None => 1,
            Redundancy::Dmr => 2,
            Redundancy::Tmr => 3,
        }
    }
}

/// What to do when the primary device rejects a launch with a
/// *pre-side-effect* capability error (see
/// [`Error::is_cpu_fallback_eligible`]): capability mismatches such as
/// `UsmUnsupported`, `UnsupportedFeature`, `LocalMemExceeded` and
/// `WorkGroupTooLarge` are raised before any work-group writes global
/// memory, so a clean re-run elsewhere cannot observe partial results.
/// This is the paper's manual "if the FPGA can't, run it on the host"
/// porting workflow promoted into a runtime policy. `KernelPanicked` is
/// deliberately ineligible — groups may already have written.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Fallback {
    /// Surface the error to the caller (default).
    #[default]
    None,
    /// Re-run the launch on [`Device::cpu`] with fault injection
    /// disabled, recording the detour in the event's
    /// [`ResilienceInfo::fallback_device`].
    Cpu,
}

/// Count of launches currently executing on any clone of a queue, used by
/// the blocking [`Queue::wait`].
#[derive(Default)]
struct InFlight {
    count: Mutex<usize>,
    cv: Condvar,
}

/// RAII in-flight marker: decrements and notifies on drop, so a panicking
/// launch still releases waiters.
pub(crate) struct InFlightGuard<'a>(&'a InFlight);

impl<'a> InFlightGuard<'a> {
    fn enter(inflight: &'a InFlight) -> Self {
        *inflight.count.lock().unwrap() += 1;
        InFlightGuard(inflight)
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut c = self.0.count.lock().unwrap();
        *c -= 1;
        if *c == 0 {
            self.0.cv.notify_all();
        }
    }
}

/// An in-order command queue bound to a device.
#[derive(Clone)]
pub struct Queue {
    device: Device,
    profiling: bool,
    parallelism: Parallelism,
    retry: RetryPolicy,
    fallback: Fallback,
    fault: Option<Arc<FaultPlan>>,
    sanitize: bool,
    integrity: bool,
    redundancy: Redundancy,
    cancel: Option<CancelToken>,
    ledger: Option<Arc<ResilienceLedger>>,
    inflight: Arc<InFlight>,
    slab: Arc<BufferSlab>,
}

impl Queue {
    /// Create a queue on `device` with profiling disabled — the state
    /// DPCT's helper headers leave you in, which the paper calls out as
    /// preventing kernel-time measurement.
    ///
    /// If `HETERO_RT_FAULT_SEED` is set, the queue adopts the
    /// process-wide environment fault plan together with
    /// [`RetryPolicy::resilient`], so chaos runs exercise every
    /// application without code changes. With
    /// `HETERO_RT_FAULT_MODE=sdc` the plan injects silent bit flips
    /// instead of fail-stop faults, and the queue additionally arms the
    /// integrity layer and adopts [`Redundancy::Dmr`] — the full SDC
    /// defense, again with no application changes. If
    /// `HETERO_RT_SANITIZE=1` is set, every launch on the queue runs
    /// under the dynamic race detector ([`crate::sanitize`]); see
    /// [`Queue::with_sanitizer`] for the per-queue override.
    pub fn new(device: Device) -> Self {
        let fault = FaultPlan::env_plan();
        let retry = if fault.is_some() { RetryPolicy::resilient() } else { RetryPolicy::default() };
        let sdc = fault.as_deref().is_some_and(FaultPlan::is_sdc);
        if sdc {
            crate::integrity::arm();
        }
        Queue {
            device,
            profiling: false,
            parallelism: Parallelism::Auto,
            retry,
            fallback: Fallback::None,
            fault,
            sanitize: crate::sanitize::env_enabled(),
            integrity: sdc,
            redundancy: if sdc { Redundancy::Dmr } else { Redundancy::None },
            cancel: None,
            ledger: None,
            inflight: Arc::new(InFlight::default()),
            slab: Arc::new(BufferSlab::new()),
        }
    }

    /// Create a queue with profiling enabled (the
    /// `property::queue::enable_profiling` equivalent).
    pub fn with_profiling(device: Device) -> Self {
        Queue { profiling: true, ..Queue::new(device) }
    }

    /// Restrict the executor's host parallelism (useful for deterministic
    /// tests and for Single-Task-like sequential execution).
    pub fn with_parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Set the transient-failure retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set the capability-error fallback policy.
    pub fn with_fallback(mut self, fallback: Fallback) -> Self {
        self.fallback = fallback;
        self
    }

    /// Attach (or, with `None`, detach) a fault-injection plan. Overrides
    /// any environment plan picked up at construction.
    pub fn with_fault_plan(mut self, plan: Option<Arc<FaultPlan>>) -> Self {
        self.fault = plan;
        self
    }

    /// Enable or disable the dynamic race sanitizer for launches on this
    /// queue, overriding the `HETERO_RT_SANITIZE` environment default.
    /// Sanitized launches record every buffer / USM / local-array element
    /// access and fail with [`Error::DataRace`] when the kernel violates
    /// the SYCL memory model (see [`crate::sanitize`]).
    pub fn with_sanitizer(mut self, on: bool) -> Self {
        self.sanitize = on;
        self
    }

    /// Whether launches on this queue run under the race sanitizer.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitize
    }

    /// Enable or disable the integrity protocol for launches on this
    /// queue: regions are verified against their page checksums at
    /// launch entry (corruption surfaces as [`Error::DataCorruption`],
    /// absorbed by the retry budget since the offending seal is
    /// refreshed on detection) and resealed at launch exit. Enabling
    /// also arms the layer process-wide ([`crate::integrity::arm`]) so
    /// buffers allocated afterwards register checksummed regions.
    pub fn with_integrity(mut self, on: bool) -> Self {
        self.integrity = on;
        if on {
            crate::integrity::arm();
        }
        self
    }

    /// Whether launches on this queue run the integrity protocol.
    pub fn integrity_enabled(&self) -> bool {
        self.integrity
    }

    /// Set the redundant-execution policy (see [`Redundancy`]). Only
    /// effective together with [`Queue::with_integrity`]: replicas
    /// restore and digest the integrity layer's registered regions.
    pub fn with_redundancy(mut self, redundancy: Redundancy) -> Self {
        self.redundancy = redundancy;
        self
    }

    /// The queue's redundant-execution policy.
    pub fn redundancy(&self) -> Redundancy {
        self.redundancy
    }

    /// Attach (or, with `None`, detach) a cancellation token. Every
    /// launch on this queue (and clones made *after* this call) polls
    /// the token at group / chunk / retry-attempt boundaries — including
    /// backoff sleeps and graph-replay sweeps — and fails fast with
    /// [`Error::Canceled`] once it fires. The serving layer attaches one
    /// token per job so a deadline watchdog can contain overruns through
    /// the typed-error path.
    pub fn with_cancel_token(mut self, token: Option<CancelToken>) -> Self {
        self.cancel = token;
        self
    }

    /// The cancellation token launches on this queue poll, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Attach (or, with `None`, detach) an accumulating resilience
    /// ledger: every launch's [`ResilienceInfo`] — and every typed
    /// launch failure — is summed into it. The serving layer attaches
    /// one ledger per tenant, so retries, absorbed faults, replica votes
    /// and fallbacks are accounted to the tenant that caused them.
    pub fn with_resilience_ledger(mut self, ledger: Option<Arc<ResilienceLedger>>) -> Self {
        self.ledger = ledger;
        self
    }

    /// The resilience ledger launches on this queue account to, if any.
    pub fn resilience_ledger(&self) -> Option<&Arc<ResilienceLedger>> {
        self.ledger.as_ref()
    }

    /// The queue's device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Whether profiling was enabled at construction.
    pub fn profiling_enabled(&self) -> bool {
        self.profiling
    }

    /// The fault plan driving this queue's injection, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// The queue's capability-error fallback policy (graph replay checks
    /// it for fast-path eligibility).
    pub(crate) fn fallback_policy(&self) -> Fallback {
        self.fallback
    }

    /// Worker-thread budget the queue's parallelism mode resolves to.
    pub(crate) fn parallelism_threads(&self) -> usize {
        self.parallelism.thread_count()
    }

    /// Enter the queue's in-flight count (used by graph replay, which
    /// bypasses `launch_groups` but must still block [`Queue::wait`]).
    pub(crate) fn enter_inflight(&self) -> InFlightGuard<'_> {
        InFlightGuard::enter(&self.inflight)
    }

    fn finish_event(
        &self,
        name: &'static str,
        submitted: Instant,
        started: Instant,
        dispatch: Duration,
        stats: LaunchStats,
        resilience: ResilienceInfo,
    ) -> Event {
        let profiling = self.profiling.then(|| ProfilingInfo {
            submitted,
            started,
            ended: Instant::now(),
            dispatch,
        });
        Event::new(name, profiling, stats).with_resilience(resilience)
    }

    fn check_group_size(device: &Device, nd: &NdRange, reqd_max: Option<usize>) -> Result<()> {
        let limit = reqd_max
            .unwrap_or(usize::MAX)
            .min(device.caps().max_work_group_size);
        let size = nd.group_size();
        if size > limit {
            return Err(Error::WorkGroupTooLarge { requested: size, limit });
        }
        Ok(())
    }

    /// One contained execution of `kernel` over `nd` on `device`:
    /// group-size check against that device's caps, then phase-wise group
    /// execution with per-group panic containment.
    #[allow(clippy::too_many_arguments)]
    fn run_on<K>(
        &self,
        device: &Device,
        plan: Option<&FaultPlan>,
        name: &'static str,
        nd: NdRange,
        reqd_max: Option<usize>,
        par: Parallelism,
        kernel: &K,
    ) -> Result<(LaunchStats, Duration)>
    where
        K: Fn(&GroupCtx) + Sync,
    {
        Self::check_group_size(device, &nd, reqd_max)?;
        run_groups_contained(
            nd,
            par,
            device.caps().local_mem_bytes,
            name,
            plan,
            self.sanitize,
            self.cancel.as_ref(),
            kernel,
        )
    }

    /// Sleep one retry backoff. With a cancellation token attached the
    /// sleep runs in short slices so a fired deadline cuts the backoff
    /// short; the retry-loop head then surfaces [`Error::Canceled`].
    /// Either way the caller's in-flight guard stays held for the whole
    /// cycle, so [`Queue::wait`] blocks across backoffs.
    fn backoff_sleep(&self, attempt: u32) {
        let delay = self.retry.delay_for(attempt);
        match &self.cancel {
            None => std::thread::sleep(delay),
            Some(t) => {
                let slice = Duration::from_millis(1);
                let mut left = delay;
                while left > Duration::ZERO && !t.is_canceled() {
                    let d = left.min(slice);
                    std::thread::sleep(d);
                    left = left.saturating_sub(d);
                }
            }
        }
    }

    /// Redundant execution with digest voting: run the launch `need`
    /// times (restoring the pre-launch memory image between runs), each
    /// replica strictly sequential so schedule-dependent results
    /// reproduce bit-exactly, and accept once the latest whole-memory
    /// digest agrees with at least one earlier run. Divergent replicas
    /// (e.g. an exit-window bit flip) are outvoted by extra runs within
    /// the retry budget; exhaustion restores the pre-launch image and
    /// fails with [`Error::ReplicaDivergence`].
    ///
    /// Returns `(stats, dispatch, runs, corrected)` where `corrected`
    /// counts distinct minority digests that were outvoted.
    fn run_redundant<K>(
        &self,
        plan: Option<&FaultPlan>,
        name: &'static str,
        nd: NdRange,
        reqd_max: Option<usize>,
        kernel: &K,
    ) -> Result<(LaunchStats, Duration, u32, u32)>
    where
        K: Fn(&GroupCtx) + Sync,
    {
        let need = self.redundancy.need();
        let budget = need + (self.retry.max_attempts.max(1) - 1);
        let snap = crate::integrity::snapshot_all();
        let mut digests: Vec<u64> = Vec::new();
        loop {
            if !digests.is_empty() {
                crate::integrity::restore(&snap);
            }
            let out = match self.run_on(
                &self.device,
                plan,
                name,
                nd,
                reqd_max,
                Parallelism::Sequential,
                kernel,
            ) {
                Ok(out) => out,
                Err(e) => {
                    // A failed replica may have written partially; put the
                    // pre-launch image back before surfacing the error.
                    crate::integrity::restore(&snap);
                    return Err(e);
                }
            };
            // The exit-window flip lands between kernel and digest: the
            // one corruption case a boundary checksum can never catch,
            // and exactly what the vote is for.
            if let Some(p) = plan {
                crate::integrity::inject_exit(p);
            }
            let digest = crate::integrity::digest_all();
            digests.push(digest);
            let runs = digests.len() as u32;
            let agree = digests.iter().filter(|&&d| d == digest).count() as u32;
            if runs >= need && agree >= 2 {
                // Memory currently holds the run whose digest won.
                let mut distinct: Vec<u64> = Vec::new();
                for &d in &digests {
                    if !distinct.contains(&d) {
                        distinct.push(d);
                    }
                }
                let corrected = (distinct.len() - 1) as u32;
                if corrected > 0 {
                    crate::integrity::record_corrected(corrected as u64);
                }
                let (stats, dispatch) = out;
                return Ok((stats, dispatch, runs, corrected));
            }
            if runs >= budget {
                crate::integrity::restore(&snap);
                return Err(Error::ReplicaDivergence { kernel: name, runs });
            }
        }
    }

    /// The central hardened launch path shared by every group-shaped
    /// submission. In order:
    ///
    /// 1. integrity-protocol entry (when [`Queue::with_integrity`] is on
    ///    and this is the only launch in flight): seeded SDC injection,
    ///    then page-checksum verification of every region — corruption
    ///    surfaces as [`Error::DataCorruption`] and is absorbed by the
    ///    retry budget (detection reseals the offender, so the retry
    ///    proceeds on detected-and-accepted contents);
    /// 2. transient-fault injection with bounded deterministic retry
    ///    ([`RetryPolicy`]) — injected before any group runs, so a retry
    ///    never replays side effects;
    /// 3. contained execution on the primary device (kernel panics become
    ///    typed errors, the pool survives), redundantly with digest
    ///    voting under [`Redundancy::Dmr`]/[`Redundancy::Tmr`];
    /// 4. on a fallback-eligible capability error, one clean re-run on
    ///    the CPU device with injection disabled ([`Fallback::Cpu`]);
    /// 5. integrity-protocol exit (last launch out): reseal every region,
    ///    then land the plan's exit-window flip and stuck-at page on the
    ///    sealed image so the *next* entry verification must detect them.
    pub(crate) fn launch_groups<K>(
        &self,
        name: &'static str,
        nd: NdRange,
        reqd_max: Option<usize>,
        kernel: &K,
    ) -> Result<(LaunchStats, Duration, ResilienceInfo)>
    where
        K: Fn(&GroupCtx) + Sync,
    {
        let _guard = InFlightGuard::enter(&self.inflight);
        nd.validate()?; // a malformed range is a programming error: no retry, no fallback
        let scope = crate::integrity::LaunchScope::enter();
        // The protocol needs exclusive access to region bytes; nested or
        // concurrent launches skip it and the outermost exit reseals.
        let protocol = self.integrity && scope.exclusive();
        let plan = self.fault.as_deref();
        if protocol {
            if let Some(p) = plan {
                crate::integrity::inject_entry(p);
            }
        }
        let redundant = if protocol { self.redundancy } else { Redundancy::None };
        let max_attempts = self.retry.max_attempts.max(1);
        let mut attempts = 0u32;
        let mut absorbed = 0u32;
        let mut replicas = 1u32;
        let mut corrected = 0u32;
        let primary = loop {
            attempts += 1;
            // A fired cancellation token stops the retry cycle at the
            // next attempt boundary — including between a backoff sleep
            // and the re-submission it was backing off for — while the
            // in-flight guard above stays held, so `wait()` never
            // returns with a canceled attempt still unwinding.
            if let Some(t) = &self.cancel {
                if let Err(e) = t.check(name) {
                    break Err(e);
                }
            }
            if let Some(p) = plan {
                if p.should_fail_launch(name) {
                    if attempts < max_attempts {
                        absorbed += 1;
                        self.backoff_sleep(attempts);
                        continue;
                    }
                    break Err(Error::TransientLaunchFailure { kernel: name, attempts });
                }
            }
            if protocol {
                if let Err(e) = crate::integrity::verify_all() {
                    // Detection refreshed the offending seal, so a retry
                    // re-verifies clean and runs on contents the caller
                    // has been *told* diverged — detected, never silent.
                    if attempts < max_attempts {
                        absorbed += 1;
                        self.backoff_sleep(attempts);
                        continue;
                    }
                    break Err(e);
                }
            }
            break match redundant {
                Redundancy::None => self
                    .run_on(&self.device, plan, name, nd, reqd_max, self.parallelism, kernel),
                _ => self
                    .run_redundant(plan, name, nd, reqd_max, kernel)
                    .map(|(stats, dispatch, runs, fixed)| {
                        replicas = runs;
                        corrected = fixed;
                        (stats, dispatch)
                    }),
            };
        };
        let result = match primary {
            Ok((stats, dispatch)) => Ok((
                stats,
                dispatch,
                ResilienceInfo {
                    attempts,
                    faults_absorbed: absorbed,
                    fallback_device: None,
                    replicas,
                    divergences_corrected: corrected,
                },
            )),
            Err(e)
                if self.fallback == Fallback::Cpu
                    && e.is_cpu_fallback_eligible()
                    && self.device.kind() != DeviceKind::Cpu =>
            {
                let cpu = Device::cpu();
                let (stats, dispatch) =
                    self.run_on(&cpu, None, name, nd, reqd_max, self.parallelism, kernel)?;
                Ok((
                    stats,
                    dispatch,
                    ResilienceInfo {
                        attempts,
                        faults_absorbed: absorbed,
                        fallback_device: Some(cpu.name().to_string()),
                        replicas,
                        divergences_corrected: corrected,
                    },
                ))
            }
            Err(e) => Err(e),
        };
        if protocol && scope.sole_remaining() {
            // Reseal even on error so the next protocol launch does not
            // false-positive on this launch's partial writes.
            crate::integrity::reseal_all();
            if result.is_ok() {
                if let Some(p) = plan {
                    if redundant == Redundancy::None {
                        // Redundant runs already injected (and voted on)
                        // their exit flips pre-digest.
                        crate::integrity::inject_exit(p);
                    }
                    crate::integrity::apply_stuck(p);
                }
            }
        }
        if let Some(ledger) = &self.ledger {
            match &result {
                Ok((_, _, info)) => ledger.record(info),
                Err(e) => ledger.record_error(e),
            }
        }
        result
    }

    /// Launch a barrier-free data-parallel kernel: `f` runs once per
    /// global index of `range` (like `parallel_for(range, ...)`).
    ///
    /// Infallible wrapper over [`Queue::try_parallel_for`] for API
    /// fidelity with the SYCL sources: a launch error unwinds with the
    /// typed [`Error`] as panic payload (recoverable via `catch_unwind`,
    /// as the suite-level chaos harness does).
    pub fn parallel_for<F>(&self, name: &'static str, range: Range, f: F) -> Event
    where
        F: Fn(Item) + Sync,
    {
        self.try_parallel_for(name, range, f)
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible [`Queue::parallel_for`]: launch errors (injected
    /// transients past the retry budget, contained kernel panics, …) come
    /// back as typed `Err` values.
    pub fn try_parallel_for<F>(&self, name: &'static str, range: Range, f: F) -> Result<Event>
    where
        F: Fn(Item) + Sync,
    {
        let submitted = Instant::now();
        // Chunk the flat range into implicit groups for the executor. The
        // chunk is an implementation detail, not a user-requested group
        // size, so clamp it to the device's limit rather than rejecting.
        let total = range.size();
        let chunk = 256
            .min(self.device.caps().max_work_group_size)
            .min(total.max(1));
        let padded = total.div_ceil(chunk) * chunk;
        let nd = NdRange { global: Range::d1(padded), local: Range::d1(chunk) };
        let started = Instant::now();
        let (stats, dispatch, resilience) = self.launch_groups(
            name,
            nd,
            None,
            &|ctx: &GroupCtx| {
                ctx.items(|it| {
                    let lin = it.global_linear;
                    if lin < total {
                        let idx = range.delinearize(lin);
                        let item = Item {
                            global: idx,
                            local: it.local,
                            group: it.group,
                            local_linear: it.local_linear,
                            global_linear: lin,
                        };
                        f(item);
                    }
                });
            },
        )?;
        Ok(self.finish_event(name, submitted, started, dispatch, stats, resilience))
    }

    /// Launch a work-group kernel over `nd`. `kernel` receives each
    /// group's [`GroupCtx`] and drives its work-items in phases.
    pub fn nd_range<K>(&self, name: &'static str, nd: NdRange, kernel: K) -> Result<Event>
    where
        K: Fn(&GroupCtx) + Sync,
    {
        self.nd_range_with_limit(name, nd, None, kernel)
    }

    /// Like [`Queue::nd_range`] but with an explicit
    /// `reqd_work_group_size`-style limit attribute. The paper adds these
    /// attributes to every FPGA kernel; exceeding them is a launch error
    /// (or, under [`Fallback::Cpu`], a recorded re-run on the host).
    pub fn nd_range_with_limit<K>(
        &self,
        name: &'static str,
        nd: NdRange,
        reqd_max: Option<usize>,
        kernel: K,
    ) -> Result<Event>
    where
        K: Fn(&GroupCtx) + Sync,
    {
        let submitted = Instant::now();
        let started = Instant::now();
        let (stats, dispatch, resilience) =
            self.launch_groups(name, nd, reqd_max, &kernel)?;
        Ok(self.finish_event(name, submitted, started, dispatch, stats, resilience))
    }

    /// Launch a Single-Task kernel: one logical thread, as in the paper's
    /// FPGA rewrites (Section 5.3). Infallible wrapper over
    /// [`Queue::try_single_task`]; a contained kernel panic re-raises the
    /// typed [`Error`] as panic payload.
    pub fn single_task<F>(&self, name: &'static str, f: F) -> Event
    where
        F: FnOnce(),
    {
        self.try_single_task(name, f)
            .unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible Single-Task launch with panic containment: a panic inside
    /// `f` is caught and classified into a typed [`Error`]
    /// (`KernelPanicked`, or the panic's own `Error` payload for typed
    /// bounds/capacity violations). No transient injection or retry here:
    /// the kernel is `FnOnce`, so the runtime cannot guarantee a
    /// side-effect-free re-run.
    pub fn try_single_task<F>(&self, name: &'static str, f: F) -> Result<Event>
    where
        F: FnOnce(),
    {
        let _guard = InFlightGuard::enter(&self.inflight);
        crate::fault::install_quiet_hook();
        if let Some(t) = &self.cancel {
            if let Err(e) = t.check(name) {
                if let Some(ledger) = &self.ledger {
                    ledger.record_error(&e);
                }
                return Err(e);
            }
        }
        let submitted = Instant::now();
        let started = Instant::now();
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .map_err(|payload| crate::fault::classify_panic(name, 0, payload));
        if let Some(ledger) = &self.ledger {
            match &run {
                Ok(()) => ledger.record(&ResilienceInfo::default()),
                Err(e) => ledger.record_error(e),
            }
        }
        run?;
        let stats = LaunchStats { groups: 1, items: 1, ..LaunchStats::default() };
        Ok(self.finish_event(
            name,
            submitted,
            started,
            Duration::ZERO,
            stats,
            ResilienceInfo::default(),
        ))
    }

    /// Allocate USM memory on this queue's device, subject to the queue's
    /// fault plan: on top of the genuine capability failure
    /// ([`Error::UsmUnsupported`] on the paper's FPGAs), a plan may
    /// deterministically inject [`Error::UsmAllocFailed`].
    pub fn alloc_usm<T: Copy + Default + 'static>(
        &self,
        kind: crate::usm::UsmKind,
        len: usize,
    ) -> Result<crate::usm::UsmAlloc<T>> {
        crate::usm::UsmAlloc::new_with_fault(&self.device, kind, len, self.fault.as_deref())
    }

    /// Allocate a zero-initialised buffer of `len` elements, reusing a
    /// retired allocation from the queue's recycling slab when one of the
    /// exact type and length is shelved (see [`Queue::recycle_buffer`]).
    ///
    /// Indistinguishable from [`Buffer::new`] except for allocator
    /// traffic: contents are zero-filled, and identity is fresh — a new
    /// sanitizer object id and a newly registered integrity region, so no
    /// shadow state or page seals survive from the previous tenant. The
    /// [`Buffer::generation`] counter records how many reuses the bytes
    /// have seen (0 on a slab miss).
    pub fn recycled_buffer<T: Copy + Default + Send + 'static>(&self, len: usize) -> Buffer<T> {
        match self.slab.take::<Box<[T]>>(len) {
            Some((mut data, generation)) => {
                data.fill(T::default());
                Buffer::build_gen(data, generation + 1)
            }
            None => Buffer::new(len),
        }
    }

    /// Retire a buffer to the recycling slab for a later
    /// [`Queue::recycled_buffer`] of the same type and length.
    ///
    /// Succeeds only when `buf` is the sole owner of its storage: clones
    /// or outstanding [`crate::GlobalView`]s refuse the recycle (the
    /// handle is still consumed; the storage stays alive through the
    /// other owners) — returning `false` and counting a rejection. A
    /// full shelf also drops the allocation rather than pinning
    /// unbounded memory.
    pub fn recycle_buffer<T: Copy + Default + Send + 'static>(&self, buf: Buffer<T>) -> bool {
        match buf.into_raw_parts() {
            Some((data, generation)) => {
                let len = data.len();
                self.slab.put(len, data, generation)
            }
            None => {
                self.slab.note_rejected();
                false
            }
        }
    }

    /// [`Queue::alloc_usm`] through the recycling slab: reuses a retired
    /// USM vector of the exact type and length when one is shelved,
    /// zero-filled and with fresh identity (new sanitizer id, new
    /// integrity region). Capability and fault-plan checks are identical
    /// to a fresh allocation — the paper's FPGAs still refuse, and an
    /// injected [`Error::UsmAllocFailed`] still fires, regardless of
    /// what the slab holds.
    pub fn recycled_usm<T: Copy + Default + Send + 'static>(
        &self,
        kind: UsmKind,
        len: usize,
    ) -> Result<UsmAlloc<T>> {
        if !self.device.caps().supports_usm {
            return Err(Error::UsmUnsupported { device: self.device.name().to_string() });
        }
        if self.fault.as_deref().is_some_and(FaultPlan::should_fail_alloc) {
            return Err(Error::UsmAllocFailed {
                device: self.device.name().to_string(),
                bytes: len * std::mem::size_of::<T>(),
            });
        }
        match self.slab.take::<Vec<T>>(len) {
            Some((mut data, generation)) => {
                data.fill(T::default());
                Ok(UsmAlloc::build_gen(data, kind, generation + 1))
            }
            // Capability and fault checks already ran above; going back
            // through `alloc_usm` would consult the fault plan twice.
            None => Ok(UsmAlloc::build_gen(vec![T::default(); len], kind, 0)),
        }
    }

    /// Retire a USM allocation to the recycling slab. USM allocations
    /// are uniquely owned, so unlike [`Queue::recycle_buffer`] only a
    /// full shelf can refuse (returns `false`).
    pub fn recycle_usm<T: Copy + Default + Send + 'static>(&self, alloc: UsmAlloc<T>) -> bool {
        let (data, generation) = alloc.into_raw_parts();
        let len = data.len();
        self.slab.put(len, data, generation)
    }

    /// Traffic counters of the recycling slab shared by every clone of
    /// this queue.
    pub fn slab_stats(&self) -> SlabStats {
        self.slab.stats()
    }

    /// Launch several kernels that run *concurrently* (each on its own
    /// host thread) and usually communicate through pipes. Returns when
    /// all complete. Errors from any kernel (e.g. pipe deadlock) are
    /// propagated; the first error wins.
    ///
    /// Deliberately **not** routed through the persistent pool: pipe
    /// kernels block on FIFO reads/writes for unbounded stretches, and a
    /// blocked pool worker would stall unrelated launches sharing the
    /// pool. Dedicated scoped threads keep the pool's workers available.
    pub fn submit_concurrent<F>(&self, name: &'static str, kernels: Vec<F>) -> Result<Event>
    where
        F: FnOnce() -> Result<()> + Send,
    {
        let _guard = InFlightGuard::enter(&self.inflight);
        crate::fault::install_quiet_hook();
        if let Some(t) = &self.cancel {
            t.check(name)?;
        }
        let submitted = Instant::now();
        if self.device.caps().supports_pipes || kernels.len() <= 1 {
            // ok — FPGA-style concurrent kernels, or trivially sequential
        }
        let started = Instant::now();
        let n = kernels.len() as u64;
        let mut first_err = None;
        std::thread::scope(|s| {
            let handles: Vec<_> = kernels
                .into_iter()
                .map(|k| s.spawn(k))
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        first_err.get_or_insert(e);
                    }
                    Err(payload) => {
                        // A panicking concurrent kernel is contained like a
                        // pooled one: classified into a typed error, with
                        // the kernel's index standing in for a group id.
                        first_err.get_or_insert(crate::fault::classify_panic(name, i, payload));
                    }
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        let stats = LaunchStats { groups: n, items: n, ..LaunchStats::default() };
        Ok(self.finish_event(
            name,
            submitted,
            started,
            Duration::ZERO,
            stats,
            ResilienceInfo::default(),
        ))
    }

    /// Device-to-device buffer copy (like `queue.memcpy` between device
    /// allocations): copies `len` elements from `src[src_off..]` to
    /// `dst[dst_off..]`, executed as a data-parallel kernel.
    ///
    /// As with `memcpy`, the ranges must not overlap when `src` and
    /// `dst` are views of the same buffer; overlapping copies race and
    /// produce an unspecified mix of old and new values.
    pub fn copy<T: Copy + Default + Send + 'static>(
        &self,
        src: &crate::buffer::Buffer<T>,
        src_off: usize,
        dst: &crate::buffer::Buffer<T>,
        dst_off: usize,
        len: usize,
    ) -> Result<Event> {
        let sv = src.view_range(src_off, len)?;
        let dv = dst.view_range(dst_off, len)?;
        self.try_parallel_for("memcpy", Range::d1(len), move |it| {
            dv.set(it.gid(0), sv.get(it.gid(0)));
        })
    }

    /// Fill a buffer range with a value (like `queue.fill`).
    pub fn fill<T: Copy + Default + Send + Sync + 'static>(
        &self,
        dst: &crate::buffer::Buffer<T>,
        offset: usize,
        len: usize,
        value: T,
    ) -> Result<Event> {
        let dv = dst.view_range(offset, len)?;
        self.try_parallel_for("fill", Range::d1(len), move |it| {
            dv.set(it.gid(0), value);
        })
    }

    /// Block until no launch is in flight on this queue or any clone of
    /// it.
    ///
    /// Submissions from the calling thread are synchronous, so for
    /// single-threaded code this returns immediately — but clones of a
    /// queue share one in-flight counter, so `wait()` genuinely blocks
    /// until launches submitted from *other* threads (nested launches,
    /// application worker threads) have drained. Combined with the
    /// synchronous submission rule this is the in-order guarantee: when
    /// `wait()` returns, every effect of every previously *started*
    /// submission on any clone is visible.
    ///
    /// Do not call `wait()` from inside a kernel running on the same
    /// queue: that launch is itself in flight, so the wait would never
    /// return (the same self-deadlock `sycl::queue::wait` has inside a
    /// host task).
    pub fn wait(&self) {
        let mut c = self.inflight.count.lock().unwrap();
        while *c > 0 {
            c = self.inflight.cv.wait(c).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::ndrange::FenceSpace;
    use crate::pipe::Pipe;

    #[test]
    fn parallel_for_covers_exact_range() {
        let q = Queue::new(Device::cpu());
        let b = Buffer::<u32>::new(1000);
        let v = b.view();
        q.parallel_for("iota", Range::d1(1000), |it| {
            v.set(it.gid(0), it.gid(0) as u32 + 1);
        });
        let out = b.to_vec();
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn parallel_for_2d_indices() {
        let q = Queue::new(Device::cpu());
        let (w, h) = (13, 7);
        let b = Buffer::<u32>::new(w * h);
        let v = b.view();
        q.parallel_for("fill2d", Range::d2(w, h), |it| {
            v.set(it.gid(1) * w + it.gid(0), 1);
        });
        assert!(b.to_vec().iter().all(|&x| x == 1));
    }

    #[test]
    fn nd_range_reduction_with_barrier() {
        // Tree reduction in local memory: the canonical barrier kernel.
        let q = Queue::new(Device::cpu());
        let n = 1024;
        let input = Buffer::from_slice(&(0..n as u32).collect::<Vec<_>>());
        let partial = Buffer::<u32>::new(n / 128);
        let iv = input.view();
        let pv = partial.view();
        q.nd_range("reduce", NdRange::d1(n, 128), |ctx| {
            let shared = ctx.local_array::<u32>(128);
            ctx.items(|it| shared.set(it.local_linear, iv.get(it.global_linear)));
            ctx.barrier(FenceSpace::Local);
            let mut stride = 64;
            while stride > 0 {
                ctx.items(|it| {
                    if it.local_linear < stride {
                        shared.update(it.local_linear, |v| {
                            v + shared.get(it.local_linear + stride)
                        });
                    }
                });
                ctx.barrier(FenceSpace::Local);
                stride /= 2;
            }
            ctx.items(|it| {
                if it.local_linear == 0 {
                    pv.set(ctx.group_linear(), shared.get(0));
                }
            });
        })
        .unwrap();
        let total: u32 = partial.to_vec().iter().sum();
        assert_eq!(total, (0..n as u32).sum());
    }

    #[test]
    fn work_group_limit_is_enforced() {
        let q = Queue::new(Device::stratix10());
        let err = q
            .nd_range("too_big", NdRange::d1(512, 256), |_ctx| {})
            .unwrap_err();
        assert_eq!(err, Error::WorkGroupTooLarge { requested: 256, limit: 128 });
    }

    #[test]
    fn reqd_attribute_tightens_limit() {
        let q = Queue::new(Device::cpu());
        let err = q
            .nd_range_with_limit("attr", NdRange::d1(128, 64), Some(32), |_| {})
            .unwrap_err();
        assert_eq!(err, Error::WorkGroupTooLarge { requested: 64, limit: 32 });
    }

    #[test]
    fn profiling_none_without_enable() {
        let q = Queue::new(Device::cpu());
        let e = q.single_task("t", || {});
        assert!(e.profiling().is_none());
        let q = Queue::with_profiling(Device::cpu());
        let e = q.single_task("t", || {});
        assert!(e.profiling().is_some());
        assert!(e.kernel_time().unwrap() <= e.profiling().unwrap().invocation_time());
    }

    #[test]
    fn concurrent_kernels_stream_through_pipe() {
        let q = Queue::with_profiling(Device::stratix10());
        let pipe = Pipe::with_capacity(16);
        let out = Buffer::<u64>::new(1);
        let n = 1000u64;
        let (p1, p2) = (pipe.clone(), pipe);
        let ov = out.view();
        q.submit_concurrent(
            "producer_consumer",
            vec![
                Box::new(move || {
                    for i in 0..n {
                        p1.write(i)?;
                    }
                    Ok(())
                }) as Box<dyn FnOnce() -> Result<()> + Send>,
                Box::new(move || {
                    let mut acc = 0;
                    for _ in 0..n {
                        acc += p2.read()?;
                    }
                    ov.set(0, acc);
                    Ok(())
                }),
            ],
        )
        .unwrap();
        assert_eq!(out.to_vec()[0], n * (n - 1) / 2);
    }

    #[test]
    fn concurrent_error_propagates() {
        let q = Queue::new(Device::stratix10());
        let r = q.submit_concurrent(
            "failing",
            vec![Box::new(|| Err(Error::PipeClosed))
                as Box<dyn FnOnce() -> Result<()> + Send>],
        );
        assert_eq!(r.unwrap_err(), Error::PipeClosed);
    }

    #[test]
    fn nested_parallelism_launches_child_kernels() {
        // Altis exercises CUDA nested parallelism (device-side launch);
        // here a Single-Task "parent" kernel launches child grids
        // through a captured queue handle.
        let parent_q = Queue::new(Device::cpu());
        let child_q = parent_q.clone();
        let b = Buffer::<u32>::new(64);
        let v = b.view();
        parent_q.single_task("parent", move || {
            for wave in 0..4u32 {
                let v = v.clone();
                child_q.parallel_for("child", Range::d1(16), move |it| {
                    v.set(wave as usize * 16 + it.gid(0), wave + 1);
                });
            }
        });
        let out = b.to_vec();
        for wave in 0..4 {
            assert!(out[wave * 16..(wave + 1) * 16].iter().all(|&x| x == wave as u32 + 1));
        }
    }

    #[test]
    fn copy_moves_subranges() {
        let q = Queue::new(Device::cpu());
        let src = Buffer::from_slice(&(0u32..100).collect::<Vec<_>>());
        let dst = Buffer::<u32>::new(50);
        q.copy(&src, 10, &dst, 5, 20).unwrap();
        let out = dst.to_vec();
        assert!(out[..5].iter().all(|&v| v == 0));
        assert_eq!(out[5..25], (10..30).collect::<Vec<u32>>()[..]);
        assert!(out[25..].iter().all(|&v| v == 0));
        // Out-of-bounds copy is rejected.
        assert!(q.copy(&src, 90, &dst, 0, 20).is_err());
    }

    #[test]
    fn fill_writes_constant_range() {
        let q = Queue::new(Device::cpu());
        let b = Buffer::<f32>::new(16);
        q.fill(&b, 4, 8, 2.5).unwrap();
        let out = b.to_vec();
        assert!(out[..4].iter().all(|&v| v == 0.0));
        assert!(out[4..12].iter().all(|&v| v == 2.5));
        assert!(out[12..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn recycled_buffer_reuses_bytes_with_fresh_identity() {
        let q = Queue::new(Device::cpu());
        let a = q.recycled_buffer::<f32>(64);
        assert_eq!(a.generation(), 0, "first request is a slab miss");
        let first_id = a.object_id();
        a.write(|s| s.fill(7.5));
        assert!(q.recycle_buffer(a));
        let b = q.recycled_buffer::<f32>(64);
        assert_eq!(b.generation(), 1, "second request reuses the allocation");
        assert_ne!(b.object_id(), first_id, "identity must be fresh on reuse");
        assert!(b.to_vec().iter().all(|&v| v == 0.0), "reuse must zero-fill");
        let s = q.slab_stats();
        assert_eq!((s.reuses, s.returns), (1, 1));
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn recycle_refused_while_views_outstanding() {
        let q = Queue::new(Device::cpu());
        let a = q.recycled_buffer::<u32>(16);
        let view = a.view();
        let before = q.slab_stats().rejected;
        assert!(!q.recycle_buffer(a), "outstanding view must refuse the recycle");
        assert_eq!(q.slab_stats().rejected, before + 1);
        // The view alone keeps the storage alive and usable.
        view.set(3, 9);
        assert_eq!(view.get(3), 9);
        // Nothing was shelved, so the next request misses.
        assert_eq!(q.recycled_buffer::<u32>(16).generation(), 0);
    }

    #[test]
    fn slab_is_keyed_by_type_and_exact_length() {
        let q = Queue::new(Device::cpu());
        assert!(q.recycle_buffer(q.recycled_buffer::<f32>(32)));
        // Different length and different element type both miss.
        assert_eq!(q.recycled_buffer::<f32>(33).generation(), 0);
        assert_eq!(q.recycled_buffer::<u32>(32).generation(), 0);
        // Exact match hits.
        assert_eq!(q.recycled_buffer::<f32>(32).generation(), 1);
    }

    #[test]
    fn slab_is_shared_across_queue_clones() {
        let q = Queue::new(Device::cpu());
        let clone = q.clone();
        assert!(q.recycle_buffer(q.recycled_buffer::<i64>(8)));
        assert_eq!(clone.recycled_buffer::<i64>(8).generation(), 1);
    }

    #[test]
    fn usm_recycling_roundtrips_with_fresh_identity() {
        let q = Queue::new(Device::cpu());
        let mut a = q.recycled_usm::<u32>(crate::usm::UsmKind::Shared, 16).unwrap();
        assert_eq!(a.generation(), 0);
        let first_id = a.object_id();
        a.set(5, 42);
        assert!(q.recycle_usm(a));
        let b = q.recycled_usm::<u32>(crate::usm::UsmKind::Shared, 16).unwrap();
        assert_eq!(b.generation(), 1);
        assert_ne!(b.object_id(), first_id);
        assert!(b.as_slice().iter().all(|&v| v == 0), "reuse must zero-fill");
    }

    #[test]
    fn recycled_usm_still_enforces_device_capability() {
        // The paper's FPGAs refuse USM; the slab must not change that.
        let q = Queue::new(Device::stratix10());
        let e = q.recycled_usm::<f32>(crate::usm::UsmKind::Host, 8).unwrap_err();
        assert!(matches!(e, Error::UsmUnsupported { .. }));
    }

    #[test]
    fn single_task_runs_once() {
        let q = Queue::new(Device::agilex());
        let b = Buffer::<u32>::new(1);
        let v = b.view();
        let e = q.single_task("st", || v.set(0, 42));
        assert_eq!(b.to_vec()[0], 42);
        assert_eq!(e.stats().groups, 1);
    }
}
