//! Command queues.
//!
//! [`Queue`] reproduces `sycl::queue`: kernels are submitted against a
//! device and return profiling [`Event`]s. Three submission styles exist,
//! matching the three kernel shapes in Altis-SYCL:
//!
//! * [`Queue::parallel_for`] — barrier-free ND kernels (one closure per
//!   work-item), the most common migrated shape;
//! * [`Queue::nd_range`] — work-group kernels with local memory and
//!   barrier phases;
//! * [`Queue::single_task`] — the FPGA-style single-threaded kernels the
//!   paper rewrites ND-Range kernels into (Section 5.3);
//! * [`Queue::submit_concurrent`] — launch several kernels that run
//!   simultaneously and communicate through [`crate::pipe::Pipe`]s, the
//!   structure of the optimized KMeans design (Figure 3).

use std::time::{Duration, Instant};

use crate::device::Device;
use crate::error::{Error, Result};
use crate::event::{Event, LaunchStats, ProfilingInfo};
use crate::executor::{run_groups_timed, Parallelism};
use crate::ndrange::{GroupCtx, Item, NdRange, Range};

/// An in-order command queue bound to a device.
#[derive(Clone)]
pub struct Queue {
    device: Device,
    profiling: bool,
    parallelism: Parallelism,
}

impl Queue {
    /// Create a queue on `device` with profiling disabled — the state
    /// DPCT's helper headers leave you in, which the paper calls out as
    /// preventing kernel-time measurement.
    pub fn new(device: Device) -> Self {
        Queue { device, profiling: false, parallelism: Parallelism::Auto }
    }

    /// Create a queue with profiling enabled (the
    /// `property::queue::enable_profiling` equivalent).
    pub fn with_profiling(device: Device) -> Self {
        Queue { device, profiling: true, parallelism: Parallelism::Auto }
    }

    /// Restrict the executor's host parallelism (useful for deterministic
    /// tests and for Single-Task-like sequential execution).
    pub fn with_parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// The queue's device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Whether profiling was enabled at construction.
    pub fn profiling_enabled(&self) -> bool {
        self.profiling
    }

    fn finish_event(
        &self,
        name: &'static str,
        submitted: Instant,
        started: Instant,
        dispatch: Duration,
        stats: LaunchStats,
    ) -> Event {
        let profiling = self.profiling.then(|| ProfilingInfo {
            submitted,
            started,
            ended: Instant::now(),
            dispatch,
        });
        Event::new(name, profiling, stats)
    }

    fn check_group_size(&self, nd: &NdRange, reqd_max: Option<usize>) -> Result<()> {
        nd.validate()?;
        let limit = reqd_max
            .unwrap_or(usize::MAX)
            .min(self.device.caps().max_work_group_size);
        let size = nd.group_size();
        if size > limit {
            return Err(Error::WorkGroupTooLarge { requested: size, limit });
        }
        Ok(())
    }

    /// Launch a barrier-free data-parallel kernel: `f` runs once per
    /// global index of `range` (like `parallel_for(range, ...)`).
    pub fn parallel_for<F>(&self, name: &'static str, range: Range, f: F) -> Event
    where
        F: Fn(Item) + Sync,
    {
        let submitted = Instant::now();
        // Chunk the flat range into implicit groups for the executor.
        let total = range.size();
        let chunk = 256.min(total.max(1));
        let padded = total.div_ceil(chunk) * chunk;
        let nd = NdRange { global: Range::d1(padded), local: Range::d1(chunk) };
        let started = Instant::now();
        let (stats, dispatch) = run_groups_timed(
            nd,
            self.parallelism,
            self.device.caps().local_mem_bytes,
            &|ctx: &GroupCtx| {
                ctx.items(|it| {
                    let lin = it.global_linear;
                    if lin < total {
                        let idx = range.delinearize(lin);
                        let item = Item {
                            global: idx,
                            local: it.local,
                            group: it.group,
                            local_linear: it.local_linear,
                            global_linear: lin,
                        };
                        f(item);
                    }
                });
            },
        );
        self.finish_event(name, submitted, started, dispatch, stats)
    }

    /// Launch a work-group kernel over `nd`. `kernel` receives each
    /// group's [`GroupCtx`] and drives its work-items in phases.
    pub fn nd_range<K>(&self, name: &'static str, nd: NdRange, kernel: K) -> Result<Event>
    where
        K: Fn(&GroupCtx) + Sync,
    {
        self.nd_range_with_limit(name, nd, None, kernel)
    }

    /// Like [`Queue::nd_range`] but with an explicit
    /// `reqd_work_group_size`-style limit attribute. The paper adds these
    /// attributes to every FPGA kernel; exceeding them is a launch error.
    pub fn nd_range_with_limit<K>(
        &self,
        name: &'static str,
        nd: NdRange,
        reqd_max: Option<usize>,
        kernel: K,
    ) -> Result<Event>
    where
        K: Fn(&GroupCtx) + Sync,
    {
        let submitted = Instant::now();
        self.check_group_size(&nd, reqd_max)?;
        let started = Instant::now();
        let (stats, dispatch) = run_groups_timed(
            nd,
            self.parallelism,
            self.device.caps().local_mem_bytes,
            &kernel,
        );
        Ok(self.finish_event(name, submitted, started, dispatch, stats))
    }

    /// Launch a Single-Task kernel: one logical thread, as in the paper's
    /// FPGA rewrites (Section 5.3).
    pub fn single_task<F>(&self, name: &'static str, f: F) -> Event
    where
        F: FnOnce(),
    {
        let submitted = Instant::now();
        let started = Instant::now();
        f();
        let stats = LaunchStats { groups: 1, items: 1, ..LaunchStats::default() };
        self.finish_event(name, submitted, started, Duration::ZERO, stats)
    }

    /// Launch several kernels that run *concurrently* (each on its own
    /// host thread) and usually communicate through pipes. Returns when
    /// all complete. Errors from any kernel (e.g. pipe deadlock) are
    /// propagated; the first error wins.
    ///
    /// Deliberately **not** routed through the persistent pool: pipe
    /// kernels block on FIFO reads/writes for unbounded stretches, and a
    /// blocked pool worker would stall unrelated launches sharing the
    /// pool. Dedicated scoped threads keep the pool's workers available.
    pub fn submit_concurrent<F>(&self, name: &'static str, kernels: Vec<F>) -> Result<Event>
    where
        F: FnOnce() -> Result<()> + Send,
    {
        let submitted = Instant::now();
        if self.device.caps().supports_pipes || kernels.len() <= 1 {
            // ok — FPGA-style concurrent kernels, or trivially sequential
        }
        let started = Instant::now();
        let n = kernels.len() as u64;
        let mut first_err = None;
        std::thread::scope(|s| {
            let handles: Vec<_> = kernels
                .into_iter()
                .map(|k| s.spawn(k))
                .collect();
            for h in handles {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        first_err.get_or_insert(e);
                    }
                    Err(_) => {
                        first_err.get_or_insert(Error::PipeClosed);
                    }
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        let stats = LaunchStats { groups: n, items: n, ..LaunchStats::default() };
        Ok(self.finish_event(name, submitted, started, Duration::ZERO, stats))
    }

    /// Device-to-device buffer copy (like `queue.memcpy` between device
    /// allocations): copies `len` elements from `src[src_off..]` to
    /// `dst[dst_off..]`, executed as a data-parallel kernel.
    ///
    /// As with `memcpy`, the ranges must not overlap when `src` and
    /// `dst` are views of the same buffer; overlapping copies race and
    /// produce an unspecified mix of old and new values.
    pub fn copy<T: Copy + Default + Send + 'static>(
        &self,
        src: &crate::buffer::Buffer<T>,
        src_off: usize,
        dst: &crate::buffer::Buffer<T>,
        dst_off: usize,
        len: usize,
    ) -> Result<Event> {
        let sv = src.view_range(src_off, len)?;
        let dv = dst.view_range(dst_off, len)?;
        Ok(self.parallel_for("memcpy", Range::d1(len), move |it| {
            dv.set(it.gid(0), sv.get(it.gid(0)));
        }))
    }

    /// Fill a buffer range with a value (like `queue.fill`).
    pub fn fill<T: Copy + Default + Send + Sync + 'static>(
        &self,
        dst: &crate::buffer::Buffer<T>,
        offset: usize,
        len: usize,
        value: T,
    ) -> Result<Event> {
        let dv = dst.view_range(offset, len)?;
        Ok(self.parallel_for("fill", Range::d1(len), move |it| {
            dv.set(it.gid(0), value);
        }))
    }

    /// Wait for all submitted work (no-op: submissions are synchronous;
    /// present so ported code keeps its `q.wait()` call sites).
    pub fn wait(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::ndrange::FenceSpace;
    use crate::pipe::Pipe;

    #[test]
    fn parallel_for_covers_exact_range() {
        let q = Queue::new(Device::cpu());
        let b = Buffer::<u32>::new(1000);
        let v = b.view();
        q.parallel_for("iota", Range::d1(1000), |it| {
            v.set(it.gid(0), it.gid(0) as u32 + 1);
        });
        let out = b.to_vec();
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn parallel_for_2d_indices() {
        let q = Queue::new(Device::cpu());
        let (w, h) = (13, 7);
        let b = Buffer::<u32>::new(w * h);
        let v = b.view();
        q.parallel_for("fill2d", Range::d2(w, h), |it| {
            v.set(it.gid(1) * w + it.gid(0), 1);
        });
        assert!(b.to_vec().iter().all(|&x| x == 1));
    }

    #[test]
    fn nd_range_reduction_with_barrier() {
        // Tree reduction in local memory: the canonical barrier kernel.
        let q = Queue::new(Device::cpu());
        let n = 1024;
        let input = Buffer::from_slice(&(0..n as u32).collect::<Vec<_>>());
        let partial = Buffer::<u32>::new(n / 128);
        let iv = input.view();
        let pv = partial.view();
        q.nd_range("reduce", NdRange::d1(n, 128), |ctx| {
            let shared = ctx.local_array::<u32>(128);
            ctx.items(|it| shared.set(it.local_linear, iv.get(it.global_linear)));
            ctx.barrier(FenceSpace::Local);
            let mut stride = 64;
            while stride > 0 {
                ctx.items(|it| {
                    if it.local_linear < stride {
                        shared.update(it.local_linear, |v| {
                            v + shared.get(it.local_linear + stride)
                        });
                    }
                });
                ctx.barrier(FenceSpace::Local);
                stride /= 2;
            }
            ctx.items(|it| {
                if it.local_linear == 0 {
                    pv.set(ctx.group_linear(), shared.get(0));
                }
            });
        })
        .unwrap();
        let total: u32 = partial.to_vec().iter().sum();
        assert_eq!(total, (0..n as u32).sum());
    }

    #[test]
    fn work_group_limit_is_enforced() {
        let q = Queue::new(Device::stratix10());
        let err = q
            .nd_range("too_big", NdRange::d1(512, 256), |_ctx| {})
            .unwrap_err();
        assert_eq!(err, Error::WorkGroupTooLarge { requested: 256, limit: 128 });
    }

    #[test]
    fn reqd_attribute_tightens_limit() {
        let q = Queue::new(Device::cpu());
        let err = q
            .nd_range_with_limit("attr", NdRange::d1(128, 64), Some(32), |_| {})
            .unwrap_err();
        assert_eq!(err, Error::WorkGroupTooLarge { requested: 64, limit: 32 });
    }

    #[test]
    fn profiling_none_without_enable() {
        let q = Queue::new(Device::cpu());
        let e = q.single_task("t", || {});
        assert!(e.profiling().is_none());
        let q = Queue::with_profiling(Device::cpu());
        let e = q.single_task("t", || {});
        assert!(e.profiling().is_some());
        assert!(e.kernel_time().unwrap() <= e.profiling().unwrap().invocation_time());
    }

    #[test]
    fn concurrent_kernels_stream_through_pipe() {
        let q = Queue::with_profiling(Device::stratix10());
        let pipe = Pipe::with_capacity(16);
        let out = Buffer::<u64>::new(1);
        let n = 1000u64;
        let (p1, p2) = (pipe.clone(), pipe);
        let ov = out.view();
        q.submit_concurrent(
            "producer_consumer",
            vec![
                Box::new(move || {
                    for i in 0..n {
                        p1.write(i)?;
                    }
                    Ok(())
                }) as Box<dyn FnOnce() -> Result<()> + Send>,
                Box::new(move || {
                    let mut acc = 0;
                    for _ in 0..n {
                        acc += p2.read()?;
                    }
                    ov.set(0, acc);
                    Ok(())
                }),
            ],
        )
        .unwrap();
        assert_eq!(out.to_vec()[0], n * (n - 1) / 2);
    }

    #[test]
    fn concurrent_error_propagates() {
        let q = Queue::new(Device::stratix10());
        let r = q.submit_concurrent(
            "failing",
            vec![Box::new(|| Err(Error::PipeClosed))
                as Box<dyn FnOnce() -> Result<()> + Send>],
        );
        assert_eq!(r.unwrap_err(), Error::PipeClosed);
    }

    #[test]
    fn nested_parallelism_launches_child_kernels() {
        // Altis exercises CUDA nested parallelism (device-side launch);
        // here a Single-Task "parent" kernel launches child grids
        // through a captured queue handle.
        let parent_q = Queue::new(Device::cpu());
        let child_q = parent_q.clone();
        let b = Buffer::<u32>::new(64);
        let v = b.view();
        parent_q.single_task("parent", move || {
            for wave in 0..4u32 {
                let v = v.clone();
                child_q.parallel_for("child", Range::d1(16), move |it| {
                    v.set(wave as usize * 16 + it.gid(0), wave + 1);
                });
            }
        });
        let out = b.to_vec();
        for wave in 0..4 {
            assert!(out[wave * 16..(wave + 1) * 16].iter().all(|&x| x == wave as u32 + 1));
        }
    }

    #[test]
    fn copy_moves_subranges() {
        let q = Queue::new(Device::cpu());
        let src = Buffer::from_slice(&(0u32..100).collect::<Vec<_>>());
        let dst = Buffer::<u32>::new(50);
        q.copy(&src, 10, &dst, 5, 20).unwrap();
        let out = dst.to_vec();
        assert!(out[..5].iter().all(|&v| v == 0));
        assert_eq!(out[5..25], (10..30).collect::<Vec<u32>>()[..]);
        assert!(out[25..].iter().all(|&v| v == 0));
        // Out-of-bounds copy is rejected.
        assert!(q.copy(&src, 90, &dst, 0, 20).is_err());
    }

    #[test]
    fn fill_writes_constant_range() {
        let q = Queue::new(Device::cpu());
        let b = Buffer::<f32>::new(16);
        q.fill(&b, 4, 8, 2.5).unwrap();
        let out = b.to_vec();
        assert!(out[..4].iter().all(|&v| v == 0.0));
        assert!(out[4..12].iter().all(|&v| v == 2.5));
        assert!(out[12..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_task_runs_once() {
        let q = Queue::new(Device::agilex());
        let b = Buffer::<u32>::new(1);
        let v = b.view();
        let e = q.single_task("st", || v.set(0, 42));
        assert_eq!(b.to_vec()[0], 42);
        assert_eq!(e.stats().groups, 1);
    }
}
