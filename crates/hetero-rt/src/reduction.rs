//! Buffer-level reduction helpers — the `sycl::reduction` convenience
//! layer. Altis' SRAD and ParticleFilter both need whole-buffer
//! reductions between kernels; these helpers run them as proper
//! two-stage ND-Range kernels (per-group tree reduction into partials,
//! then a final fold), which is the shape the migrated code uses.

use crate::buffer::Buffer;
use crate::group_algorithms::group_reduce;
use crate::ndrange::NdRange;
use crate::queue::Queue;

/// Work-group size used by the reduction kernels.
const WG: usize = 128;

/// Reduce an f32 buffer with `op` (plus `identity`) on the device queue.
///
/// Runs a per-group tree reduction kernel followed by a host fold of the
/// per-group partials (exactly the two-stage structure of the original
/// CUDA reductions). Deterministic for a fixed buffer length.
pub fn reduce_f32(
    q: &Queue,
    data: &Buffer<f32>,
    identity: f32,
    op: impl Fn(f32, f32) -> f32 + Sync + Copy,
) -> f32 {
    let n = data.len();
    if n == 0 {
        return identity;
    }
    let padded = n.div_ceil(WG) * WG;
    let groups = padded / WG;
    // Iterative apps (SRAD, ParticleFilter) call this every timestep with
    // the same `n`: route the partials scratch through the queue's
    // recycling slab instead of the allocator.
    let partials = q.recycled_buffer::<f32>(groups);
    let (dv, pv) = (data.view(), partials.view());
    q.nd_range("reduce_f32", NdRange::d1(padded, WG), move |ctx| {
        let vals = ctx.private_array::<f32>();
        ctx.items(|it| {
            let i = it.global_linear;
            vals.set(it.local_linear, if i < n { dv.get(i) } else { identity });
        });
        let r = group_reduce(ctx, &vals, identity, op);
        pv.set(ctx.group_linear(), r);
    })
    .unwrap_or_else(|e| std::panic::panic_any(e));
    let out = partials.to_vec().into_iter().fold(identity, op);
    q.recycle_buffer(partials);
    out
}

/// Sum of an f32 buffer (the common case).
pub fn sum_f32(q: &Queue, data: &Buffer<f32>) -> f32 {
    reduce_f32(q, data, 0.0, |a, b| a + b)
}

/// Sum of squares of an f32 buffer (SRAD's second moment).
pub fn sum_sq_f32(q: &Queue, data: &Buffer<f32>) -> f32 {
    let n = data.len();
    if n == 0 {
        return 0.0;
    }
    let squared = q.recycled_buffer::<f32>(n);
    let (dv, sv) = (data.view(), squared.view());
    q.parallel_for("square", crate::ndrange::Range::d1(n), move |it| {
        let v = dv.get(it.gid(0));
        sv.set(it.gid(0), v * v);
    });
    let out = sum_f32(q, &squared);
    q.recycle_buffer(squared);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;

    #[test]
    fn sum_matches_sequential() {
        let q = Queue::new(Device::cpu());
        let data: Vec<f32> = (0..10_000).map(|i| (i % 7) as f32).collect();
        let b = Buffer::from_slice(&data);
        let expect: f32 = data.iter().sum();
        assert!((sum_f32(&q, &b) - expect).abs() < expect * 1e-5);
    }

    #[test]
    fn non_multiple_of_group_size_pads_with_identity() {
        let q = Queue::new(Device::cpu());
        let data: Vec<f32> = (0..1_001).map(|_| 1.0).collect();
        let b = Buffer::from_slice(&data);
        assert_eq!(sum_f32(&q, &b), 1_001.0);
    }

    #[test]
    fn max_reduction() {
        let q = Queue::new(Device::cpu());
        let data: Vec<f32> = (0..5_000).map(|i| ((i * 37) % 1000) as f32).collect();
        let b = Buffer::from_slice(&data);
        let m = reduce_f32(&q, &b, f32::NEG_INFINITY, f32::max);
        assert_eq!(m, 999.0);
    }

    #[test]
    fn sum_of_squares() {
        let q = Queue::new(Device::cpu());
        let b = Buffer::from_slice(&[1.0f32, 2.0, 3.0]);
        assert!((sum_sq_f32(&q, &b) - 14.0).abs() < 1e-6);
    }

    #[test]
    fn repeated_reductions_reuse_scratch() {
        let q = Queue::new(Device::cpu());
        let b = Buffer::from_slice(&vec![2.0f32; 4096]);
        let before = q.slab_stats();
        for _ in 0..10 {
            assert_eq!(sum_f32(&q, &b), 8192.0);
            assert!((sum_sq_f32(&q, &b) - 16384.0).abs() < 1e-2);
        }
        let after = q.slab_stats();
        // Each iteration retires its scratch and the next picks it up:
        // only the first pass through each size class may miss.
        assert!(
            after.reuses - before.reuses >= 25,
            "reduction scratch should come from the slab: {after:?}"
        );
    }

    #[test]
    fn empty_buffer_returns_identity() {
        let q = Queue::new(Device::cpu());
        let b = Buffer::<f32>::new(0);
        assert_eq!(sum_f32(&q, &b), 0.0);
        assert_eq!(sum_sq_f32(&q, &b), 0.0);
    }
}
