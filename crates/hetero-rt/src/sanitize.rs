//! hetero-san layer 1: the dynamic data-race sanitizer.
//!
//! The whole runtime rests on one claim: work-groups are independent in
//! SYCL, so distributing them over the worker pool is
//! semantics-preserving. Nothing in the *type system* enforces that the
//! application kernels actually obey the SYCL memory model, and the CCL
//! porting literature (CRK-HACC, Reguly's portability study) reports
//! silent memory-model divergence as the dominant source of wrong-answer
//! ports. This module checks the claim at runtime.
//!
//! # What is checked
//!
//! With sanitizing enabled (`HETERO_RT_SANITIZE=1`, or
//! [`crate::queue::Queue::with_sanitizer`]), every [`crate::GlobalView`],
//! USM and [`crate::LocalArray`] element access inside a launch records
//! `(kernel, group, phase, element, read|write)` into a per-worker log.
//! Per-group logs are merged when the launch ends and analysed for:
//!
//! * **cross-group conflicts** — two different work-groups touch the same
//!   global element and at least one access is a non-atomic write
//!   ([`RaceKind::WriteWrite`] / [`RaceKind::ReadWrite`]). Work-groups
//!   may run concurrently on any device, so these are unsynchronised by
//!   construction. Atomic-vs-atomic accesses never conflict.
//! * **intra-group conflicts not separated by a barrier** — two
//!   *different work-items* of one group touch the same element within
//!   the same barrier phase, at least one a write
//!   ([`RaceKind::MissedBarrier`]). On real hardware the items of a group
//!   run concurrently between barriers; this runtime happens to serialise
//!   them, which is exactly why the bug class is silent here and loud on
//!   a GPU.
//! * **reads of never-written local elements**
//!   ([`RaceKind::UninitRead`]) — local (shared) memory is *not*
//!   guaranteed zero-initialised by SYCL; this runtime zero-fills, so an
//!   uninitialised read is another silently-masked portability bug.
//!
//! Group collectives ([`crate::group_algorithms`]) run in *uniform*
//! context — outside `ctx.items(..)` — where a single thread legitimately
//! reads every item's slot; uniform accesses therefore participate only
//! in the cross-group analysis, never the intra-group one.
//! [`crate::PrivateArray`] is per-item by construction and is not
//! tracked.
//!
//! # Determinism
//!
//! Reports are independent of worker-pool scheduling: per-element merge
//! state keeps the *minimum* two distinct group ids per access class, and
//! the final report list is sorted by (space, object, element). The first
//! report becomes the launch's typed [`crate::Error::DataRace`], surfaced
//! through the existing `try_*` APIs; the full list is retrievable with
//! [`take_last_reports`] on the submitting thread.
//!
//! # Cost when disabled
//!
//! Every accessor hook first checks one process-wide relaxed atomic
//! ([`hooks_armed`]): with no sanitized launch in flight the hook is a
//! single predictable branch, bounded <2% on the `launch_storm`
//! microbenchmark (`BENCH_sanitize_overhead.json`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Conflict classes the sanitizer reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RaceKind {
    /// Two work-groups (or a work-group and another's atomic) wrote the
    /// same element non-atomically.
    WriteWrite,
    /// One work-group read an element another work-group wrote.
    ReadWrite,
    /// Two work-items of the same group touched the same element in the
    /// same barrier phase, at least one writing.
    MissedBarrier,
    /// A local (shared) element was read before any work-item wrote it.
    UninitRead,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "write-write"),
            RaceKind::ReadWrite => write!(f, "read-write"),
            RaceKind::MissedBarrier => write!(f, "missed-barrier"),
            RaceKind::UninitRead => write!(f, "uninit-read"),
        }
    }
}

/// Which memory space a report refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemSpace {
    /// Buffer ([`crate::GlobalView`]) or USM memory, identified by the
    /// allocation's process-unique id.
    Global,
    /// A group-local shared array, identified by its per-group
    /// allocation index.
    Local,
}

/// One sanitizer finding. The launch's findings are sorted by
/// `(space, object, element, kind)`, which is stable across runs and
/// worker schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Kernel name of the launch.
    pub kernel: &'static str,
    /// Conflict class.
    pub kind: RaceKind,
    /// Memory space of the racing object.
    pub space: MemSpace,
    /// Buffer/USM allocation id, or local-array index within the group.
    pub object: u64,
    /// Element index within the object.
    pub element: usize,
    /// Smallest involved work-group id.
    pub group: usize,
    /// Second involved work-group (cross-group conflicts only).
    pub other_group: Option<usize>,
    /// Barrier phase of the conflict (intra-group findings only).
    pub phase: Option<u64>,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel '{}': {} on {} object {} element {} (group {}",
            self.kernel,
            self.kind,
            match self.space {
                MemSpace::Global => "global",
                MemSpace::Local => "local",
            },
            self.object,
            self.element,
            self.group,
        )?;
        if let Some(o) = self.other_group {
            write!(f, " vs group {o}")?;
        }
        if let Some(p) = self.phase {
            write!(f, ", phase {p}")?;
        }
        write!(f, ")")
    }
}

// ---------------------------------------------------------------------------
// Process-wide state: the fast-path gate, object ids, env default.
// ---------------------------------------------------------------------------

/// Count of sanitized launches currently in flight. The accessor hooks
/// reduce to `load(Relaxed) != 0` when this is zero, which is the entire
/// disabled-mode cost.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Monotonic id source for buffers and USM allocations. Host-side
/// allocation order is program order, so ids are deterministic.
static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique id for a trackable allocation.
pub(crate) fn next_object_id() -> u64 {
    NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Whether any sanitized launch is in flight (the accessor fast path).
#[inline(always)]
pub(crate) fn hooks_armed() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Process-wide default from `HETERO_RT_SANITIZE=1`, read once. Queues
/// adopt it at construction; [`crate::queue::Queue::with_sanitizer`]
/// overrides per queue.
pub fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("HETERO_RT_SANITIZE").is_ok_and(|v| v == "1" || v == "true")
    })
}

// ---------------------------------------------------------------------------
// Hashing: accessor hooks sit on the per-element hot path, so the maps
// use a cheap multiply-xor hasher instead of SipHash (no external crates
// in the offline workspace).
// ---------------------------------------------------------------------------

#[derive(Default)]
struct FastHasher(u64);

impl Hasher for FastHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // splitmix64-style mix; plenty for small integer keys.
        let mut x = self.0 ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        self.0 = x ^ (x >> 27);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

// ---------------------------------------------------------------------------
// Per-group recorder (thread-local while a group executes).
// ---------------------------------------------------------------------------

/// Access class of one recorded element touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store.
    Write,
    /// Atomic read-modify-write (never conflicts with other atomics).
    Atomic,
}

const BIT_READ: u8 = 1;
const BIT_WRITE: u8 = 2;
const BIT_ATOMIC: u8 = 4;

/// Intra-phase state of one element: the first writing / reading item.
#[derive(Default)]
struct PhaseState {
    writer_item: Option<usize>,
    reader_item: Option<usize>,
    reported: bool,
}

pub(crate) struct GroupRecorder {
    kernel: &'static str,
    group: usize,
    phase: u64,
    current_item: Option<usize>,
    /// Per-element access-class bits for the cross-group merge, keyed by
    /// (allocation id, element). Global/USM space only.
    global: FastMap<(u64, usize), u8>,
    /// Per-element intra-phase conflict state, keyed by
    /// (space, object, element); cleared at every barrier.
    phase_state: FastMap<(MemSpace, u64, usize), PhaseState>,
    /// Local elements written at least once this group (uninit-read
    /// tracking); local arrays are per-group, so this never merges.
    local_written: FastMap<(u64, usize), ()>,
    /// Local-array findings (missed barrier, uninit read) and
    /// global-space missed-barrier findings, complete at group end.
    reports: Vec<RaceReport>,
    /// Ids handed to this group's local arrays, in allocation order.
    next_local_id: u64,
}

impl GroupRecorder {
    fn new(kernel: &'static str, group: usize) -> Self {
        GroupRecorder {
            kernel,
            group,
            phase: 0,
            current_item: None,
            global: FastMap::default(),
            phase_state: FastMap::default(),
            local_written: FastMap::default(),
            reports: Vec::new(),
            next_local_id: 0,
        }
    }

    /// Intra-group same-phase conflict detection, shared by all spaces.
    fn check_phase(&mut self, space: MemSpace, object: u64, element: usize, kind: AccessKind) {
        // Uniform-context accesses (collectives, leader-only code outside
        // `items()`) are inherently single-threaded per group.
        let Some(item) = self.current_item else { return };
        if kind == AccessKind::Atomic {
            return;
        }
        let st = self.phase_state.entry((space, object, element)).or_default();
        let conflict = !st.reported
            && match kind {
                AccessKind::Write => {
                    st.writer_item.is_some_and(|w| w != item)
                        || st.reader_item.is_some_and(|r| r != item)
                }
                AccessKind::Read => st.writer_item.is_some_and(|w| w != item),
                AccessKind::Atomic => false,
            };
        if conflict {
            st.reported = true;
        }
        match kind {
            AccessKind::Write => {
                st.writer_item = Some(st.writer_item.map_or(item, |w| w.min(item)));
            }
            AccessKind::Read => {
                st.reader_item = Some(st.reader_item.map_or(item, |r| r.min(item)));
            }
            AccessKind::Atomic => {}
        }
        if conflict {
            self.reports.push(RaceReport {
                kernel: self.kernel,
                kind: RaceKind::MissedBarrier,
                space,
                object,
                element,
                group: self.group,
                other_group: None,
                phase: Some(self.phase),
            });
        }
    }

    fn record_global(&mut self, object: u64, element: usize, kind: AccessKind) {
        let bits = self.global.entry((object, element)).or_insert(0);
        *bits |= match kind {
            AccessKind::Read => BIT_READ,
            AccessKind::Write => BIT_WRITE,
            AccessKind::Atomic => BIT_ATOMIC,
        };
        self.check_phase(MemSpace::Global, object, element, kind);
    }

    fn record_local(&mut self, object: u64, element: usize, kind: AccessKind) {
        match kind {
            AccessKind::Write | AccessKind::Atomic => {
                self.local_written.insert((object, element), ());
            }
            AccessKind::Read => {
                // Report each uninitialised element once per group.
                if self.local_written.insert((object, element), ()).is_none() {
                    self.reports.push(RaceReport {
                        kernel: self.kernel,
                        kind: RaceKind::UninitRead,
                        space: MemSpace::Local,
                        object,
                        element,
                        group: self.group,
                        other_group: None,
                        phase: Some(self.phase),
                    });
                }
            }
        }
        self.check_phase(MemSpace::Local, object, element, kind);
    }

    fn barrier(&mut self) {
        self.phase += 1;
        self.phase_state.clear();
    }
}

thread_local! {
    static RECORDER: RefCell<Option<GroupRecorder>> = const { RefCell::new(None) };
}

// ---------------------------------------------------------------------------
// Hook entry points (called from buffer/local/usm/ndrange).
// ---------------------------------------------------------------------------

/// Record a global-space (buffer/USM) element access. No-op unless a
/// sanitized launch is in flight *and* this thread is executing one of
/// its groups.
#[inline(always)]
pub(crate) fn record_global(object: u64, element: usize, kind: AccessKind) {
    if !hooks_armed() {
        return;
    }
    record_global_cold(object, element, kind);
}

#[cold]
fn record_global_cold(object: u64, element: usize, kind: AccessKind) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.record_global(object, element, kind);
        }
    });
}

/// Record a local-array element access (see [`record_global`]).
#[inline(always)]
pub(crate) fn record_local(object: u64, element: usize, kind: AccessKind) {
    if !hooks_armed() {
        return;
    }
    record_local_cold(object, element, kind);
}

#[cold]
fn record_local_cold(object: u64, element: usize, kind: AccessKind) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.record_local(object, element, kind);
        }
    });
}

/// Advance the recorder's barrier phase (called by
/// [`crate::GroupCtx::barrier`]).
#[inline(always)]
pub(crate) fn phase_bump() {
    if !hooks_armed() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.barrier();
        }
    });
}

/// Mark the work-item the current thread is executing (or `None` when
/// leaving per-item context). Called by [`crate::GroupCtx::items`].
#[inline(always)]
pub(crate) fn set_current_item(item: Option<usize>) {
    if !hooks_armed() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.current_item = item;
        }
    });
}

/// Hand out the next local-array id for the recording group, if any.
/// Local ids count up from zero per group in allocation order, which is
/// deterministic because a group runs on one thread.
#[inline(always)]
pub(crate) fn next_local_array_id() -> Option<u64> {
    if !hooks_armed() {
        return None;
    }
    RECORDER.with(|r| {
        r.borrow_mut().as_mut().map(|rec| {
            let id = rec.next_local_id;
            rec.next_local_id += 1;
            id
        })
    })
}

// ---------------------------------------------------------------------------
// Launch session: created by the executor per sanitized launch.
// ---------------------------------------------------------------------------

/// Minimum two *distinct* group ids that performed some access class on
/// an element. Min-based, so merging is independent of group completion
/// order — the backbone of report determinism under pooled execution.
#[derive(Debug, Clone, Copy, Default)]
struct MinTwo {
    a: Option<usize>,
    b: Option<usize>,
}

impl MinTwo {
    fn add(&mut self, g: usize) {
        match (self.a, self.b) {
            (None, _) => self.a = Some(g),
            (Some(a), _) if g == a => {}
            (Some(a), None) => {
                if g < a {
                    self.b = Some(a);
                    self.a = Some(g);
                } else {
                    self.b = Some(g);
                }
            }
            (Some(a), Some(b)) if g == b => {
                debug_assert!(a < b);
            }
            (Some(a), Some(b)) => {
                if g < a {
                    self.b = Some(a);
                    self.a = Some(g);
                } else if g < b {
                    self.b = Some(g);
                }
            }
        }
    }

    fn min(&self) -> Option<usize> {
        self.a
    }

    /// The two smallest distinct members, if at least two exist.
    fn two(&self) -> Option<(usize, usize)> {
        Some((self.a?, self.b?))
    }

    /// Smallest member different from `x`.
    fn distinct_from(&self, x: usize) -> Option<usize> {
        match self.a {
            Some(a) if a != x => Some(a),
            Some(_) => self.b,
            None => None,
        }
    }
}

#[derive(Default)]
struct ElemGroups {
    writers: MinTwo,
    readers: MinTwo,
    atomics: MinTwo,
}

/// Shadow-state accumulator for one sanitized launch. The executor
/// creates one per launch, each finished group merges its recorder into
/// it, and [`LaunchSession::finish`] runs the cross-group analysis.
pub(crate) struct LaunchSession {
    kernel: &'static str,
    merged: Mutex<Merged>,
}

#[derive(Default)]
struct Merged {
    global: FastMap<(u64, usize), ElemGroups>,
    reports: Vec<RaceReport>,
}

impl LaunchSession {
    /// Begin a session, arming the process-wide accessor hooks.
    pub(crate) fn begin(kernel: &'static str) -> Self {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        LaunchSession { kernel, merged: Mutex::new(Merged::default()) }
    }

    /// Install a fresh recorder for group `group` on the current thread,
    /// returning whatever recorder an enclosing launch had installed
    /// (nested launches restore it afterwards).
    pub(crate) fn install_recorder(&self, group: usize) -> Option<GroupRecorder> {
        RECORDER.with(|r| r.borrow_mut().replace(GroupRecorder::new(self.kernel, group)))
    }

    /// Remove the current thread's recorder, merge its findings, and
    /// restore `prev` (the enclosing launch's recorder, if any).
    /// `completed` is false when the group panicked — its partial log is
    /// discarded (the launch already fails with the panic's error).
    pub(crate) fn finish_group(&self, prev: Option<GroupRecorder>, completed: bool) {
        let rec = RECORDER.with(|r| {
            let mut slot = r.borrow_mut();
            let rec = slot.take();
            *slot = prev;
            rec
        });
        let Some(rec) = rec else { return };
        if !completed {
            return;
        }
        let mut m = self.merged.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        m.reports.extend(rec.reports);
        for ((object, element), bits) in rec.global {
            let eg = m.global.entry((object, element)).or_default();
            if bits & BIT_WRITE != 0 {
                eg.writers.add(rec.group);
            }
            if bits & BIT_READ != 0 {
                eg.readers.add(rec.group);
            }
            if bits & BIT_ATOMIC != 0 {
                eg.atomics.add(rec.group);
            }
        }
    }

    /// Run the cross-group analysis and return the launch's findings,
    /// sorted by (space, object, element, kind).
    pub(crate) fn finish(self) -> Vec<RaceReport> {
        // `Drop` (the ACTIVE decrement) prevents moving fields out, so
        // drain the merged state through the lock instead.
        let mut m = std::mem::take(
            &mut *self.merged.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for (&(object, element), eg) in m.global.iter() {
            let ww = eg.writers.two().or_else(|| {
                // A non-atomic write racing another group's atomic is
                // still a write-write conflict.
                let w = eg.writers.min()?;
                let a = eg.atomics.distinct_from(w)?;
                Some((w.min(a), w.max(a)))
            });
            if let Some((g1, g2)) = ww {
                m.reports.push(RaceReport {
                    kernel: self.kernel,
                    kind: RaceKind::WriteWrite,
                    space: MemSpace::Global,
                    object,
                    element,
                    group: g1,
                    other_group: Some(g2),
                    phase: None,
                });
                continue;
            }
            // Read-write: a reader in a different group than a (plain or
            // atomic) writer.
            let rw = eg
                .writers
                .min()
                .and_then(|w| eg.readers.distinct_from(w).map(|r| (w, r)))
                .or_else(|| {
                    let a = eg.atomics.min()?;
                    eg.readers.distinct_from(a).map(|r| (a, r))
                });
            if let Some((w, r)) = rw {
                m.reports.push(RaceReport {
                    kernel: self.kernel,
                    kind: RaceKind::ReadWrite,
                    space: MemSpace::Global,
                    object,
                    element,
                    group: w.min(r),
                    other_group: Some(w.max(r)),
                    phase: None,
                });
            }
        }
        let mut reports = m.reports;
        reports.sort_by(|x, y| {
            (x.space, x.object, x.element, x.kind).cmp(&(y.space, y.object, y.element, y.kind))
        });
        reports
    }
}

impl Drop for LaunchSession {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Last-reports mailbox (submitting-thread-local, so parallel tests with
// their own queues never observe each other's findings).
// ---------------------------------------------------------------------------

thread_local! {
    static LAST_REPORTS: RefCell<Vec<RaceReport>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn stash_reports(reports: Vec<RaceReport>) {
    LAST_REPORTS.with(|r| *r.borrow_mut() = reports);
}

/// Retrieve (and clear) the full report list of the most recent sanitized
/// launch that failed with [`crate::Error::DataRace`] on this thread.
/// Launches are synchronous, so call this right after the failing
/// `try_*` submission returns.
pub fn take_last_reports() -> Vec<RaceReport> {
    LAST_REPORTS.with(|r| std::mem::take(&mut *r.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_two_is_order_independent() {
        let orders: [&[usize]; 4] = [&[3, 1, 2], &[2, 3, 1], &[1, 2, 3], &[3, 3, 2, 1, 1]];
        for order in orders {
            let mut m = MinTwo::default();
            for &g in order {
                m.add(g);
            }
            assert_eq!(m.two(), Some((1, 2)), "order {order:?}");
            assert_eq!(m.min(), Some(1));
            assert_eq!(m.distinct_from(1), Some(2));
            assert_eq!(m.distinct_from(5), Some(1));
        }
        let mut one = MinTwo::default();
        one.add(7);
        one.add(7);
        assert_eq!(one.two(), None);
        assert_eq!(one.distinct_from(7), None);
        assert_eq!(one.distinct_from(3), Some(7));
    }

    #[test]
    fn recorder_flags_same_phase_item_conflicts_only() {
        let mut rec = GroupRecorder::new("k", 0);
        // Uniform context: no intra-group conflicts possible.
        rec.record_global(1, 5, AccessKind::Write);
        rec.record_global(1, 5, AccessKind::Write);
        assert!(rec.reports.is_empty());
        // Item 0 writes, item 1 writes the same element, same phase.
        rec.current_item = Some(0);
        rec.record_global(1, 6, AccessKind::Write);
        rec.current_item = Some(1);
        rec.record_global(1, 6, AccessKind::Write);
        assert_eq!(rec.reports.len(), 1);
        assert_eq!(rec.reports[0].kind, RaceKind::MissedBarrier);
        assert_eq!(rec.reports[0].element, 6);
        // A barrier clears the phase state: no further conflict.
        rec.barrier();
        rec.current_item = Some(2);
        rec.record_global(1, 6, AccessKind::Write);
        assert_eq!(rec.reports.len(), 1);
        // Same item re-writing is never a conflict.
        rec.record_global(1, 7, AccessKind::Write);
        rec.record_global(1, 7, AccessKind::Write);
        assert_eq!(rec.reports.len(), 1);
        // Atomics never conflict.
        rec.current_item = Some(3);
        rec.record_global(1, 8, AccessKind::Atomic);
        rec.current_item = Some(4);
        rec.record_global(1, 8, AccessKind::Atomic);
        assert_eq!(rec.reports.len(), 1);
    }

    #[test]
    fn recorder_reports_uninit_local_reads_once() {
        let mut rec = GroupRecorder::new("k", 3);
        rec.current_item = Some(0);
        rec.record_local(0, 2, AccessKind::Read);
        rec.record_local(0, 2, AccessKind::Read);
        assert_eq!(rec.reports.len(), 1);
        assert_eq!(rec.reports[0].kind, RaceKind::UninitRead);
        assert_eq!(rec.reports[0].group, 3);
        // Written-then-read elements are clean.
        rec.record_local(0, 4, AccessKind::Write);
        rec.barrier();
        rec.current_item = Some(1);
        rec.record_local(0, 4, AccessKind::Read);
        assert_eq!(rec.reports.len(), 1);
    }

    #[test]
    fn session_merges_cross_group_conflicts_deterministically() {
        // Simulate three groups touching element (obj=9, 0): groups 2 and
        // 5 write, group 7 reads. Merge order must not matter.
        let run = |order: &[usize]| {
            let session = LaunchSession::begin("k");
            for &g in order {
                let mut rec = GroupRecorder::new("k", g);
                let kind = if g == 7 { AccessKind::Read } else { AccessKind::Write };
                rec.record_global(9, 0, kind);
                let mut m = session.merged.lock().unwrap();
                for ((object, element), bits) in rec.global.drain() {
                    let eg = m.global.entry((object, element)).or_default();
                    if bits & BIT_WRITE != 0 {
                        eg.writers.add(g);
                    }
                    if bits & BIT_READ != 0 {
                        eg.readers.add(g);
                    }
                }
                drop(m);
            }
            session.finish()
        };
        let a = run(&[2, 5, 7]);
        let b = run(&[7, 5, 2]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, RaceKind::WriteWrite);
        assert_eq!((a[0].group, a[0].other_group), (2, Some(5)));
    }

    #[test]
    fn atomic_only_elements_never_conflict() {
        let session = LaunchSession::begin("k");
        for g in 0..4 {
            let mut m = session.merged.lock().unwrap();
            m.global.entry((1, 0)).or_default().atomics.add(g);
        }
        assert!(session.finish().is_empty());
    }

    #[test]
    fn race_kind_and_report_display() {
        assert_eq!(RaceKind::WriteWrite.to_string(), "write-write");
        assert_eq!(RaceKind::UninitRead.to_string(), "uninit-read");
        let r = RaceReport {
            kernel: "k",
            kind: RaceKind::ReadWrite,
            space: MemSpace::Global,
            object: 4,
            element: 17,
            group: 1,
            other_group: Some(3),
            phase: None,
        };
        let s = r.to_string();
        assert!(s.contains("read-write") && s.contains("17") && s.contains("group 1"), "{s}");
    }
}
