//! Streaming execution with windowed fault containment.
//!
//! The batch suite runs load → execute → validate once; the serving
//! layer's north star is a *long-lived* pipeline that ingests an
//! unbounded sequence of input windows (frames for the iterative stencil
//! apps, point batches for KMeans, observation frames for
//! ParticleFilter) and stays correct and live while individual windows
//! fail. This module provides the app-agnostic half of that mode:
//!
//! * [`StreamStage`] — the contract an application implements: advance
//!   carried state by one window on the *hardened* queue (fault
//!   injection, integrity, retries all active), re-advance it on a
//!   *clean* queue (the recovery path, bit-equal to a successful
//!   hardened advance), or advance it with infallible host math (the
//!   last-resort reference path).
//! * [`StreamRunner`] — drives windows through a stage inside a
//!   containment scope. Every window ends in exactly one typed
//!   [`WindowVerdict`]; an injected kernel panic, transient fault or SDC
//!   detection triggers **checkpoint/rollback recovery**: the runner
//!   restores the last sealed snapshot of stream state, replays the
//!   intervening windows on the clean queue, and resumes — one poisoned
//!   window never kills or silently corrupts the stream.
//! * [`run_piped`] — a two-stage pipeline (producer thread → bounded
//!   [`Pipe`] → executing consumer) whose ingress degrades gracefully
//!   under sustained backpressure: bounded in-flight windows, with
//!   oldest-window shedding ([`WindowVerdict::Shed`]) instead of
//!   unbounded queuing.
//!
//! ## Containment invariants
//!
//! 1. A window whose hardened advance fails is **never delivered**: it
//!    ends `Retried` (transient absorbed within the attempt budget),
//!    `Quarantined` (rollback + clean replay recovered the state), or
//!    `Dropped` (recovery itself failed; host-reference continuation).
//! 2. After a `Quarantined` verdict the stream state is **bit-identical**
//!    to what an uninterrupted run would carry: rollback restores a
//!    sealed snapshot and the clean replay recomputes every window since.
//! 3. Shedding drops *delivery and hardening*, not state evolution: a
//!    shed window still advances carried state on the clean path, so
//!    later delivered windows remain bit-equal to the unshed trail.
//! 4. Cancellation ([`Error::Canceled`]) is stream-fatal by design (a
//!    deadline watchdog fired) and is surfaced as an `Err` from the
//!    runner, not as a window verdict.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crate::error::{Error, Result};
use crate::pipe::Pipe;

/// The typed outcome of one stream window. Exactly one verdict is
/// produced per ingested window; anything other than `Delivered` means
/// the window's hardened execution did not complete cleanly on the
/// first attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowVerdict {
    /// The hardened advance succeeded on the first attempt; the window's
    /// output is live and bit-equal to the uninterrupted trail.
    Delivered,
    /// A transient launch failure was absorbed by re-running the whole
    /// window; `attempts` counts every try including the successful one.
    Retried {
        /// Total advance attempts, including the one that succeeded.
        attempts: u32,
    },
    /// The window's hardened execution failed (kernel panic, detected
    /// corruption, exhausted retry budget); the runner rolled back to
    /// the last sealed checkpoint and recovered the stream on the clean
    /// path. The window's output was not delivered; the stream is live
    /// and uncorrupted.
    Quarantined {
        /// Human-readable failure that triggered the quarantine.
        reason: String,
    },
    /// Recovery itself failed; the stream continued on the host
    /// reference path. Gates treat any `Dropped` window as a failure of
    /// the recovery machinery.
    Dropped {
        /// Original failure plus the recovery error.
        reason: String,
    },
    /// The window was evicted from the bounded ingress pipe under
    /// backpressure before its hardened execution began. State still
    /// advanced on the clean path (invariant 3).
    Shed,
}

impl WindowVerdict {
    /// Stable lowercase label for wire formats and log lines.
    pub fn label(&self) -> &'static str {
        match self {
            WindowVerdict::Delivered => "delivered",
            WindowVerdict::Retried { .. } => "retried",
            WindowVerdict::Quarantined { .. } => "quarantined",
            WindowVerdict::Dropped { .. } => "dropped",
            WindowVerdict::Shed => "shed",
        }
    }

    /// Whether the window's output reached the consumer bit-clean.
    pub fn is_delivered(&self) -> bool {
        matches!(self, WindowVerdict::Delivered)
    }
}

/// Per-window report emitted by the runner.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Zero-based window index in the stream.
    pub index: u64,
    /// The window's typed outcome.
    pub verdict: WindowVerdict,
    /// Digest of the carried stream state *after* this window.
    pub digest: u64,
    /// Wall time spent executing (or shedding) this window.
    pub micros: u64,
    /// Whether checkpoint rollback ran while handling this window.
    pub rolled_back: bool,
}

/// Runner policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Seal a snapshot of stream state every this many windows (the
    /// rollback granularity). Must be ≥ 1.
    pub checkpoint_every: u64,
    /// Whole-window re-execution budget for transient launch failures
    /// (on top of any per-launch retry policy the stage's queue has).
    pub max_retries: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { checkpoint_every: 8, max_retries: 3 }
    }
}

/// Aggregate stream counters; one per runner.
#[derive(Clone, Debug, Default)]
pub struct StreamStats {
    /// Windows that received a verdict.
    pub windows: u64,
    /// `Delivered` verdicts.
    pub delivered: u64,
    /// `Retried` verdicts.
    pub retried: u64,
    /// `Quarantined` verdicts.
    pub quarantined: u64,
    /// `Dropped` verdicts.
    pub dropped: u64,
    /// `Shed` verdicts.
    pub shed: u64,
    /// Snapshots sealed.
    pub checkpoints: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Windows re-executed on the clean path during rollbacks.
    pub replayed: u64,
    /// Total wall time spent inside rollback recovery.
    pub rollback_nanos: u128,
}

impl StreamStats {
    /// Windows whose hardened first attempt did not complete cleanly.
    pub fn non_delivered(&self) -> u64 {
        self.retried + self.quarantined + self.dropped + self.shed
    }
}

/// The application half of a stream: one window's worth of computation
/// over carried state, in three flavours that must agree bit-for-bit on
/// success.
///
/// The runner relies on two contracts:
///
/// * **State-on-success:** `advance` mutates `state` only after the
///   window's device work succeeded; a failed or panicked advance leaves
///   `state` exactly as it found it (device buffers may hold partial
///   writes — the next attempt or the recovery replay rewrites them from
///   host state before launching).
/// * **Recover ≡ advance:** `recover` performs the same computation as a
///   successful `advance` but on a clean (fault-free, unhardened) queue;
///   its result is bit-identical.
pub trait StreamStage {
    /// Carried stream state: the iterative app's carry buffers, RNG
    /// state, accumulators. Cloned at checkpoint seal time.
    type State: Clone + Send + 'static;

    /// Advance `state` by window `window` on the hardened primary queue.
    fn advance(&mut self, state: &mut Self::State, window: u64) -> Result<()>;

    /// Advance `state` by window `window` on the clean recovery queue.
    fn recover(&mut self, state: &mut Self::State, window: u64) -> Result<()>;

    /// Advance `state` by window `window` with infallible host math (the
    /// app's golden loop body). Last-resort continuation only.
    fn reference(&self, state: &mut Self::State, window: u64);

    /// Order-independent digest of the carried state (used for seals and
    /// per-window delivery checks).
    fn digest(&self, state: &Self::State) -> u64;
}

struct Checkpoint<S> {
    /// First window index *not* captured by this snapshot.
    next: u64,
    state: S,
    /// Digest sealed at snapshot time; verified before every rollback.
    seal: u64,
}

/// Drives an unbounded sequence of windows through a [`StreamStage`]
/// inside a containment scope. See the module docs for the verdict
/// taxonomy and invariants.
pub struct StreamRunner<S: StreamStage> {
    stage: S,
    state: S::State,
    cfg: StreamConfig,
    checkpoint: Checkpoint<S::State>,
    stats: StreamStats,
    next: u64,
}

impl<S: StreamStage> StreamRunner<S> {
    /// Build a runner over `stage` starting from `initial` state; the
    /// initial state is sealed as checkpoint zero.
    pub fn new(stage: S, initial: S::State, cfg: StreamConfig) -> Self {
        let cfg = StreamConfig { checkpoint_every: cfg.checkpoint_every.max(1), ..cfg };
        let seal = stage.digest(&initial);
        let stats = StreamStats { checkpoints: 1, ..StreamStats::default() };
        StreamRunner {
            checkpoint: Checkpoint { next: 0, state: initial.clone(), seal },
            stage,
            state: initial,
            cfg,
            stats,
            next: 0,
        }
    }

    /// Index of the next window this runner will execute.
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Digest of the current carried state.
    pub fn digest(&self) -> u64 {
        self.stage.digest(&self.state)
    }

    /// Borrow the carried state (tests and final-result extraction).
    pub fn state(&self) -> &S::State {
        &self.state
    }

    /// Consume the runner, yielding the carried state.
    pub fn into_state(self) -> S::State {
        self.state
    }

    /// Execute the next window under containment. Returns `Err` only for
    /// stream-fatal conditions (cancellation); every per-window failure
    /// is converted into a typed verdict.
    pub fn next_window(&mut self) -> Result<WindowReport> {
        let w = self.next;
        let t0 = Instant::now();
        let mut rolled_back = false;
        let verdict = self.execute_contained(w, &mut rolled_back)?;
        self.finish_window(w, verdict, t0, rolled_back)
    }

    /// Shed the next window: skip hardened execution and delivery, but
    /// advance carried state on the clean path (invariant 3).
    pub fn shed_window(&mut self) -> Result<WindowReport> {
        let w = self.next;
        let t0 = Instant::now();
        let mut rolled_back = false;
        let run = catch_unwind(AssertUnwindSafe(|| self.stage.recover(&mut self.state, w)));
        let verdict = match flatten_unwind(run) {
            Ok(()) => WindowVerdict::Shed,
            Err(e) if matches!(e, Error::Canceled { .. }) => return Err(e),
            Err(e) => self.quarantine(w, format!("shed recover failed: {e}"), &mut rolled_back)?,
        };
        self.finish_window(w, verdict, t0, rolled_back)
    }

    fn finish_window(
        &mut self,
        w: u64,
        verdict: WindowVerdict,
        t0: Instant,
        rolled_back: bool,
    ) -> Result<WindowReport> {
        self.next = w + 1;
        self.stats.windows += 1;
        match &verdict {
            WindowVerdict::Delivered => self.stats.delivered += 1,
            WindowVerdict::Retried { .. } => self.stats.retried += 1,
            WindowVerdict::Quarantined { .. } => self.stats.quarantined += 1,
            WindowVerdict::Dropped { .. } => self.stats.dropped += 1,
            WindowVerdict::Shed => self.stats.shed += 1,
        }
        if self.next.is_multiple_of(self.cfg.checkpoint_every) {
            self.checkpoint = Checkpoint {
                next: self.next,
                state: self.state.clone(),
                seal: self.stage.digest(&self.state),
            };
            self.stats.checkpoints += 1;
        }
        Ok(WindowReport {
            index: w,
            verdict,
            digest: self.stage.digest(&self.state),
            micros: t0.elapsed().as_micros() as u64,
            rolled_back,
        })
    }

    fn execute_contained(&mut self, w: u64, rolled_back: &mut bool) -> Result<WindowVerdict> {
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            let run = catch_unwind(AssertUnwindSafe(|| self.stage.advance(&mut self.state, w)));
            match flatten_unwind(run) {
                Ok(()) => {
                    return Ok(if attempts == 1 {
                        WindowVerdict::Delivered
                    } else {
                        WindowVerdict::Retried { attempts }
                    });
                }
                Err(Error::TransientLaunchFailure { .. }) if attempts <= self.cfg.max_retries => {
                    // State-on-success contract: a failed advance left
                    // host state untouched, so re-running the whole
                    // window is safe.
                    continue;
                }
                Err(e) if matches!(e, Error::Canceled { .. }) => return Err(e),
                Err(e) => return self.quarantine(w, e.to_string(), rolled_back),
            }
        }
    }

    /// Roll back to the last sealed checkpoint and recover windows
    /// `checkpoint.next ..= w` on the clean path. On success the stream
    /// state is bit-identical to an uninterrupted run through `w`.
    fn quarantine(
        &mut self,
        w: u64,
        reason: String,
        rolled_back: &mut bool,
    ) -> Result<WindowVerdict> {
        *rolled_back = true;
        self.stats.rollbacks += 1;
        let t0 = Instant::now();
        let recovered = self.roll_back_and_replay(w);
        self.stats.rollback_nanos += t0.elapsed().as_nanos();
        match recovered {
            Ok(()) => Ok(WindowVerdict::Quarantined { reason }),
            Err(e) if matches!(e, Error::Canceled { .. }) => Err(e),
            Err(e) => {
                // Last resort: continue on the host reference path from
                // the snapshot so the stream survives, and say so.
                let mut st = self.checkpoint.state.clone();
                for k in self.checkpoint.next..=w {
                    self.stage.reference(&mut st, k);
                }
                self.state = st;
                Ok(WindowVerdict::Dropped { reason: format!("{reason}; recovery failed: {e}") })
            }
        }
    }

    fn roll_back_and_replay(&mut self, w: u64) -> Result<()> {
        let mut st = self.checkpoint.state.clone();
        if self.stage.digest(&st) != self.checkpoint.seal {
            // The snapshot itself no longer matches its seal — refuse to
            // resume from silently corrupted recovery state.
            return Err(Error::DataCorruption {
                region: u64::MAX,
                page: 0,
                epoch: self.checkpoint.next,
            });
        }
        for k in self.checkpoint.next..=w {
            let run = catch_unwind(AssertUnwindSafe(|| self.stage.recover(&mut st, k)));
            flatten_unwind(run)?;
            self.stats.replayed += 1;
        }
        self.state = st;
        Ok(())
    }

    /// Sequential convenience driver: execute `total` windows, passing
    /// each report to `on_report`. Stops early only on a stream-fatal
    /// error (cancellation).
    pub fn run(
        &mut self,
        total: u64,
        mut on_report: impl FnMut(WindowReport),
    ) -> Result<StreamStats> {
        for _ in 0..total {
            on_report(self.next_window()?);
        }
        Ok(self.stats.clone())
    }
}

fn flatten_unwind(r: std::thread::Result<Result<()>>) -> Result<()> {
    match r {
        Ok(inner) => inner,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(Error::KernelPanicked { kernel: "stream_stage", group: 0, message: msg })
        }
    }
}

/// Ingress policy for [`run_piped`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ingress {
    /// The producer blocks when the pipe is full: backpressure stalls
    /// ingestion and every window is executed (no `Shed` verdicts).
    Lossless,
    /// The producer never blocks: a full pipe evicts the oldest
    /// in-flight window, which the consumer accounts for with a typed
    /// `Shed` verdict. Memory stays bounded by the pipe capacity.
    Shed,
}

/// Two-stage streaming pipeline: a producer thread feeds window indices
/// through a bounded [`Pipe`] to the executing consumer (this thread).
///
/// Under [`Ingress::Shed`], eviction happens *in the pipe* — the
/// consumer observes an index gap and issues `Shed` verdicts for the
/// evicted windows (state still advances; invariant 3). The pipe is the
/// only buffering between the stages, so in-flight windows are bounded
/// by `capacity` regardless of how far the producer runs ahead.
pub fn run_piped<S: StreamStage>(
    runner: &mut StreamRunner<S>,
    total: u64,
    capacity: usize,
    ingress: Ingress,
    mut on_report: impl FnMut(WindowReport),
) -> Result<StreamStats> {
    let first = runner.position();
    let (tx, rx) = Pipe::<u64>::channel(capacity);
    std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            for w in first..first + total {
                let closed = match ingress {
                    Ingress::Lossless => tx.write(w).is_err(),
                    Ingress::Shed => {
                        // Yield so a same-width consumer is not starved
                        // of the lock by a spinning producer.
                        std::thread::yield_now();
                        tx.force_write(w).is_err()
                    }
                };
                if closed {
                    break; // consumer went away (fatal error path)
                }
            }
        });
        let mut result = Ok(());
        loop {
            match rx.read() {
                Ok(idx) => {
                    // Evicted windows show up as a gap before `idx`.
                    while runner.position() < idx {
                        match runner.shed_window() {
                            Ok(rep) => on_report(rep),
                            Err(e) => {
                                result = Err(e);
                                break;
                            }
                        }
                    }
                    if result.is_err() {
                        break;
                    }
                    match runner.next_window() {
                        Ok(rep) => on_report(rep),
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                Err(Error::PipeClosed) => break, // producer finished
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        drop(rx); // wake a blocked producer with PipeClosed
        let _ = producer.join();
        result
    })?;
    Ok(runner.stats().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Host-only counter stage: state is a running sum; window w adds
    /// `w + 1`. Fault hooks let tests fail specific windows.
    struct CounterStage {
        fail_on: Vec<u64>,
        panic_on: Vec<u64>,
        transient_on: Vec<u64>,
        transient_seen: Arc<AtomicU64>,
    }

    impl CounterStage {
        fn clean() -> Self {
            CounterStage {
                fail_on: vec![],
                panic_on: vec![],
                transient_on: vec![],
                transient_seen: Arc::new(AtomicU64::new(0)),
            }
        }
    }

    impl StreamStage for CounterStage {
        type State = u64;

        fn advance(&mut self, state: &mut u64, window: u64) -> Result<()> {
            if self.panic_on.contains(&window) {
                panic!("injected stage panic at window {window}");
            }
            if self.fail_on.contains(&window) {
                return Err(Error::KernelPanicked {
                    kernel: "counter",
                    group: 0,
                    message: format!("injected at {window}"),
                });
            }
            if self.transient_on.contains(&window)
                && self.transient_seen.fetch_add(1, Ordering::SeqCst) == 0
            {
                return Err(Error::TransientLaunchFailure { kernel: "counter", attempts: 1 });
            }
            *state += window + 1;
            Ok(())
        }

        fn recover(&mut self, state: &mut u64, window: u64) -> Result<()> {
            *state += window + 1;
            Ok(())
        }

        fn reference(&self, state: &mut u64, window: u64) {
            *state += window + 1;
        }

        fn digest(&self, state: &u64) -> u64 {
            state.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
        }
    }

    fn uninterrupted_sum(total: u64) -> u64 {
        (1..=total).sum()
    }

    #[test]
    fn clean_stream_delivers_every_window() {
        let mut r = StreamRunner::new(CounterStage::clean(), 0, StreamConfig::default());
        let stats = r.run(20, |rep| assert!(rep.verdict.is_delivered())).unwrap();
        assert_eq!(stats.delivered, 20);
        assert_eq!(stats.non_delivered(), 0);
        assert_eq!(*r.state(), uninterrupted_sum(20));
    }

    #[test]
    fn failed_window_is_quarantined_and_state_matches_uninterrupted_run() {
        let mut stage = CounterStage::clean();
        stage.fail_on = vec![11];
        let mut r = StreamRunner::new(stage, 0, StreamConfig::default());
        let mut verdicts = vec![];
        r.run(20, |rep| verdicts.push((rep.index, rep.verdict, rep.rolled_back))).unwrap();
        let (idx, v, rb) = &verdicts[11];
        assert_eq!(*idx, 11);
        assert!(matches!(v, WindowVerdict::Quarantined { .. }), "{v:?}");
        assert!(rb, "quarantine implies rollback");
        // Invariant 2: quarantined window still advanced state exactly.
        assert_eq!(*r.state(), uninterrupted_sum(20));
        assert_eq!(r.stats().rollbacks, 1);
        assert!(r.stats().replayed >= 1);
    }

    #[test]
    fn stage_panic_is_contained_as_quarantine() {
        let mut stage = CounterStage::clean();
        stage.panic_on = vec![3];
        let mut r = StreamRunner::new(stage, 0, StreamConfig::default());
        let mut quarantined = 0;
        r.run(8, |rep| {
            if let WindowVerdict::Quarantined { reason } = &rep.verdict {
                assert!(reason.contains("injected stage panic"), "{reason}");
                quarantined += 1;
            }
        })
        .unwrap();
        assert_eq!(quarantined, 1);
        assert_eq!(*r.state(), uninterrupted_sum(8));
    }

    #[test]
    fn transient_is_absorbed_as_retried() {
        let mut stage = CounterStage::clean();
        stage.transient_on = vec![5];
        let mut r = StreamRunner::new(stage, 0, StreamConfig::default());
        let mut retried = 0;
        r.run(10, |rep| {
            if let WindowVerdict::Retried { attempts } = rep.verdict {
                assert_eq!(rep.index, 5);
                assert_eq!(attempts, 2);
                retried += 1;
            }
        })
        .unwrap();
        assert_eq!(retried, 1);
        assert_eq!(r.stats().rollbacks, 0, "retry does not roll back");
        assert_eq!(*r.state(), uninterrupted_sum(10));
    }

    #[test]
    fn checkpoints_seal_on_schedule() {
        let mut r = StreamRunner::new(
            CounterStage::clean(),
            0,
            StreamConfig { checkpoint_every: 4, max_retries: 0 },
        );
        r.run(12, |_| {}).unwrap();
        // Initial seal + one every 4 windows.
        assert_eq!(r.stats().checkpoints, 1 + 3);
    }

    #[test]
    fn shed_window_advances_state_without_delivery() {
        let mut r = StreamRunner::new(CounterStage::clean(), 0, StreamConfig::default());
        let rep = r.shed_window().unwrap();
        assert_eq!(rep.verdict, WindowVerdict::Shed);
        let rep = r.next_window().unwrap();
        assert!(rep.verdict.is_delivered());
        // Invariant 3: the shed window still advanced the sum.
        assert_eq!(*r.state(), uninterrupted_sum(2));
    }

    #[test]
    fn piped_lossless_executes_every_window_in_order() {
        let mut r = StreamRunner::new(CounterStage::clean(), 0, StreamConfig::default());
        let mut seen = vec![];
        let stats = run_piped(&mut r, 50, 4, Ingress::Lossless, |rep| seen.push(rep.index)).unwrap();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
        assert_eq!(stats.delivered, 50);
        assert_eq!(stats.shed, 0);
        assert_eq!(*r.state(), uninterrupted_sum(50));
    }

    #[test]
    fn piped_shed_ingress_bounds_in_flight_and_accounts_every_window() {
        let mut r = StreamRunner::new(CounterStage::clean(), 0, StreamConfig::default());
        let total = 200;
        let mut reports = vec![];
        let stats =
            run_piped(&mut r, total, 2, Ingress::Shed, |rep| reports.push(rep)).unwrap();
        // Every window gets exactly one verdict, in index order...
        assert_eq!(reports.len() as u64, stats.windows);
        for (i, rep) in reports.iter().enumerate() {
            assert_eq!(rep.index, i as u64);
        }
        assert_eq!(stats.windows, total);
        assert_eq!(stats.delivered + stats.shed, total);
        // ...and state is bit-identical to the uninterrupted run even if
        // windows were shed (invariant 3).
        assert_eq!(*r.state(), uninterrupted_sum(total));
    }

    #[test]
    fn faulted_piped_stream_survives_and_stays_exact() {
        let mut stage = CounterStage::clean();
        stage.fail_on = vec![7, 8, 23];
        let mut r = StreamRunner::new(stage, 0, StreamConfig::default());
        let stats = run_piped(&mut r, 40, 4, Ingress::Lossless, |_| {}).unwrap();
        assert_eq!(stats.quarantined, 3);
        assert_eq!(stats.dropped, 0);
        assert_eq!(*r.state(), uninterrupted_sum(40));
    }
}
