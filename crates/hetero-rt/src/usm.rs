//! USM-style allocations.
//!
//! Altis uses CUDA unified memory throughout; DPCT migrates it to SYCL
//! USM (`malloc_host` / `malloc_shared` / `malloc_device`). The paper's
//! FPGA boards do not support USM — allocation calls return null — which
//! forced the authors to strip USM from the FPGA builds. We reproduce
//! that behavioural split: allocation against an FPGA device fails with
//! [`Error::UsmUnsupported`], and application code falls back to buffers.
//!
//! The paper also mentions `mem_advise` warnings: the advice constants
//! are device-dependent, so we expose an advice enum and record advices
//! per allocation (tests assert the FPGA path never issues any).

use std::sync::Arc;

use crate::device::Device;
use crate::error::{Error, Result};
use crate::fault::FaultPlan;
use crate::integrity;
use crate::sanitize::{self, AccessKind};

/// USM allocation kind, mirroring `sycl::usm::alloc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsmKind {
    /// Host-resident, device-visible (`malloc_host`).
    Host,
    /// Migrating shared allocation (`malloc_shared`).
    Shared,
    /// Device-resident (`malloc_device`).
    Device,
}

/// Memory-usage advice (`queue::mem_advise`). The concrete meaning is
/// device-dependent, which is exactly why DPCT flags every call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAdvice {
    /// Data will mostly be read by the device.
    ReadMostly,
    /// Data should preferentially live on the device.
    PreferredLocationDevice,
    /// Data should preferentially live on the host.
    PreferredLocationHost,
}

/// A USM allocation: a host vector plus the metadata SYCL would track.
#[derive(Debug)]
pub struct UsmAlloc<T> {
    data: Vec<T>,
    kind: UsmKind,
    advices: Vec<MemAdvice>,
    // Process-unique id in the same namespace as buffer ids, so the race
    // sanitizer tracks USM elements with the same shadow machinery.
    id: u64,
    // How many times this allocation has been through the recycling slab
    // (0 for a fresh allocation); identity (id, region) is always fresh.
    generation: u64,
    // Checksummed integrity region; `None` while the layer is disarmed.
    region: Option<Arc<integrity::Region>>,
}

impl<T> Drop for UsmAlloc<T> {
    fn drop(&mut self) {
        if let Some(region) = self.region.take() {
            integrity::unregister(&region);
        }
    }
}

impl<T: Copy + Default + 'static> UsmAlloc<T> {
    /// Allocate `len` elements of USM memory of `kind` on `device`.
    /// Fails on devices without USM support (the paper's FPGAs).
    pub fn new(device: &Device, kind: UsmKind, len: usize) -> Result<Self> {
        Self::new_with_fault(device, kind, len, None)
    }

    /// [`UsmAlloc::new`] under an optional fault plan: a capable device
    /// may still return null deterministically ([`Error::UsmAllocFailed`]),
    /// the transient flavour of the paper's FPGA `malloc_host` failures.
    pub fn new_with_fault(
        device: &Device,
        kind: UsmKind,
        len: usize,
        plan: Option<&FaultPlan>,
    ) -> Result<Self> {
        if !device.caps().supports_usm {
            return Err(Error::UsmUnsupported { device: device.name().to_string() });
        }
        if plan.is_some_and(FaultPlan::should_fail_alloc) {
            return Err(Error::UsmAllocFailed {
                device: device.name().to_string(),
                bytes: len * std::mem::size_of::<T>(),
            });
        }
        Ok(Self::build_gen(vec![T::default(); len], kind, 0))
    }

    /// Construct over an existing host vector with an explicit recycling
    /// generation. Identity is always fresh (new sanitizer id, newly
    /// registered integrity region), so reuse never leaks the previous
    /// tenant's shadow state or page seals.
    pub(crate) fn build_gen(data: Vec<T>, kind: UsmKind, generation: u64) -> Self {
        let id = sanitize::next_object_id();
        let region = integrity::register(
            id,
            "usm",
            data.as_ptr() as *const u8,
            std::mem::size_of_val::<[T]>(&data),
            integrity::bit_safe::<T>(),
        );
        UsmAlloc { data, kind, advices: Vec::new(), id, generation, region }
    }

    /// Reclaim the underlying vector for recycling. USM allocations are
    /// uniquely owned, so unlike [`crate::Buffer::into_raw_parts`] this
    /// cannot be refused. Unregisters the integrity region (via the drop
    /// path) before handing the bytes back.
    pub(crate) fn into_raw_parts(mut self) -> (Vec<T>, u64) {
        let data = std::mem::take(&mut self.data);
        let generation = self.generation;
        // `self` drops here, unregistering the integrity region.
        (data, generation)
    }

    /// The allocation's process-unique object id (shared between the
    /// race sanitizer and the integrity layer's region ids).
    pub fn object_id(&self) -> u64 {
        self.id
    }

    /// How many times this allocation has been through the recycling
    /// slab ([`crate::Queue::recycled_usm`]); 0 for a fresh allocation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the allocation holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Load element `i`. Out-of-bounds raises the same typed
    /// [`Error::AccessOutOfBounds`] panic payload as
    /// [`crate::GlobalView::get`], which kernel containment converts into
    /// an error return from the launch.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.try_get(i).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible load: `Err(Error::AccessOutOfBounds)` instead of a panic
    /// — the same `try_*` parity [`crate::GlobalView`] offers.
    #[inline]
    pub fn try_get(&self, i: usize) -> Result<T> {
        let Some(&v) = self.data.get(i) else {
            return Err(Error::AccessOutOfBounds {
                offset: i,
                len: 1,
                buffer_len: self.data.len(),
            });
        };
        sanitize::record_global(self.id, i, AccessKind::Read);
        Ok(v)
    }

    /// Store `v` at element `i`. Out-of-bounds behaves as in
    /// [`UsmAlloc::get`].
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        self.try_set(i, v).unwrap_or_else(|e| std::panic::panic_any(e))
    }

    /// Fallible store: `Err(Error::AccessOutOfBounds)` instead of a panic.
    #[inline]
    pub fn try_set(&mut self, i: usize, v: T) -> Result<()> {
        let len = self.data.len();
        let Some(slot) = self.data.get_mut(i) else {
            return Err(Error::AccessOutOfBounds { offset: i, len: 1, buffer_len: len });
        };
        *slot = v;
        sanitize::record_global(self.id, i, AccessKind::Write);
        if let Some(region) = &self.region {
            // Hot host-write path: drop the seal (one uncontended atomic)
            // instead of recomputing checksums per element; the next
            // launch-exit reseal restores protection.
            region.unseal_fast();
        }
        Ok(())
    }

    /// Allocation kind.
    pub fn kind(&self) -> UsmKind {
        self.kind
    }

    /// Record a `mem_advise` call.
    pub fn advise(&mut self, advice: MemAdvice) {
        self.advices.push(advice);
    }

    /// Advices recorded so far.
    pub fn advices(&self) -> &[MemAdvice] {
        &self.advices
    }

    /// Immutable data access.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable data access. Drops the integrity seal while armed (host
    /// writes are not corruption); the next launch exit reseals.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if let Some(region) = &self.region {
            region.unseal_fast();
        }
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usm_works_on_cpu_and_gpu() {
        let mut a = UsmAlloc::<f32>::new(&Device::cpu(), UsmKind::Shared, 8).unwrap();
        a.as_mut_slice()[3] = 2.5;
        assert_eq!(a.as_slice()[3], 2.5);
        assert!(UsmAlloc::<u8>::new(&Device::rtx_2080(), UsmKind::Host, 4).is_ok());
    }

    #[test]
    fn usm_fails_on_fpgas() {
        // The paper: sycl::malloc_host on Stratix 10 / Agilex returns
        // nullptr, so Altis-SYCL strips USM for FPGA targets.
        for d in [Device::stratix10(), Device::agilex()] {
            let e = UsmAlloc::<f32>::new(&d, UsmKind::Host, 16).unwrap_err();
            assert!(matches!(e, Error::UsmUnsupported { .. }));
        }
    }

    #[test]
    fn injected_alloc_failure_is_typed_and_deterministic() {
        let plan = FaultPlan::new(11, 1.0).with_kinds(&[crate::fault::FaultKind::AllocFail]);
        let e = UsmAlloc::<f64>::new_with_fault(&Device::cpu(), UsmKind::Shared, 8, Some(&plan))
            .unwrap_err();
        assert_eq!(
            e,
            Error::UsmAllocFailed { device: Device::cpu().name().to_string(), bytes: 64 }
        );
        // Rate 0 never injects, regardless of seed.
        let quiet = FaultPlan::new(11, 0.0);
        assert!(
            UsmAlloc::<f64>::new_with_fault(&Device::cpu(), UsmKind::Shared, 8, Some(&quiet))
                .is_ok()
        );
    }

    #[test]
    fn element_accessors_roundtrip_and_check_bounds() {
        let mut a = UsmAlloc::<u32>::new(&Device::cpu(), UsmKind::Shared, 4).unwrap();
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        a.set(2, 99);
        assert_eq!(a.get(2), 99);
        assert_eq!(a.try_get(3).unwrap(), 0);
        assert!(matches!(
            a.try_get(4),
            Err(Error::AccessOutOfBounds { offset: 4, len: 1, buffer_len: 4 })
        ));
        assert!(matches!(
            a.try_set(7, 1),
            Err(Error::AccessOutOfBounds { offset: 7, len: 1, buffer_len: 4 })
        ));
        // Bounds survive as the in-bounds slice contents.
        assert_eq!(a.as_slice(), &[0, 0, 99, 0]);
    }

    #[test]
    fn oob_access_panics_with_typed_payload() {
        crate::fault::install_quiet_hook();
        let a = UsmAlloc::<u8>::new(&Device::cpu(), UsmKind::Host, 2).unwrap();
        let payload =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.get(2))).unwrap_err();
        let e = payload.downcast::<Error>().expect("typed payload");
        assert_eq!(*e, Error::AccessOutOfBounds { offset: 2, len: 1, buffer_len: 2 });
    }

    #[test]
    fn advices_are_recorded() {
        let mut a = UsmAlloc::<u32>::new(&Device::rtx_2080(), UsmKind::Shared, 1).unwrap();
        a.advise(MemAdvice::ReadMostly);
        a.advise(MemAdvice::PreferredLocationDevice);
        assert_eq!(
            a.advices(),
            &[MemAdvice::ReadMostly, MemAdvice::PreferredLocationDevice]
        );
        assert_eq!(a.kind(), UsmKind::Shared);
    }
}
