//! `HETERO_RT_THREADS` override. Isolated in its own integration-test
//! binary because the pool reads the variable exactly once, at first use,
//! for the whole process.

use hetero_rt::pool;
use hetero_rt::prelude::*;

#[test]
fn env_override_pins_the_pool_size() {
    // Must run before anything initialises the pool in this process.
    std::env::set_var("HETERO_RT_THREADS", "3");

    assert_eq!(pool::auto_threads(), 3);
    // 1 submitter + 2 workers.
    assert_eq!(pool::spawned_threads(), 2);

    // Launches still produce correct results at the pinned width.
    let q = Queue::new(Device::cpu());
    let b = Buffer::<u32>::new(10_000);
    let v = b.view();
    q.parallel_for("pinned", Range::d1(10_000), move |it| {
        v.set(it.gid(0), it.gid(0) as u32 * 2);
    });
    assert!(b.to_vec().iter().enumerate().all(|(i, &x)| x == i as u32 * 2));

    // The cached value must not change even if the env var does.
    std::env::set_var("HETERO_RT_THREADS", "7");
    assert_eq!(pool::auto_threads(), 3);
}
