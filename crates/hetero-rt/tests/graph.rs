//! Compose tests: the recorded-graph executor crossed with every
//! hardening layer. The fast replay path is only legal on a fully
//! disarmed queue; these tests pin the contract that an *armed* queue
//! (fault injection, retry, sanitizer, integrity, redundancy) degrades
//! replay to the hardened per-launch path with every check still active
//! — same typed errors, same voting, same detection — and that the fast
//! path re-engages the moment the queue is disarmed.
//!
//! Arming the integrity layer is process-global, so the tests that use
//! it serialize on one mutex and arm through an RAII guard (same
//! pattern as `tests/sdc.rs`).

use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use hetero_rt::executor::Parallelism;
use hetero_rt::integrity;
use hetero_rt::prelude::*;
use hetero_rt::{Redundancy, RetryPolicy};

fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| {
        if std::env::var_os("HETERO_RT_THREADS").is_none() {
            std::env::set_var("HETERO_RT_THREADS", "4");
        }
        Mutex::new(())
    })
    .lock()
    .unwrap_or_else(PoisonError::into_inner)
}

struct Armed;

impl Armed {
    fn new() -> Self {
        integrity::arm();
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        integrity::disarm();
        let _ = integrity::take_scrub_reports();
    }
}

fn disarmed() -> Queue {
    Queue::new(Device::cpu())
        .with_fault_plan(None)
        .with_sanitizer(false)
}

/// A two-node graph: `mid = src * 2`, then `out = mid + 1`.
fn doubling_graph(src: &Buffer<u32>, mid: &Buffer<u32>, out: &Buffer<u32>, q: &Queue) -> Graph {
    let n = src.len();
    let (sv, mv) = (src.view(), mid.view());
    let (mv2, ov) = (mid.view(), out.view());
    Graph::record(q, |g| {
        g.parallel_for("g_double", Range::d1(n), &[reads(src), writes(mid)], move |it| {
            mv.set(it.gid(0), sv.get(it.gid(0)) * 2);
        })
        .parallel_for("g_inc", Range::d1(n), &[reads(mid), writes(out)], move |it| {
            ov.set(it.gid(0), mv2.get(it.gid(0)) + 1);
        });
    })
    .unwrap()
}

/// An injected kernel panic fires through `replay` exactly as it does
/// through a live launch: same typed error, zero fast replays — and the
/// shared pool stays healthy for the disarmed fast path afterwards.
#[test]
fn fault_panic_through_replay_is_typed_and_pool_survives() {
    let _s = serial();
    let n = 256;
    let src = Buffer::from_slice(&vec![1u32; n]);
    let mid = Buffer::<u32>::new(n);
    let out = Buffer::<u32>::new(n);
    let q = disarmed();
    let g = doubling_graph(&src, &mid, &out, &q);

    let armed = disarmed().with_fault_plan(Some(Arc::new(FaultPlan::panic_at("g_inc", 0))));
    let e = g.replay(&armed).unwrap_err();
    assert!(
        matches!(e, Error::KernelPanicked { kernel: "g_inc", group: 0, .. }),
        "{e:?}"
    );
    assert_eq!(g.fast_replays(), 0, "armed queue must not take the fast path");

    // Same graph, disarmed queue: fast path, correct results, many times.
    for round in 1..=20u64 {
        g.replay(&q).unwrap();
        assert_eq!(g.fast_replays(), round);
    }
    assert!(out.to_vec().iter().all(|&v| v == 3));
}

/// Transient launch failures inside a replay are absorbed by the
/// queue's retry budget (slow path) and surface immediately without
/// one — the same contract live launches have.
#[test]
fn transient_faults_compose_with_retry_through_replay() {
    let _s = serial();
    let n = 128;
    let src = Buffer::from_slice(&(0..n as u32).collect::<Vec<_>>());
    let mid = Buffer::<u32>::new(n);
    let out = Buffer::<u32>::new(n);
    let q = disarmed();
    let g = doubling_graph(&src, &mid, &out, &q);

    // No retry budget: the first transient fault is a typed error.
    let fragile = disarmed().with_fault_plan(Some(Arc::new(FaultPlan::transient_burst(1))));
    let e = g.replay(&fragile).unwrap_err();
    assert!(matches!(e, Error::TransientLaunchFailure { attempts: 1, .. }), "{e:?}");

    // Resilient policy: a two-fault burst is absorbed and the replay
    // completes with correct results.
    let sturdy = disarmed()
        .with_fault_plan(Some(Arc::new(FaultPlan::transient_burst(2))))
        .with_retry_policy(RetryPolicy::resilient());
    g.replay(&sturdy).unwrap();
    assert!(out.to_vec().iter().enumerate().all(|(i, &v)| v == i as u32 * 2 + 1));
    assert_eq!(g.fast_replays(), 0);
}

/// The race sanitizer sees kernels executed via replay: a same-element
/// write race in a recorded node is reported as the typed `DataRace`.
#[test]
fn sanitizer_detects_race_through_replay() {
    let _s = serial();
    let n = 64;
    let b = Buffer::<u32>::new(n);
    let bv = b.view();
    let q = disarmed();
    let g = Graph::record(&q, |g| {
        g.parallel_for("g_racy", Range::d1(n), &[writes(&b)], move |it| {
            bv.set(0, it.gid(0) as u32); // every item writes element 0
        });
    })
    .unwrap();

    let watched = disarmed().with_sanitizer(true);
    let e = g.replay(&watched).unwrap_err();
    assert!(matches!(e, Error::DataRace { kernel: "g_racy", element: 0, .. }), "{e:?}");
    assert_eq!(g.fast_replays(), 0);
}

/// A seeded bit-flip between replays is caught by the integrity layer's
/// launch-boundary verification inside the replayed plan, with the same
/// typed localisation a live launch produces; a retry budget heals it.
#[test]
fn integrity_detects_flip_through_replay_and_retry_heals() {
    let _s = serial();
    let _a = Armed::new();
    let n = 600; // 2400 B -> pages 0..=2
    let src = Buffer::from_slice(&vec![5u32; n]);
    let mid = Buffer::<u32>::new(n);
    let out = Buffer::<u32>::new(n);
    let q = disarmed();
    let g = doubling_graph(&src, &mid, &out, &q);

    let plan = Arc::new(FaultPlan::flip_at(src.object_id(), 1500, 2));
    let armed = disarmed()
        .with_integrity(true)
        .with_fault_plan(Some(Arc::clone(&plan)));
    let e = g.replay(&armed).unwrap_err();
    assert_eq!(e, Error::DataCorruption { region: src.object_id(), page: 1, epoch: 1 });
    assert_eq!(plan.flips_injected(), 1);

    // Detection resealed the region; with a retry budget a fresh flip
    // is absorbed and the replay completes.
    let plan2 = Arc::new(FaultPlan::flip_at(mid.object_id(), 100, 7));
    let healing = disarmed()
        .with_integrity(true)
        .with_fault_plan(Some(plan2))
        .with_retry_policy(RetryPolicy::resilient());
    g.replay(&healing).unwrap();
    assert_eq!(g.fast_replays(), 0);
}

/// Dmr/Tmr redundancy applies to replayed nodes: the slow path votes
/// and records the replica count per node, exactly like live launches.
/// (Voting runs under the integrity protocol, so the layer is armed
/// here, as `Queue::with_sdc_defense` would.)
#[test]
fn redundancy_votes_on_replayed_nodes() {
    let _s = serial();
    let armed_guard = Armed::new();
    let n = 128;
    let src = Buffer::from_slice(&vec![3u32; n]);
    let mid = Buffer::<u32>::new(n);
    let out = Buffer::<u32>::new(n);
    let q = disarmed();
    let g = doubling_graph(&src, &mid, &out, &q);

    for (red, replicas) in [(Redundancy::Dmr, 2), (Redundancy::Tmr, 3)] {
        let voting = disarmed().with_integrity(true).with_redundancy(red);
        g.replay(&voting).unwrap();
        assert_eq!(g.node_replicas(0), replicas, "{red:?}");
        assert_eq!(g.node_replicas(1), replicas, "{red:?}");
        assert!(out.to_vec().iter().all(|&v| v == 7));
    }
    assert_eq!(g.fast_replays(), 0);

    // Disarmed single-execution replay resets the recorded replica count.
    drop(armed_guard);
    g.replay(&q).unwrap();
    assert_eq!(g.node_replicas(0), 1);
    assert_eq!(g.fast_replays(), 1);
}

/// Record once, mutate inputs, replay again: the graph pins structure
/// (nodes, ranges, chunks), not contents — each replay reads the
/// buffers as they are now. This is the contract the app timestep loops
/// (SRAD's q0 parameter buffer, ParticleFilter's frame parameters)
/// build on.
#[test]
fn record_mutate_replay_reads_current_contents() {
    let _s = serial();
    let n = 100;
    let src = Buffer::from_slice(&vec![1u32; n]);
    let mid = Buffer::<u32>::new(n);
    let out = Buffer::<u32>::new(n);
    let q = disarmed();
    let g = doubling_graph(&src, &mid, &out, &q);

    g.replay(&q).unwrap();
    assert!(out.to_vec().iter().all(|&v| v == 3));

    src.write_from(&vec![10u32; n]);
    g.replay(&q).unwrap();
    assert!(out.to_vec().iter().all(|&v| v == 21));

    // Host-side writes between replays follow the same rule.
    src.write(|s| s[..50].copy_from_slice(&[100; 50]));
    g.replay(&q).unwrap();
    let o = out.to_vec();
    assert!(o[..50].iter().all(|&v| v == 201));
    assert!(o[50..].iter().all(|&v| v == 21));
}

/// The same graph object flips between slow and fast path replay by
/// replay, tracking each queue's arming state — and both paths compute
/// the same bytes on both queue parallelism modes.
#[test]
fn fast_path_engages_exactly_when_disarmed() {
    let _s = serial();
    let n = 512;
    let src = Buffer::from_slice(&(0..n as u32).collect::<Vec<_>>());
    let mid = Buffer::<u32>::new(n);
    let out = Buffer::<u32>::new(n);
    let q = disarmed();
    let g = doubling_graph(&src, &mid, &out, &q);

    let armed = disarmed().with_sanitizer(true);
    g.replay(&armed).unwrap(); // clean kernels: sanitizer passes, slow path
    let slow = out.to_vec();
    assert_eq!(g.replays(), 1);
    assert_eq!(g.fast_replays(), 0);

    g.replay(&q).unwrap();
    let fast = out.to_vec();
    assert_eq!(g.fast_replays(), 1);
    assert_eq!(slow, fast);

    let seq = disarmed().with_parallelism(Parallelism::Sequential);
    g.replay(&seq).unwrap(); // inline, still the fast path
    assert_eq!(out.to_vec(), fast);
    assert_eq!(g.fast_replays(), 2);
}
