//! Persistent-pool behaviour: thread reuse across many launches and
//! deadlock freedom for nested (device-side) submission.

use std::sync::mpsc;
use std::time::Duration;

use hetero_rt::executor::Parallelism;
use hetero_rt::pool;
use hetero_rt::prelude::*;

/// Force a multi-threaded pool even on single-core CI boxes. Must run
/// before the first pool access in this process; every test calls it
/// first, and the `Once` makes that race-free under the parallel test
/// runner.
fn init_threads() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if std::env::var_os("HETERO_RT_THREADS").is_none() {
            std::env::set_var("HETERO_RT_THREADS", "4");
        }
    });
}

#[test]
fn pool_reuses_threads_across_a_thousand_launches() {
    init_threads();
    let q = Queue::new(Device::cpu());

    // Force pool initialisation with one warm-up launch.
    let warm = Buffer::<u32>::new(256);
    let wv = warm.view();
    q.parallel_for("warmup", Range::d1(256), move |it| {
        wv.set(it.gid(0), 1);
    });

    let spawned_after_init = pool::spawned_threads();
    let dispatched_before = pool::jobs_dispatched();
    assert_eq!(
        spawned_after_init,
        pool::auto_threads() - 1,
        "pool should hold exactly threads-1 parked workers"
    );

    let b = Buffer::<u32>::new(4096);
    let launches = 1_000;
    for i in 0..launches {
        let v = b.view();
        q.parallel_for("storm", Range::d1(4096), move |it| {
            v.set(it.gid(0), i as u32);
        });
    }
    assert!(b.to_vec().iter().all(|&x| x == launches as u32 - 1));

    // The launch storm must not have created a single new OS thread.
    assert_eq!(
        pool::spawned_threads(),
        spawned_after_init,
        "pool grew during the launch storm"
    );
    // ... while every parallel launch actually went through the pool.
    let dispatched = pool::jobs_dispatched() - dispatched_before;
    assert!(
        dispatched >= launches,
        "only {dispatched} of {launches} launches dispatched to the pool"
    );
}

#[test]
fn sequential_launches_bypass_the_pool_dispatch() {
    init_threads();
    let q = Queue::new(Device::cpu()).with_parallelism(Parallelism::Sequential);
    // Touch the pool once so the counter exists.
    let _ = pool::auto_threads();
    let before = pool::jobs_dispatched();
    let b = Buffer::<u32>::new(512);
    for _ in 0..50 {
        let v = b.view();
        q.parallel_for("seq", Range::d1(512), move |it| {
            v.set(it.gid(0), 7);
        });
    }
    assert_eq!(
        pool::jobs_dispatched(),
        before,
        "sequential launches must not enqueue pool jobs"
    );
}

#[test]
fn nested_launch_from_a_worker_does_not_deadlock() {
    // A kernel group submitting child kernels through a cloned queue runs
    // *on a pool worker*; the child launch dispatches into the same pool.
    // The submitter-always-helps design must complete this even when
    // every worker is busy. A watchdog turns a deadlock into a failure
    // instead of a hung suite.
    init_threads();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let q = Queue::new(Device::cpu());
        let child_q = q.clone();
        let out = Buffer::<u32>::new(64 * 64);
        let ov = out.view();
        q.nd_range("parent", NdRange::d1(64, 1), move |ctx| {
            let g = ctx.group_linear();
            let v = ov.clone();
            let cq = child_q.clone();
            cq.parallel_for("child", Range::d1(64), move |it| {
                v.set(g * 64 + it.gid(0), (g * 64 + it.gid(0)) as u32);
            });
        })
        .unwrap();
        tx.send(out.to_vec()).unwrap();
    });
    let got = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("nested launches deadlocked the pool");
    for (i, &x) in got.iter().enumerate() {
        assert_eq!(x, i as u32);
    }
}

#[test]
fn deeply_nested_submission_still_completes() {
    init_threads();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let q = Queue::new(Device::cpu());
        let b = Buffer::<u32>::new(256);
        let (q1, q2) = (q.clone(), q.clone());
        let v0 = b.view();
        q.parallel_for("level0", Range::d1(4), move |it0| {
            let base0 = it0.gid(0) * 64;
            let v1 = v0.clone();
            let q2 = q2.clone();
            q1.parallel_for("level1", Range::d1(4), move |it1| {
                let base1 = base0 + it1.gid(0) * 16;
                let v2 = v1.clone();
                q2.parallel_for("level2", Range::d1(16), move |it2| {
                    v2.set(base1 + it2.gid(0), 1);
                });
            });
        });
        tx.send(b.to_vec()).unwrap();
    });
    let got = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("three-level nested launches deadlocked the pool");
    assert!(got.iter().all(|&x| x == 1));
}
