//! Exact pool-accounting pins. This file deliberately holds a single
//! test: `jobs_dispatched` / `jobs_allocated` are process-global
//! counters, and the default parallel test runner would interleave other
//! tests' launches into the deltas. One `#[test]` per binary makes the
//! counts exact, which is the whole point — BENCH_launch_storm.json once
//! reported `pool_jobs_dispatched: 30001` for 30 000 expected jobs
//! because empty jobs were counted as dispatches.

use hetero_rt::pool;

#[test]
fn dispatch_and_allocation_counts_are_exact() {
    // Warm the pool (spawns workers, may allocate the first scratch Job).
    pool::run_job(64, pool::auto_threads(), &|_, _| {});

    // 1. Empty jobs are not dispatches: they return before touching the
    //    pool.
    let before = pool::jobs_dispatched();
    for _ in 0..10 {
        pool::run_job(0, pool::auto_threads(), &|_, _| panic!("must not run"));
    }
    assert_eq!(pool::jobs_dispatched(), before, "empty jobs must not count as dispatches");

    // 2. N real jobs are exactly N dispatches — no warm-up slack, no
    //    off-by-one.
    let before = pool::jobs_dispatched();
    const N: usize = 1000;
    for _ in 0..N {
        pool::run_job(256, pool::auto_threads(), &|s, e| {
            std::hint::black_box(e - s);
        });
    }
    assert_eq!(pool::jobs_dispatched() - before, N, "one dispatch per non-empty job");

    // 3. The scratch slot absorbs most Job allocations: across N
    //    single-submitter dispatches the allocator is hit only when a
    //    worker still held the previous job at submit time. Pin a
    //    conservative bound rather than an exact count (the race with
    //    helper release is real and timing-dependent).
    let alloc_delta = pool::jobs_allocated() - {
        // Re-measure over a fresh window so the bound is about steady
        // state, not pool warm-up.
        let a0 = pool::jobs_allocated();
        let d0 = pool::jobs_dispatched();
        for _ in 0..N {
            pool::run_job(256, pool::auto_threads(), &|s, e| {
                std::hint::black_box(e - s);
            });
        }
        assert_eq!(pool::jobs_dispatched() - d0, N);
        a0
    };
    assert!(
        alloc_delta <= N / 2,
        "scratch reuse should absorb most Job allocations: {alloc_delta} allocations for {N} dispatches"
    );

    // 4. Sequential-path launches (total <= 1 thread) still count: the
    //    submitter is a participant. A 1-index job is a real dispatch.
    let before = pool::jobs_dispatched();
    pool::run_job(1, pool::auto_threads(), &|_, _| {});
    assert_eq!(pool::jobs_dispatched() - before, 1);
}
