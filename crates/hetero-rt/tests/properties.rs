//! Property tests on runtime invariants: coverage, determinism, and
//! barrier-phase semantics under arbitrary launch geometries.

use hetero_rt::executor::Parallelism;
use hetero_rt::ndrange::FenceSpace;
use hetero_rt::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_for_touches_each_index_exactly_once(n in 1usize..20_000) {
        let q = Queue::new(Device::cpu());
        let b = Buffer::<u32>::new(n);
        let v = b.view();
        q.parallel_for("touch", Range::d1(n), move |it| {
            v.atomic_add_u32(it.gid(0), 1);
        });
        prop_assert!(b.to_vec().iter().all(|&c| c == 1));
    }

    #[test]
    fn parallel_for_2d_covers_rectangle(w in 1usize..150, h in 1usize..150) {
        let q = Queue::new(Device::cpu());
        let b = Buffer::<u32>::new(w * h);
        let v = b.view();
        q.parallel_for("rect", Range::d2(w, h), move |it| {
            v.atomic_add_u32(it.gid(1) * w + it.gid(0), 1);
        });
        prop_assert!(b.to_vec().iter().all(|&c| c == 1));
    }

    #[test]
    fn nd_range_group_count_matches_geometry(
        groups in 1usize..64,
        wg in prop::sample::select(vec![1usize, 2, 4, 8, 16, 32, 64]),
    ) {
        let q = Queue::new(Device::cpu());
        let n = groups * wg;
        let counter = Buffer::<u32>::new(1);
        let cv = counter.view();
        let e = q.nd_range("count", NdRange::d1(n, wg), move |_ctx| {
            cv.atomic_add_u32(0, 1);
        }).unwrap();
        prop_assert_eq!(counter.to_vec()[0] as usize, groups);
        prop_assert_eq!(e.stats().groups as usize, groups);
    }

    #[test]
    fn thread_count_does_not_change_results(
        n in 64usize..8_192,
        threads in 1usize..12,
    ) {
        let run = |p: Parallelism| {
            let q = Queue::new(Device::cpu()).with_parallelism(p);
            let b = Buffer::<f32>::new(n);
            let v = b.view();
            q.parallel_for("calc", Range::d1(n), move |it| {
                let x = it.gid(0) as f32;
                v.set(it.gid(0), (x * 0.37).sin() + x.sqrt());
            });
            b.to_vec()
        };
        prop_assert_eq!(run(Parallelism::Sequential), run(Parallelism::Threads(threads)));
    }

    #[test]
    fn barrier_phases_make_neighbour_exchange_exact(
        wg in prop::sample::select(vec![2usize, 4, 8, 16, 32, 64]),
        groups in 1usize..16,
        shift in 1usize..64,
    ) {
        // Every item writes its slot, barrier, reads slot (lid+shift)%wg.
        let q = Queue::new(Device::cpu());
        let n = wg * groups;
        let out = Buffer::<u32>::new(n);
        let ov = out.view();
        q.nd_range("exchange", NdRange::d1(n, wg), move |ctx| {
            let tile = ctx.local_array::<u32>(wg);
            ctx.items(|it| tile.set(it.local_linear, it.global_linear as u32));
            ctx.barrier(FenceSpace::Local);
            ctx.items(|it| {
                let src = (it.local_linear + shift) % wg;
                ov.set(it.global_linear, tile.get(src));
            });
        }).unwrap();
        let got = out.to_vec();
        for g in 0..groups {
            for lid in 0..wg {
                let expect = (g * wg + (lid + shift) % wg) as u32;
                prop_assert_eq!(got[g * wg + lid], expect);
            }
        }
    }

    #[test]
    fn buffer_roundtrip_preserves_bits(data in prop::collection::vec(any::<u32>(), 0..2_000)) {
        let b = Buffer::from_slice(&data);
        prop_assert_eq!(b.to_vec(), data);
    }

    #[test]
    fn view_range_windows_compose(
        len in 1usize..1_000,
        off_frac in 0.0f64..1.0,
    ) {
        let data: Vec<u32> = (0..len as u32).collect();
        let b = Buffer::from_slice(&data);
        let off = ((len as f64) * off_frac) as usize;
        let sub_len = len - off;
        let v = b.view_range(off, sub_len).unwrap();
        for i in 0..sub_len {
            prop_assert_eq!(v.get(i), (off + i) as u32);
        }
    }
}
