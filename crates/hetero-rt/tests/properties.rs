//! Property tests on runtime invariants: coverage, determinism, and
//! barrier-phase semantics under arbitrary launch geometries.
//!
//! Randomized inputs come from a small seeded SplitMix64 generator so the
//! suite is fully deterministic and needs no external crates; the
//! `heavy-tests` feature multiplies the case counts.

use hetero_rt::executor::Parallelism;
use hetero_rt::ndrange::FenceSpace;
use hetero_rt::prelude::*;

/// Deterministic test-input generator (SplitMix64).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    fn pick(&mut self, options: &[usize]) -> usize {
        options[self.range(0, options.len())]
    }
}

fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 8
    } else {
        base
    }
}

#[test]
fn parallel_for_touches_each_index_exactly_once() {
    let mut g = Gen::new(0x01);
    for _ in 0..cases(48) {
        let n = g.range(1, 20_000);
        let q = Queue::new(Device::cpu());
        let b = Buffer::<u32>::new(n);
        let v = b.view();
        q.parallel_for("touch", Range::d1(n), move |it| {
            v.atomic_add_u32(it.gid(0), 1);
        });
        assert!(b.to_vec().iter().all(|&c| c == 1), "n = {n}");
    }
}

#[test]
fn parallel_for_2d_covers_rectangle() {
    let mut g = Gen::new(0x02);
    for _ in 0..cases(48) {
        let (w, h) = (g.range(1, 150), g.range(1, 150));
        let q = Queue::new(Device::cpu());
        let b = Buffer::<u32>::new(w * h);
        let v = b.view();
        q.parallel_for("rect", Range::d2(w, h), move |it| {
            v.atomic_add_u32(it.gid(1) * w + it.gid(0), 1);
        });
        assert!(b.to_vec().iter().all(|&c| c == 1), "w = {w}, h = {h}");
    }
}

#[test]
fn nd_range_group_count_matches_geometry() {
    let mut g = Gen::new(0x03);
    for _ in 0..cases(48) {
        let groups = g.range(1, 64);
        let wg = g.pick(&[1, 2, 4, 8, 16, 32, 64]);
        let q = Queue::new(Device::cpu());
        let n = groups * wg;
        let counter = Buffer::<u32>::new(1);
        let cv = counter.view();
        let e = q
            .nd_range("count", NdRange::d1(n, wg), move |_ctx| {
                cv.atomic_add_u32(0, 1);
            })
            .unwrap();
        assert_eq!(counter.to_vec()[0] as usize, groups);
        assert_eq!(e.stats().groups as usize, groups);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let mut g = Gen::new(0x04);
    for _ in 0..cases(48) {
        let n = g.range(64, 8_192);
        let threads = g.range(1, 12);
        let run = |p: Parallelism| {
            let q = Queue::new(Device::cpu()).with_parallelism(p);
            let b = Buffer::<f32>::new(n);
            let v = b.view();
            q.parallel_for("calc", Range::d1(n), move |it| {
                let x = it.gid(0) as f32;
                v.set(it.gid(0), (x * 0.37).sin() + x.sqrt());
            });
            b.to_vec()
        };
        assert_eq!(
            run(Parallelism::Sequential),
            run(Parallelism::Threads(threads)),
            "n = {n}, threads = {threads}"
        );
    }
}

#[test]
fn barrier_phases_make_neighbour_exchange_exact() {
    let mut g = Gen::new(0x05);
    for _ in 0..cases(48) {
        let wg = g.pick(&[2, 4, 8, 16, 32, 64]);
        let groups = g.range(1, 16);
        let shift = g.range(1, 64);
        // Every item writes its slot, barrier, reads slot (lid+shift)%wg.
        let q = Queue::new(Device::cpu());
        let n = wg * groups;
        let out = Buffer::<u32>::new(n);
        let ov = out.view();
        q.nd_range("exchange", NdRange::d1(n, wg), move |ctx| {
            let tile = ctx.local_array::<u32>(wg);
            ctx.items(|it| tile.set(it.local_linear, it.global_linear as u32));
            ctx.barrier(FenceSpace::Local);
            ctx.items(|it| {
                let src = (it.local_linear + shift) % wg;
                ov.set(it.global_linear, tile.get(src));
            });
        })
        .unwrap();
        let got = out.to_vec();
        for grp in 0..groups {
            for lid in 0..wg {
                let expect = (grp * wg + (lid + shift) % wg) as u32;
                assert_eq!(got[grp * wg + lid], expect);
            }
        }
    }
}

#[test]
fn buffer_roundtrip_preserves_bits() {
    let mut g = Gen::new(0x06);
    for _ in 0..cases(48) {
        let len = g.range(0, 2_000);
        let data: Vec<u32> = (0..len).map(|_| g.next() as u32).collect();
        let b = Buffer::from_slice(&data);
        assert_eq!(b.to_vec(), data);
    }
}

#[test]
fn view_range_windows_compose() {
    let mut g = Gen::new(0x07);
    for _ in 0..cases(48) {
        let len = g.range(1, 1_000);
        let off = g.range(0, len + 1).min(len);
        let data: Vec<u32> = (0..len as u32).collect();
        let b = Buffer::from_slice(&data);
        let sub_len = len - off;
        let v = b.view_range(off, sub_len).unwrap();
        for i in 0..sub_len {
            assert_eq!(v.get(i), (off + i) as u32);
        }
    }
}
