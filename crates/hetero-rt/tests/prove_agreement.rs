//! Static/dynamic agreement suite for binding-contract verification.
//!
//! Each seeded misdeclaration is a *true positive* twice over: the
//! static prover rejects it at `Graph::record` time with a typed,
//! deterministically worded [`Error::BindingContract`], and — when the
//! same kernel is recorded *without* a contract, so nothing stops the
//! recording — the dynamic race sanitizer catches the resulting
//! conflict at replay with the exact same `(kernel, element, kind)`
//! triple on every run. The suite also pins the elision-certificate
//! degradation rules: gates arm only on fully disarmed fast-path
//! replays, fall back to checked accessors on armed queues, and are
//! always disarmed again before `replay` returns.
//!
//! Arming state (gates, the elision kill switch, prove counters) is
//! process-global, so tests that observe it serialize on one mutex.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use hetero_rt::prelude::*;
use hetero_rt::prove::{self, at, LaunchSpec};
use hetero_rt::{elide, RaceKind};

fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| {
        if std::env::var_os("HETERO_RT_THREADS").is_none() {
            std::env::set_var("HETERO_RT_THREADS", "4");
        }
        Mutex::new(())
    })
    .lock()
    .unwrap_or_else(PoisonError::into_inner)
}

fn disarmed() -> Queue {
    Queue::new(Device::cpu()).with_fault_plan(None).with_sanitizer(false)
}

fn binding_contract(e: Error) -> (String, Vec<String>) {
    match e {
        Error::BindingContract { kernel, violations } => (kernel, violations),
        other => panic!("expected BindingContract, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Seeded true positives: static rejection at record time
// ---------------------------------------------------------------------------

/// Every item writes element 0, but the binding claims a per-item
/// footprint. The interpreter infers a Whole footprint (the constant
/// index has no item term), so the declared `Item` is over-narrow.
#[test]
fn over_narrow_footprint_caught_statically_at_record() {
    let _s = serial();
    let n = 1024;
    let dst = Buffer::<u32>::new(n);
    let v = dst.view();
    let err = Graph::record(&disarmed(), |g| {
        g.parallel_for("scatter0", Range::d1(n), &[writes_item(&dst)], move |it| {
            v.set(0, it.gid(0) as u32);
        })
        .contract(LaunchSpec::new().slot("dst", n, vec![], vec![at(0).into()]));
    })
    .unwrap_err();
    let (kernel, violations) = binding_contract(err);
    assert_eq!(kernel, "scatter0");
    assert_eq!(
        violations,
        vec!["'scatter0' slot 'dst': declared item footprint but accesses escape the item slice"]
    );
    assert!(prove::violations_found() >= 1);
}

/// The same scatter recorded *without* a contract sails through record —
/// and the sanitizer catches the resulting cross-group write/write race
/// at replay, deterministically naming element 0.
#[test]
fn over_narrow_scatter_race_caught_dynamically_at_replay() {
    let _s = serial();
    let n = 1024; // 4 implicit groups of 256 — a 4-way conflict on elem 0
    let dst = Buffer::<u32>::new(n);
    let v = dst.view();
    let graph = Graph::record(&disarmed(), |g| {
        g.parallel_for("scatter0", Range::d1(n), &[writes_item(&dst)], move |it| {
            v.set(0, it.gid(0) as u32);
        });
    })
    .unwrap();
    for _ in 0..2 {
        let q = Queue::new(Device::cpu()).with_sanitizer(true);
        let e = graph.replay(&q).unwrap_err();
        assert!(
            matches!(
                e,
                Error::DataRace { kernel: "scatter0", element: 0, kind: RaceKind::WriteWrite }
            ),
            "{e:?}"
        );
    }
}

/// Item 0 reads element 256 (owned by the second implicit group) while
/// declaring the buffer write-only. Statically: the contract's read
/// index has no matching read access in the binding.
#[test]
fn undeclared_read_caught_statically_at_record() {
    let _s = serial();
    let n = 512;
    let buf = Buffer::<u32>::new(n);
    let v = buf.view();
    let err = Graph::record(&disarmed(), |g| {
        g.parallel_for("peek_far", Range::d1(n), &[writes_item(&buf)], move |it| {
            let i = it.gid(0);
            if i == 0 {
                v.set(0, v.get(256));
            } else {
                v.set(i, i as u32);
            }
        })
        .contract(LaunchSpec::new().slot(
            "buf",
            n,
            vec![at(256).guard(1).into()],
            vec![at(0).item(0, 1).into()],
        ));
    })
    .unwrap_err();
    let (kernel, violations) = binding_contract(err);
    assert_eq!(kernel, "peek_far");
    // Two independent violations, deterministically ordered: the read
    // is undeclared, and the far element also escapes the declared
    // per-item footprint.
    assert_eq!(
        violations,
        vec![
            "'peek_far' slot 'buf': kernel reads it but the binding declares write-only",
            "'peek_far' slot 'buf': declared item footprint but accesses escape the item slice",
        ]
    );
}

/// The same undeclared read, recorded without a contract: group 0 reads
/// element 256 while group 1 writes it — a deterministic read/write
/// race at sanitized replay.
#[test]
fn undeclared_read_race_caught_dynamically_at_replay() {
    let _s = serial();
    let n = 512;
    let buf = Buffer::<u32>::new(n);
    let v = buf.view();
    let graph = Graph::record(&disarmed(), |g| {
        g.parallel_for("peek_far", Range::d1(n), &[writes_item(&buf)], move |it| {
            let i = it.gid(0);
            if i == 0 {
                v.set(0, v.get(256));
            } else {
                v.set(i, i as u32);
            }
        });
    })
    .unwrap();
    for _ in 0..2 {
        let q = Queue::new(Device::cpu()).with_sanitizer(true);
        let e = graph.replay(&q).unwrap_err();
        assert!(
            matches!(
                e,
                Error::DataRace { kernel: "peek_far", element: 256, kind: RaceKind::ReadWrite }
            ),
            "{e:?}"
        );
    }
}

/// Writing stride-2 slices of a double-length buffer covers only the
/// even elements: a per-item-disjoint map, but not dense coverage — so
/// a `writes_dense` binding is a false dense claim.
#[test]
fn false_dense_claim_caught_statically_at_record() {
    let _s = serial();
    let n = 256;
    let dst = Buffer::<u32>::new(2 * n);
    let v = dst.view();
    let err = Graph::record(&disarmed(), |g| {
        g.parallel_for("evens", Range::d1(n), &[writes_dense(&dst)], move |it| {
            v.set(it.gid(0) * 2, 7);
        })
        .contract(LaunchSpec::new().slot("dst", 2 * n, vec![], vec![at(0).item(0, 2).into()]));
    })
    .unwrap_err();
    let (kernel, violations) = binding_contract(err);
    assert_eq!(kernel, "evens");
    assert_eq!(
        violations,
        vec!["'evens' slot 'dst': declared dense coverage but writes do not provably cover the object"]
    );
}

/// A declared graph output no recorded node ever writes is stale: the
/// caller would replay the graph and read garbage that the schedule
/// never produced. Caught at `finish` once any contract is attached.
#[test]
fn stale_output_declaration_caught_statically_at_record() {
    let _s = serial();
    let n = 64;
    let src = Buffer::from_slice(&vec![1u32; n]);
    let dst = Buffer::<u32>::new(n);
    let orphan = Buffer::<u32>::new(n);
    let (sv, dv) = (src.view(), dst.view());
    let err = Graph::record(&disarmed(), |g| {
        g.parallel_for(
            "double",
            Range::d1(n),
            &[reads(&src), writes_dense(&dst)],
            move |it| {
                dv.set(it.gid(0), sv.get(it.gid(0)) * 2);
            },
        )
        .contract(
            LaunchSpec::new()
                .slot("src", n, vec![at(0).item(0, 1).into()], vec![])
                .slot("dst", n, vec![], vec![at(0).item(0, 1).into()]),
        )
        .output(&dst)
        .output(&orphan);
    })
    .unwrap_err();
    let (kernel, violations) = binding_contract(err);
    assert_eq!(kernel, "<outputs>");
    assert_eq!(
        violations,
        vec![format!(
            "graph output object #{} is never written by any recorded node",
            orphan.object_id()
        )]
    );
}

/// A contract whose slot list does not line up positionally with the
/// launch bindings is rejected outright — no partial checking.
#[test]
fn slot_count_mismatch_caught_statically_at_record() {
    let _s = serial();
    let n = 64;
    let src = Buffer::from_slice(&vec![1u32; n]);
    let dst = Buffer::<u32>::new(n);
    let (sv, dv) = (src.view(), dst.view());
    let err = Graph::record(&disarmed(), |g| {
        g.parallel_for(
            "double",
            Range::d1(n),
            &[reads(&src), writes_dense(&dst)],
            move |it| {
                dv.set(it.gid(0), sv.get(it.gid(0)) * 2);
            },
        )
        .contract(LaunchSpec::new().slot("dst", n, vec![], vec![at(0).item(0, 1).into()]));
    })
    .unwrap_err();
    let (kernel, violations) = binding_contract(err);
    assert_eq!(kernel, "double");
    assert_eq!(
        violations,
        vec!["'double': contract has 1 slots but the launch declares 2 bindings"]
    );
}

// ---------------------------------------------------------------------------
// Certificate arming and degradation
// ---------------------------------------------------------------------------

/// Record a one-kernel graph whose proof closes, with a probe that
/// stores the gate's armed state into a flag buffer from inside the
/// kernel. Returns `(graph, gate, data, flags)`.
fn probed_graph(
    q: &Queue,
    n: usize,
) -> (Graph, elide::Gate, Buffer<u32>, Buffer<u32>) {
    let data = Buffer::from_slice(&vec![1u32; n]);
    let flags = Buffer::<u32>::new(n);
    let gate = elide::Gate::new();
    let (dv, fv) = (gate.view(data.view()), gate.view(flags.view()));
    let probe = gate.clone();
    let graph = Graph::record(q, |g| {
        g.parallel_for(
            "probe",
            Range::d1(n),
            &[reads_writes_item(&data), writes_dense(&flags)],
            move |it| {
                let i = it.gid(0);
                fv.set(i, probe.is_armed() as u32);
                dv.update(i, |x| x + 1);
            },
        )
        .contract_gated(
            LaunchSpec::new()
                .slot("data", n, vec![at(0).item(0, 1).into()], vec![at(0).item(0, 1).into()])
                .slot("flags", n, vec![], vec![at(0).item(0, 1).into()]),
            &gate,
        )
        .output(&data)
        .output(&flags);
    })
    .unwrap();
    (graph, gate, data, flags)
}

/// A closed proof issues a certificate, the fast path replays the
/// kernel with the gate armed (observed from inside the kernel), and
/// the drop guard disarms it again before `replay` returns.
#[test]
fn certificate_arms_gate_exactly_for_fast_path_replay() {
    let _s = serial();
    let n = 256;
    let q = disarmed();
    let before = prove::certificates_issued();
    let (graph, gate, data, flags) = probed_graph(&q, n);
    assert!(prove::certificates_issued() > before, "closed proof must certify");
    assert!(!gate.is_armed(), "gates stay disarmed outside replay");
    graph.replay(&q).unwrap();
    assert!(!gate.is_armed(), "drop guard must disarm before replay returns");
    assert!(flags.to_vec().iter().all(|&f| f == 1), "fast path replays armed");
    assert_eq!(data.to_vec(), vec![2u32; n]);
}

/// An armed queue (sanitizer on) degrades to the hardened per-launch
/// path: same results, but the gate never arms — every access runs
/// through the fully checked accessors under the sanitizer's watch.
#[test]
fn armed_queue_falls_back_to_checked_accessors() {
    let _s = serial();
    let n = 256;
    let (graph, gate, data, flags) = probed_graph(&disarmed(), n);
    let sanitized = Queue::new(Device::cpu()).with_sanitizer(true);
    graph.replay(&sanitized).unwrap();
    assert!(!gate.is_armed());
    assert!(flags.to_vec().iter().all(|&f| f == 0), "armed queue must not elide");
    assert_eq!(data.to_vec(), vec![2u32; n]);
}

/// The global kill switch forces certified graphs back onto checked
/// accessors even on the fast path, without changing results.
#[test]
fn kill_switch_disables_arming_on_fast_path() {
    let _s = serial();
    let n = 256;
    let q = disarmed();
    let (graph, gate, data, flags) = probed_graph(&q, n);
    elide::set_enabled(false);
    let r = graph.replay(&q);
    elide::set_enabled(true);
    r.unwrap();
    assert!(!gate.is_armed());
    assert!(flags.to_vec().iter().all(|&f| f == 0), "kill switch must suppress arming");
    assert_eq!(data.to_vec(), vec![2u32; n]);
}

/// Contracts are load-bearing in this build: the prove counters move
/// when recordings check contracts, so a CI sweep asserting
/// `contracts_checked() > 0 && violations_found() == 0` is meaningful.
#[test]
fn prove_counters_track_checked_contracts() {
    let _s = serial();
    let n = 64;
    let before = prove::contracts_checked();
    let q = disarmed();
    let (_graph, _gate, _data, _flags) = probed_graph(&q, n);
    assert!(prove::contracts_checked() > before);
}
