//! End-to-end resilience tests: kernel-panic containment, typed error
//! propagation, retry/fallback policies, blocking `wait()`, and pipe
//! deadlock diagnosis under both sequential and pooled execution.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hetero_rt::executor::Parallelism;
use hetero_rt::prelude::*;
use hetero_rt::usm::UsmKind;
use hetero_rt::{DeviceCaps, DeviceKind, Fallback, RetryPolicy};

/// A panicking kernel becomes a typed error — and the shared pool stays
/// healthy for many subsequent clean launches, on both execution modes.
#[test]
fn kernel_panic_is_contained_and_pool_stays_reusable() {
    for par in [Parallelism::Sequential, Parallelism::Auto] {
        let plan = Arc::new(FaultPlan::panic_at("victim", 3));
        let q = Queue::new(Device::cpu())
            .with_parallelism(par)
            .with_fault_plan(Some(plan));
        let e = q
            .nd_range("victim", NdRange::d1(64 * 8, 8), |_ctx| {})
            .unwrap_err();
        assert!(
            matches!(e, Error::KernelPanicked { kernel: "victim", group: 3, .. }),
            "{par:?}: {e:?}"
        );

        // The same queue (and the process-wide pool behind it) must keep
        // producing correct results afterwards.
        for round in 0..50u32 {
            let b = Buffer::<u32>::new(512);
            let v = b.view();
            q.parallel_for("clean", Range::d1(512), move |it| {
                v.set(it.gid(0), it.gid(0) as u32 + round);
            });
            let out = b.to_vec();
            assert!(out.iter().enumerate().all(|(i, &x)| x == i as u32 + round));
        }
    }
}

/// An out-of-bounds access inside a kernel surfaces as the typed
/// `AccessOutOfBounds` it raised, not a generic panic.
#[test]
fn oob_access_in_kernel_is_a_typed_launch_error() {
    let q = Queue::new(Device::cpu());
    let b = Buffer::<u32>::new(8);
    let v = b.view();
    let e = q
        .nd_range("oob", NdRange::d1(16, 8), move |ctx| {
            ctx.items(|it| v.set(it.global_linear, 1)); // runs to 15 on a len-8 view
        })
        .unwrap_err();
    assert!(matches!(e, Error::AccessOutOfBounds { buffer_len: 8, .. }), "{e:?}");
}

fn tiny_local_mem_device() -> Device {
    Device::new(
        "tiny-local accelerator",
        DeviceKind::Fpga,
        DeviceCaps { local_mem_bytes: 64, ..DeviceCaps::fpga() },
    )
}

/// A kernel whose local-memory demand exceeds the primary device's
/// capacity is re-run on the CPU when `Fallback::Cpu` is set, and the
/// detour is recorded on the event.
#[test]
fn local_mem_exceeded_falls_back_to_cpu() {
    let dev = tiny_local_mem_device();
    let b = Buffer::<u32>::new(128);
    let v = b.view();
    let kernel = move |ctx: &GroupCtx| {
        let shared = ctx.local_array::<u32>(32); // 128 B > 64 B on the tiny device
        ctx.items(|it| shared.set(it.local_linear, it.global_linear as u32));
        ctx.items(|it| v.set(it.global_linear, shared.get(it.local_linear) * 2));
    };

    // Without fallback: the typed capability error.
    let q = Queue::new(dev.clone());
    let e = q.nd_range("needs_local", NdRange::d1(128, 32), &kernel).unwrap_err();
    assert!(matches!(e, Error::LocalMemExceeded { .. }), "{e:?}");

    // With fallback: success, computed on the CPU, recorded as such.
    let q = Queue::new(dev).with_fallback(Fallback::Cpu);
    let ev = q.nd_range("needs_local", NdRange::d1(128, 32), kernel).unwrap();
    assert_eq!(
        ev.resilience().fallback_device.as_deref(),
        Some(Device::cpu().name().to_string().as_str())
    );
    let out = b.to_vec();
    assert!(out.iter().enumerate().all(|(i, &x)| x == i as u32 * 2));
}

/// A work-group too large for the FPGA runs on the CPU under fallback —
/// the paper's manual porting decision expressed as policy.
#[test]
fn oversize_work_group_falls_back_to_cpu() {
    let q = Queue::new(Device::stratix10()).with_fallback(Fallback::Cpu);
    let b = Buffer::<u32>::new(512);
    let v = b.view();
    let ev = q
        .nd_range("big_groups", NdRange::d1(512, 256), move |ctx| {
            ctx.items(|it| v.set(it.global_linear, 7));
        })
        .unwrap();
    assert!(ev.resilience().fallback_device.is_some());
    assert!(b.to_vec().iter().all(|&x| x == 7));

    // A kernel-level `reqd_work_group_size` attribute binds on every
    // device, so fallback cannot rescue it.
    let e = q
        .nd_range_with_limit("attr_bound", NdRange::d1(512, 256), Some(128), |_| {})
        .unwrap_err();
    assert!(matches!(e, Error::WorkGroupTooLarge { .. }));
}

/// A kernel panic is NOT retried and NOT re-run on the CPU: groups may
/// already have written global memory.
#[test]
fn kernel_panic_is_never_retried_or_fallen_back() {
    let plan = Arc::new(FaultPlan::panic_at("once", 0));
    let q = Queue::new(Device::cpu())
        .with_fault_plan(Some(plan.clone()))
        .with_retry_policy(RetryPolicy::resilient())
        .with_fallback(Fallback::Cpu);
    let e = q.nd_range("once", NdRange::d1(8, 8), |_| {}).unwrap_err();
    assert!(matches!(e, Error::KernelPanicked { .. }));
    // Exactly one injection: no retry re-executed the kernel.
    assert_eq!(plan.injected(), 1);
}

/// Transient launch failures within the retry budget are absorbed and
/// recorded; past the budget they surface as `TransientLaunchFailure`.
#[test]
fn transient_faults_respect_the_retry_budget() {
    // Burst of 2 with 3 attempts: succeeds on the third.
    let q = Queue::new(Device::cpu())
        .with_fault_plan(Some(Arc::new(FaultPlan::transient_burst(2))))
        .with_retry_policy(RetryPolicy { max_attempts: 3, backoff: Duration::ZERO });
    let b = Buffer::<u32>::new(64);
    let v = b.view();
    let ev = q
        .try_parallel_for("flaky", Range::d1(64), move |it| v.set(it.gid(0), 1))
        .unwrap();
    assert_eq!(ev.resilience().attempts, 3);
    assert_eq!(ev.resilience().faults_absorbed, 2);
    assert!(b.to_vec().iter().all(|&x| x == 1));

    // Burst of 5 with 3 attempts: budget exhausted, typed error.
    let q = Queue::new(Device::cpu())
        .with_fault_plan(Some(Arc::new(FaultPlan::transient_burst(5))))
        .with_retry_policy(RetryPolicy { max_attempts: 3, backoff: Duration::ZERO });
    let e = q
        .try_parallel_for("flaky", Range::d1(64), |_| {})
        .unwrap_err();
    assert_eq!(e, Error::TransientLaunchFailure { kernel: "flaky", attempts: 3 });
}

/// The retry backoff is pinned: attempt `k` sleeps exactly
/// `backoff * k`, no jitter, so a seeded chaos run replays the same
/// delay sequence every time.
#[test]
fn retry_backoff_sequence_is_deterministic() {
    let p = RetryPolicy { max_attempts: 4, backoff: Duration::from_millis(2) };
    let delays: Vec<Duration> = (1..p.max_attempts).map(|k| p.delay_for(k)).collect();
    assert_eq!(
        delays,
        vec![
            Duration::from_millis(2),
            Duration::from_millis(4),
            Duration::from_millis(6),
        ]
    );
    // Zero-backoff policies sleep zero at every attempt.
    let z = RetryPolicy { max_attempts: 3, backoff: Duration::ZERO };
    assert!((1..z.max_attempts).all(|k| z.delay_for(k) == Duration::ZERO));
    // The resilient chaos policy: 1 ms base, linear.
    let r = RetryPolicy::resilient();
    assert_eq!(r.delay_for(1), Duration::from_millis(1));
    assert_eq!(r.delay_for(2), Duration::from_millis(2));

    // A launch that absorbs two transients must sleep at least
    // delay_for(1) + delay_for(2) — the wall clock pins that the
    // sequence is actually taken in order.
    let q = Queue::new(Device::cpu())
        .with_fault_plan(Some(Arc::new(FaultPlan::transient_burst(2))))
        .with_retry_policy(RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(5),
        });
    let t0 = std::time::Instant::now();
    let ev = q.try_parallel_for("slow_flaky", Range::d1(8), |_| {}).unwrap();
    assert_eq!(ev.resilience().attempts, 3);
    assert!(t0.elapsed() >= Duration::from_millis(15), "5ms + 10ms of backoff");
}

/// Default queues make exactly one attempt — transient faults surface
/// immediately, preserving the pre-fault-layer behaviour.
#[test]
fn default_policy_does_not_retry() {
    let q = Queue::new(Device::cpu())
        .with_fault_plan(Some(Arc::new(FaultPlan::transient_burst(1))));
    let e = q.try_parallel_for("flaky", Range::d1(8), |_| {}).unwrap_err();
    assert_eq!(e, Error::TransientLaunchFailure { kernel: "flaky", attempts: 1 });
}

/// Two kernels blocked against each other on pipes are diagnosed as
/// `PipeDeadlock` within the timeout — under sequential and pooled
/// queue parallelism alike.
#[test]
fn pipe_deadlock_is_diagnosed_under_both_parallelism_modes() {
    for par in [Parallelism::Sequential, Parallelism::Auto] {
        let q = Queue::new(Device::stratix10()).with_parallelism(par);
        // Kernel A waits on an empty pipe that B never fills, because B
        // waits on a full pipe that A never drains.
        let empty = Pipe::<u32>::with_capacity_and_timeout(1, Duration::from_millis(100));
        let full = Pipe::<u32>::with_capacity_and_timeout(1, Duration::from_millis(100));
        full.write(0).unwrap();
        let (ea, fa) = (empty.clone(), full.clone());
        let t0 = std::time::Instant::now();
        let e = q
            .submit_concurrent(
                "deadlocked_pair",
                vec![
                    Box::new(move || {
                        let _ = ea.read()?; // blocks: nobody writes
                        Ok(())
                    }) as Box<dyn FnOnce() -> hetero_rt::Result<()> + Send>,
                    Box::new(move || {
                        fa.write(1)?; // blocks: pipe already full
                        Ok(())
                    }),
                ],
            )
            .unwrap_err();
        assert!(matches!(e, Error::PipeDeadlock { .. }), "{par:?}: {e:?}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "diagnosis took {:?}",
            t0.elapsed()
        );
    }
}

/// A panicking concurrent kernel is classified like a pooled one, not
/// reported as a closed pipe.
#[test]
fn concurrent_kernel_panic_is_classified() {
    let q = Queue::new(Device::stratix10());
    let e = q
        .submit_concurrent(
            "concurrent_panic",
            vec![Box::new(|| -> hetero_rt::Result<()> { panic!("stream kernel bug") })
                as Box<dyn FnOnce() -> hetero_rt::Result<()> + Send>],
        )
        .unwrap_err();
    match e {
        Error::KernelPanicked { kernel, message, .. } => {
            assert_eq!(kernel, "concurrent_panic");
            assert!(message.contains("stream kernel bug"));
        }
        other => panic!("unexpected: {other:?}"),
    }
}

/// `Queue::wait()` blocks until launches submitted from other threads
/// through clones of the queue have drained.
#[test]
fn wait_blocks_on_outstanding_concurrent_submissions() {
    let q = Queue::new(Device::cpu());
    let worker_q = q.clone();
    let started = Arc::new(AtomicU32::new(0));
    let started2 = Arc::clone(&started);
    let b = Buffer::<u32>::new(256);
    let v = b.view();
    let t = std::thread::spawn(move || {
        worker_q.parallel_for("slow", Range::d1(256), move |it| {
            started2.store(1, Ordering::Release);
            std::thread::sleep(Duration::from_millis(2));
            v.set(it.gid(0), 1);
        });
    });
    // Spin until the launch is demonstrably in flight, then wait for it.
    while started.load(Ordering::Acquire) == 0 {
        std::hint::spin_loop();
    }
    q.wait();
    // Every store of the launch must be visible once wait() returns.
    assert!(b.to_vec().iter().all(|&x| x == 1));
    t.join().unwrap();
}

/// USM allocation failures are injectable on capable devices and typed.
#[test]
fn injected_usm_failure_is_typed() {
    let plan = Arc::new(FaultPlan::new(3, 1.0).with_kinds(&[FaultKind::AllocFail]));
    let q = Queue::new(Device::cpu()).with_fault_plan(Some(plan));
    let e = q.alloc_usm::<f32>(UsmKind::Shared, 16).unwrap_err();
    assert_eq!(
        e,
        Error::UsmAllocFailed { device: Device::cpu().name().to_string(), bytes: 64 }
    );
    // The genuine capability error still wins on USM-less devices.
    let q = Queue::new(Device::agilex());
    assert!(matches!(
        q.alloc_usm::<f32>(UsmKind::Host, 16),
        Err(Error::UsmUnsupported { .. })
    ));
}

/// The same seed and rate reproduce the same faults and the same final
/// outcome — the property the chaos harness's replayability rests on.
#[test]
fn chaos_outcomes_reproduce_from_the_seed() {
    let run = || -> (u64, Vec<std::result::Result<u32, Error>>) {
        let plan = Arc::new(FaultPlan::new(0xC0FFEE, 0.08));
        let q = Queue::new(Device::cpu())
            .with_fault_plan(Some(plan.clone()))
            .with_retry_policy(RetryPolicy { max_attempts: 3, backoff: Duration::ZERO });
        let mut outcomes = Vec::new();
        for k in 0..20u32 {
            let b = Buffer::<u32>::new(256);
            let v = b.view();
            let r = q
                .try_parallel_for("chaos_step", Range::d1(256), move |it| {
                    v.set(it.gid(0), k)
                })
                .map(|_| b.to_vec().iter().sum::<u32>());
            outcomes.push(r);
        }
        (plan.injected(), outcomes)
    };
    let (inj_a, out_a) = run();
    let (inj_b, out_b) = run();
    assert_eq!(inj_a, inj_b);
    assert_eq!(out_a, out_b);
}

/// Satellite pin: `Queue::wait()` must block across the *entire* retry
/// cycle — attempts, backoff sleeps, and the final re-submission — not
/// just the portion where a kernel is actually executing. The in-flight
/// guard is entered before the first attempt and held through every
/// `RetryPolicy` backoff, so a waiter that arrives mid-backoff still
/// sees the completed launch when `wait()` returns.
#[test]
fn wait_blocks_across_full_retry_backoff_cycle() {
    let plan = Arc::new(FaultPlan::transient_burst(2));
    let q = Queue::new(Device::cpu())
        .with_fault_plan(Some(plan))
        .with_retry_policy(RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(150),
        });
    let worker_q = q.clone();
    let submitted = Arc::new(AtomicU32::new(0));
    let submitted2 = Arc::clone(&submitted);
    let b = Buffer::<u32>::new(64);
    let v = b.view();
    let t = std::thread::spawn(move || {
        submitted2.store(1, Ordering::Release);
        worker_q
            .try_parallel_for("retried", Range::d1(64), move |it| v.set(it.gid(0), 1))
            .expect("two bursts fit a three-attempt budget")
    });
    while submitted.load(Ordering::Acquire) == 0 {
        std::hint::spin_loop();
    }
    // Land inside the first 150 ms backoff window (attempt 1 fails
    // immediately; the kernel cannot have run yet), then wait.
    std::thread::sleep(Duration::from_millis(50));
    q.wait();
    // The snapshot taken right after wait() returns must already hold
    // the completed launch; an early return mid-backoff reads zeros.
    let snapshot = b.to_vec();
    assert!(
        snapshot.iter().all(|&x| x == 1),
        "wait() returned while a retried attempt was still backing off"
    );
    let e = t.join().unwrap();
    assert_eq!(
        e.resilience().faults_absorbed,
        2,
        "the run must actually have exercised the backoff cycle"
    );
}

/// A fired cancellation token stops an in-flight launch at the next
/// group boundary with a typed error, and the queue (and pool) stay
/// usable afterwards.
#[test]
fn cancel_token_stops_launch_mid_run_and_queue_survives() {
    let token = CancelToken::new();
    let q = Queue::new(Device::cpu())
        .with_parallelism(Parallelism::Sequential)
        .with_cancel_token(Some(token.clone()));
    let worker_q = q.clone();
    let started = Arc::new(AtomicU32::new(0));
    let started2 = Arc::clone(&started);
    let t = std::thread::spawn(move || {
        worker_q.nd_range("slow", NdRange::d1(64, 1), move |_ctx| {
            started2.store(1, Ordering::Release);
            std::thread::sleep(Duration::from_millis(5));
        })
    });
    while started.load(Ordering::Acquire) == 0 {
        std::hint::spin_loop();
    }
    token.cancel();
    let e = t.join().unwrap().unwrap_err();
    assert_eq!(e, Error::Canceled { kernel: "slow" });

    // Same queue, fresh token slot: clean work still runs.
    let q = q.with_cancel_token(None);
    let b = Buffer::<u32>::new(128);
    let v = b.view();
    q.parallel_for("clean", Range::d1(128), move |it| v.set(it.gid(0), 1));
    assert!(b.to_vec().iter().all(|&x| x == 1));
}

/// Cancellation cuts a retry backoff short: a launch stuck in a long
/// deterministic backoff sequence returns `Canceled` promptly instead of
/// sleeping out its full budget.
#[test]
fn cancel_token_cuts_retry_backoff_short() {
    let token = CancelToken::new();
    let plan = Arc::new(FaultPlan::transient_burst(1000));
    let q = Queue::new(Device::cpu())
        .with_fault_plan(Some(plan))
        .with_cancel_token(Some(token.clone()))
        .with_retry_policy(RetryPolicy {
            max_attempts: 1000,
            backoff: Duration::from_millis(50),
        });
    let t = std::thread::spawn(move || {
        let start = std::time::Instant::now();
        let r = q.try_parallel_for("doomed", Range::d1(16), |_| {});
        (r, start.elapsed())
    });
    std::thread::sleep(Duration::from_millis(60));
    token.cancel();
    let (r, elapsed) = t.join().unwrap();
    assert_eq!(r.unwrap_err(), Error::Canceled { kernel: "doomed" });
    // Far below the multi-second backoff budget the policy would sleep.
    assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
}

/// Graph replay honours the queue's cancellation token on both the fast
/// path (pre-flight check) and stays replayable afterwards.
#[test]
fn canceled_graph_replay_is_typed_and_graph_stays_usable() {
    let q = Queue::new(Device::cpu());
    let b = Buffer::<u32>::new(64);
    let v = b.view();
    let g = Graph::record(&q, |g| {
        let v = v.clone();
        g.parallel_for("fill", Range::d1(64), &[writes(&b)], move |it| {
            v.set(it.gid(0), it.gid(0) as u32 + 1);
        });
    })
    .unwrap();

    let token = CancelToken::new();
    token.cancel();
    let canceled_q = q.clone().with_cancel_token(Some(token));
    let e = g.replay(&canceled_q).unwrap_err();
    assert!(matches!(e, Error::Canceled { .. }), "{e:?}");
    assert!(b.to_vec().iter().all(|&x| x == 0), "canceled replay must not run nodes");

    // The original (token-less) queue replays the same graph cleanly.
    g.replay(&q).unwrap();
    let out = b.to_vec();
    assert!(out.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
}

/// A resilience ledger attached to a queue accounts every launch:
/// retries and absorbed faults on success, typed failures (and
/// cancellations specifically) on error — the per-tenant accounting the
/// serving layer bills on.
#[test]
fn resilience_ledger_accounts_launches_retries_and_cancellations() {
    let ledger = Arc::new(ResilienceLedger::new());
    let plan = Arc::new(FaultPlan::transient_burst(2));
    let q = Queue::new(Device::cpu())
        .with_fault_plan(Some(plan))
        .with_resilience_ledger(Some(Arc::clone(&ledger)))
        .with_retry_policy(RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
        });
    q.try_parallel_for("retried", Range::d1(16), |_| {}).unwrap();
    let s = ledger.snapshot();
    assert_eq!((s.launches, s.attempts, s.faults_absorbed), (1, 3, 2));
    assert_eq!((s.errors, s.canceled), (0, 0));

    let token = CancelToken::new();
    token.cancel();
    let q = q.with_cancel_token(Some(token));
    q.try_parallel_for("canceled", Range::d1(16), |_| {}).unwrap_err();
    let s = ledger.snapshot();
    assert_eq!(s.launches, 2);
    assert_eq!((s.errors, s.canceled), (1, 1));
}
