//! End-to-end tests of the hetero-san dynamic race detector: seeded
//! true-positive kernels (cross-group write/write and read/write races,
//! a missed intra-group barrier, an uninitialised local read) must be
//! detected with the exact same `(kernel, element, kind)` triple on
//! every run, and representative clean kernels — including the group
//! collectives and a cooperative grid launch — must stay silent.

use hetero_rt::executor::Parallelism;
use hetero_rt::group_algorithms::{group_all_of, group_broadcast, group_exclusive_scan, group_reduce};
use hetero_rt::ndrange::FenceSpace;
use hetero_rt::prelude::*;
use hetero_rt::sanitize::take_last_reports;

fn sanitized_queue() -> Queue {
    Queue::new(Device::cpu()).with_sanitizer(true)
}

/// Stable projection of a report: everything except the process-global
/// allocation id (a fresh buffer per run gets a fresh id).
fn triple(r: &hetero_rt::RaceReport) -> (&'static str, usize, RaceKind, usize, Option<usize>) {
    (r.kernel, r.element, r.kind, r.group, r.other_group)
}

/// Two work-groups writing the same global element is the canonical
/// unsynchronised race. The detector must name the exact element and
/// the two *smallest* involved groups, independent of pool scheduling.
#[test]
fn seeded_write_write_race_is_detected_deterministically() {
    let mut runs = Vec::new();
    for _ in 0..2 {
        for par in [Parallelism::Sequential, Parallelism::Auto] {
            let q = sanitized_queue().with_parallelism(par);
            let b = Buffer::<u32>::new(8);
            let v = b.view();
            let e = q
                .nd_range("racy", NdRange::d1(64 * 16, 16), move |ctx| {
                    // Every group writes element 0 — 64-way conflict.
                    v.set(0, ctx.group_linear() as u32);
                })
                .unwrap_err();
            assert!(
                matches!(
                    e,
                    Error::DataRace { kernel: "racy", element: 0, kind: RaceKind::WriteWrite }
                ),
                "{par:?}: {e:?}"
            );
            let reports = take_last_reports();
            assert_eq!(reports.len(), 1, "one racy element → one report: {reports:?}");
            runs.push(triple(&reports[0]));
        }
    }
    // Identical triple on every run and both execution modes: the two
    // smallest of the 64 racing groups.
    assert!(runs.iter().all(|t| *t == ("racy", 0, RaceKind::WriteWrite, 0, Some(1))), "{runs:?}");
}

/// One group writes an element other groups read: a read/write conflict
/// (groups are unordered, so the readers may observe either value).
#[test]
fn seeded_read_write_race_is_detected() {
    let q = sanitized_queue();
    let b = Buffer::<u32>::new(8);
    let v = b.view();
    let e = q
        .nd_range("rw_racy", NdRange::d1(4 * 8, 8), move |ctx| {
            if ctx.group_linear() == 3 {
                v.set(5, 7);
            } else {
                std::hint::black_box(v.get(5));
            }
        })
        .unwrap_err();
    assert!(
        matches!(e, Error::DataRace { kernel: "rw_racy", element: 5, kind: RaceKind::ReadWrite }),
        "{e:?}"
    );
    let reports = take_last_reports();
    assert_eq!(triple(&reports[0]), ("rw_racy", 5, RaceKind::ReadWrite, 0, Some(3)));
}

/// All work-items of one group store to the same local slot within a
/// single barrier phase — concurrent on real hardware, silently
/// serialised here. The detector reports the missed barrier once.
#[test]
fn seeded_missed_barrier_is_detected_deterministically() {
    for _ in 0..2 {
        let q = sanitized_queue();
        let e = q
            .nd_range("no_barrier", NdRange::d1(32, 32), move |ctx| {
                let l = ctx.local_array::<u32>(4);
                ctx.items(|it| l.set(0, it.lid(0) as u32));
            })
            .unwrap_err();
        assert!(
            matches!(
                e,
                Error::DataRace { kernel: "no_barrier", element: 0, kind: RaceKind::MissedBarrier }
            ),
            "{e:?}"
        );
        let reports = take_last_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(triple(&reports[0]), ("no_barrier", 0, RaceKind::MissedBarrier, 0, None));
        assert_eq!(reports[0].space, MemSpace::Local);
        assert_eq!(reports[0].phase, Some(0));
    }
}

/// The classic tree reduction is exactly the seeded missed-barrier
/// kernel *fixed*: distinct slots per item, a barrier between write and
/// read phases. It must run clean under the sanitizer.
#[test]
fn barrier_separated_tree_reduction_is_clean() {
    let q = sanitized_queue();
    let b = Buffer::<u32>::new(4);
    let v = b.view();
    q.nd_range("tree_reduce", NdRange::d1(4 * 8, 8), move |ctx| {
        let l = ctx.local_array::<u32>(8);
        ctx.items(|it| l.set(it.lid(0), it.gid(0) as u32));
        let mut stride = 4;
        while stride > 0 {
            ctx.barrier(FenceSpace::Local);
            ctx.items(|it| {
                let lid = it.lid(0);
                if lid < stride {
                    l.set(lid, l.get(lid) + l.get(lid + stride));
                }
            });
            stride /= 2;
        }
        v.set(ctx.group_linear(), l.get(0));
    })
    .expect("barrier-separated reduction must be race-free");
    assert_eq!(b.to_vec(), vec![28, 92, 156, 220]);
}

/// Local (shared) memory is not zero-initialised by SYCL; reading a
/// never-written element is a portability bug this runtime would
/// otherwise mask by zero-filling.
#[test]
fn seeded_uninitialised_local_read_is_detected() {
    let q = sanitized_queue();
    let e = q
        .nd_range("uninit", NdRange::d1(8, 8), move |ctx| {
            let l = ctx.local_array::<u32>(4);
            ctx.items(|it| {
                if it.lid(0) == 0 {
                    std::hint::black_box(l.get(3));
                }
            });
        })
        .unwrap_err();
    assert!(
        matches!(e, Error::DataRace { kernel: "uninit", element: 3, kind: RaceKind::UninitRead }),
        "{e:?}"
    );
    assert_eq!(triple(&take_last_reports()[0]), ("uninit", 3, RaceKind::UninitRead, 0, None));
}

/// Atomic accumulation across groups is the sanctioned way to share a
/// global element; atomics must never be flagged against each other.
#[test]
fn cross_group_atomics_are_not_a_race() {
    let q = sanitized_queue();
    let b = Buffer::<u32>::new(1);
    let v = b.view();
    q.nd_range("atomic_acc", NdRange::d1(16 * 8, 8), move |ctx| {
        ctx.items(|it| {
            std::hint::black_box(it);
            v.atomic_add_u32(0, 1);
        });
    })
    .expect("atomic-only sharing is race-free");
    assert_eq!(b.to_vec()[0], 128);
}

/// ...but a plain write racing another group's atomics is still a
/// write/write conflict.
#[test]
fn plain_write_vs_atomic_is_detected() {
    let q = sanitized_queue();
    let b = Buffer::<u32>::new(1);
    let v = b.view();
    let e = q
        .nd_range("mixed", NdRange::d1(4 * 4, 4), move |ctx| {
            if ctx.group_linear() == 2 {
                v.set(0, 0);
            } else {
                v.atomic_add_u32(0, 1);
            }
        })
        .unwrap_err();
    assert!(
        matches!(e, Error::DataRace { kernel: "mixed", element: 0, kind: RaceKind::WriteWrite }),
        "{e:?}"
    );
}

/// The group collectives run in uniform context (one thread legitimately
/// walks every item's private slot); they must be race-free under the
/// sanitizer, pinning the uniform-context exemption.
#[test]
fn group_collectives_run_clean_under_sanitizer() {
    let q = sanitized_queue();
    let out = Buffer::<u32>::new(4 * 3);
    let ov = out.view();
    q.nd_range("collectives", NdRange::d1(4 * 16, 16), move |ctx| {
        let vals = ctx.private_array::<u32>();
        let flags = ctx.private_array::<bool>();
        ctx.items(|it| {
            vals.set(it.lid(0), it.lid(0) as u32);
            flags.set(it.lid(0), true);
        });
        ctx.barrier(FenceSpace::Local);
        let g = ctx.group_linear();
        ov.set(g * 3, group_reduce(ctx, &vals, 0, |a, b| a + b));
        ov.set(g * 3 + 1, group_broadcast(ctx, &vals, 5));
        let scanned = group_exclusive_scan(ctx, &vals, 0, |a, b| a + b);
        ov.set(g * 3 + 2, scanned.get(15) + u32::from(group_all_of(ctx, &flags)));
    })
    .expect("collectives must be race-free under the sanitizer");
    let got = out.to_vec();
    for g in 0..4 {
        assert_eq!(&got[g * 3..g * 3 + 3], &[120, 5, 106]);
    }
}

/// A cooperative (grid-synchronised) ping-pong runs each grid phase as
/// its own launch; per-launch race scoping must keep the cross-phase
/// reads clean while still checking within each phase.
#[test]
fn cooperative_grid_phases_run_clean_under_sanitizer() {
    let q = sanitized_queue();
    let n = 64;
    let a = Buffer::<f32>::from_slice(&vec![1.0f32; n]);
    let bb = Buffer::<f32>::new(n);
    let (av, bv) = (a.view(), bb.view());
    q.nd_range_cooperative("ping_pong", NdRange::d1(n, 16), move |grid| {
        for step in 0..4 {
            let (src, dst) =
                if step % 2 == 0 { (av.clone(), bv.clone()) } else { (bv.clone(), av.clone()) };
            grid.items(move |it| {
                let i = it.global_linear;
                dst.set(i, src.get(i) * 2.0);
            });
            grid.sync();
        }
    })
    .expect("grid phases write disjoint elements — race-free");
    assert!(a.to_vec().iter().all(|&x| x == 16.0));
}

/// `HETERO_RT_SANITIZE` seeds the queue default; `with_sanitizer` both
/// overrides it and is introspectable.
#[test]
fn sanitizer_toggle_is_explicit_and_introspectable() {
    let q = Queue::new(Device::cpu());
    // Env is unset in the test harness: default off, opt-in works.
    assert!(!q.sanitizer_enabled());
    assert!(q.with_sanitizer(true).sanitizer_enabled());

    // With the sanitizer off, the seeded racy kernel is (wrongly but
    // silently) accepted — demonstrating the detector is the only thing
    // standing between this bug class and a clean exit code.
    let q = Queue::new(Device::cpu()).with_sanitizer(false);
    let b = Buffer::<u32>::new(1);
    let v = b.view();
    q.nd_range("racy_unchecked", NdRange::d1(8 * 4, 4), move |ctx| {
        v.set(0, ctx.group_linear() as u32);
    })
    .expect("without the sanitizer the race is silent");
}
