//! Integration tests for the silent-data-corruption defense: seeded
//! bit-flip injection, page-checksum detection at launch boundaries, the
//! idle-time scrubber, and redundant execution with digest voting.
//!
//! Arming the integrity layer is process-global, so these tests live in
//! their own integration-test binary (own process, isolated from the
//! crate's unit tests) and serialize on one mutex. Each test arms
//! through the RAII [`Armed`] guard so a panic still disarms.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use hetero_rt::executor::Parallelism;
use hetero_rt::fault::FaultKind;
use hetero_rt::integrity;
use hetero_rt::{
    Buffer, Device, Error, FaultPlan, Queue, Range, Redundancy, RetryPolicy,
};

fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| {
        // The process-wide pool sizes itself once; on a single-core host
        // that means zero parked workers and no idle scrubber. Pin a
        // small fixed pool before first use (same pattern as tests/pool.rs).
        if std::env::var_os("HETERO_RT_THREADS").is_none() {
            std::env::set_var("HETERO_RT_THREADS", "4");
        }
        Mutex::new(())
    })
    .lock()
    .unwrap_or_else(PoisonError::into_inner)
}

/// Arms the integrity layer for one test; disarms and drains parked
/// scrubber reports on drop (even on panic).
struct Armed;

impl Armed {
    fn new() -> Self {
        integrity::arm();
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        integrity::disarm();
        let _ = integrity::take_scrub_reports();
    }
}

#[test]
fn targeted_flip_detected_at_exact_region_and_page() {
    let _g = serial();
    let _a = Armed::new();
    let q = Queue::new(Device::cpu()).with_integrity(true);
    let b = Buffer::<u32>::new(600); // 2400 B -> pages 0..=2
    // Flip bit 2 of byte 1500: page 1 of this exact region.
    let plan = Arc::new(FaultPlan::flip_at(b.object_id(), 1500, 2));
    let q = q.with_fault_plan(Some(Arc::clone(&plan)));
    // Default policy = 1 attempt, so entry verification surfaces the
    // corruption as a typed error naming region, page, and seal epoch.
    let err = q.try_parallel_for("probe", Range::d1(1), |_| {}).unwrap_err();
    assert_eq!(
        err,
        Error::DataCorruption { region: b.object_id(), page: 1, epoch: 1 }
    );
    assert_eq!(plan.flips_injected(), 1);
    // Detect-once: the offender was resealed, so a clean retry passes.
    let e = q.try_parallel_for("again", Range::d1(1), |_| {}).unwrap();
    assert_eq!(e.resilience().faults_absorbed, 0);
}

#[test]
fn detection_is_absorbed_by_retry_budget() {
    let _g = serial();
    let _a = Armed::new();
    let q = Queue::new(Device::cpu())
        .with_integrity(true)
        .with_retry_policy(RetryPolicy::resilient());
    let b = Buffer::<f32>::new(256);
    let plan = Arc::new(FaultPlan::flip_at(b.object_id(), 100, 7));
    let q = q.with_fault_plan(Some(plan));
    let before = integrity::detections_total();
    let v = b.view();
    let e = q
        .try_parallel_for("heal", Range::d1(256), move |it| v.set(it.gid(0), 1.0))
        .unwrap();
    assert!(e.resilience().attempts >= 2);
    assert!(e.resilience().faults_absorbed >= 1);
    assert_eq!(integrity::detections_total() - before, 1);
    assert!(b.to_vec().iter().all(|&x| x == 1.0));
}

#[test]
fn scrubber_finds_host_corruption_between_launches() {
    let _g = serial();
    let _a = Armed::new();
    let b = Buffer::<u64>::new(300); // 2400 B, sealed at registration
    // Raw view writes from host code are deliberately unhooked: the
    // documented corruption primitive.
    b.view().set(200, 0xDEAD); // byte 1600 -> page 1
    let reports = integrity::scrub_now();
    assert!(
        reports
            .iter()
            .any(|v| v.region == b.object_id() && v.page == 1),
        "scrub_now should localize the flip: {reports:?}"
    );
    // Detect-once again: a second sweep is clean.
    assert!(integrity::scrub_now().is_empty());
}

#[test]
fn parked_pool_workers_scrub_while_idle() {
    let _g = serial();
    let _a = Armed::new();
    // Spin up pool workers with a parallel launch, then corrupt a sealed
    // region and wait for an idle worker to park a violation.
    let q = Queue::new(Device::cpu()).with_parallelism(Parallelism::Threads(2));
    q.try_parallel_for("warm", Range::d1(2048), |_| {}).unwrap();
    let b = Buffer::<u32>::new(1024);
    b.view().set(10, 77);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut found = Vec::new();
    while Instant::now() < deadline {
        found = integrity::take_scrub_reports();
        if !found.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        found.iter().any(|v| v.region == b.object_id() && v.page == 0),
        "idle scrubber should find the flip within its park cadence: {found:?}"
    );
}

#[test]
fn dmr_outvotes_exit_window_flips() {
    let _g = serial();
    let _a = Armed::new();
    let mut corrected_runs = 0u32;
    for seed in 1..=30u64 {
        let plan = Arc::new(FaultPlan::new(seed, 0.7).with_kinds(&[FaultKind::BitFlip]));
        let q = Queue::new(Device::cpu())
            .with_integrity(true)
            .with_redundancy(Redundancy::Dmr)
            .with_retry_policy(RetryPolicy::resilient())
            .with_fault_plan(Some(plan));
        let b = Buffer::<u32>::new(512);
        let v = b.view();
        let r = q.try_parallel_for("vote", Range::d1(512), move |it| {
            v.set(it.gid(0), it.gid(0) as u32 * 3 + 1);
        });
        match r {
            Ok(e) => {
                let res = e.resilience();
                assert!(res.replicas >= 2, "DMR must run at least two replicas");
                if res.divergences_corrected > 0 {
                    corrected_runs += 1;
                }
                // An accepted vote is the *correct* output, always: the
                // minority (flipped) digest lost.
                let out = b.to_vec();
                assert!(
                    out.iter().enumerate().all(|(i, &x)| x == i as u32 * 3 + 1),
                    "seed {seed}: accepted output must be the agreed clean run"
                );
            }
            // Exhausted budgets are loud, never silent.
            Err(Error::ReplicaDivergence { .. }) | Err(Error::DataCorruption { .. }) => {}
            Err(e) => panic!("seed {seed}: unexpected error {e}"),
        }
    }
    assert!(
        corrected_runs >= 3,
        "expected several seeds to exercise the vote-and-correct path, got {corrected_runs}"
    );
}

#[test]
fn replica_divergence_is_typed_when_digests_never_converge() {
    let _g = serial();
    let _a = Armed::new();
    // Rate 1.0: every replica takes an exit-window flip at a fresh
    // sequenced site, so digests can never reach a 2-vote agreement.
    let plan = Arc::new(FaultPlan::new(99, 1.0).with_kinds(&[FaultKind::BitFlip]));
    let q = Queue::new(Device::cpu())
        .with_integrity(true)
        .with_redundancy(Redundancy::Dmr)
        .with_retry_policy(RetryPolicy::resilient())
        .with_fault_plan(Some(plan));
    let b = Buffer::<u32>::new(2048);
    let v = b.view();
    let err = q
        .try_parallel_for("never", Range::d1(16), move |it| v.set(it.gid(0), 1))
        .unwrap_err();
    // Budget = need (2) + retries (2) = 4 replica runs.
    assert_eq!(err, Error::ReplicaDivergence { kernel: "never", runs: 4 });
}

#[test]
fn stuck_page_survives_voting_but_never_silently() {
    let _g = serial();
    let _a = Armed::new();
    let plan = Arc::new(FaultPlan::new(5, 1.0).with_kinds(&[FaultKind::StuckPage]));
    let q = Queue::new(Device::cpu())
        .with_integrity(true)
        .with_redundancy(Redundancy::Dmr)
        .with_retry_policy(RetryPolicy::resilient())
        .with_fault_plan(Some(Arc::clone(&plan)));
    let b = Buffer::<u8>::new(4096);
    let v = b.view();
    q.try_parallel_for("s1", Range::d1(4096), move |it| v.set(it.gid(0), 0))
        .unwrap();
    // The stuck-at page was OR-masked onto the sealed exit image.
    assert!(plan.stuck_applications() >= 1);
    assert!(b.to_vec().iter().any(|&x| x != 0));
    // The next launch's entry verification sees it — deterministic
    // corruption is detectable even though replicas agree on it.
    let before = integrity::detections_total();
    let v2 = b.view();
    let e = q
        .try_parallel_for("s2", Range::d1(1), move |it| {
            let _ = v2.get(it.gid(0));
        })
        .unwrap();
    assert!(integrity::detections_total() > before);
    assert!(e.resilience().faults_absorbed >= 1);
}

#[test]
fn armed_rate_zero_launches_stay_clean() {
    let _g = serial();
    let _a = Armed::new();
    let q = Queue::new(Device::cpu())
        .with_integrity(true)
        .with_redundancy(Redundancy::Dmr)
        .with_fault_plan(Some(Arc::new(FaultPlan::sdc(3, 0.0))));
    let b = Buffer::<f32>::new(1000);
    let before = integrity::detections_total();
    for round in 0..5 {
        // Coarse host writes between launches reseal; they must never
        // read as corruption.
        b.write(|s| s[0] = round as f32);
        let v = b.view();
        let e = q
            .try_parallel_for("clean", Range::d1(1000), move |it| {
                v.set(it.gid(0), v.get(it.gid(0)) + 1.0);
            })
            .unwrap();
        assert_eq!(e.resilience().faults_absorbed, 0);
        assert_eq!(e.resilience().divergences_corrected, 0);
        assert_eq!(e.resilience().replicas, 2);
    }
    assert_eq!(integrity::detections_total(), before);
    let stats = integrity::stats();
    assert!(stats.regions_verified > 0);
}

#[test]
fn usm_and_buffer_host_apis_keep_protection_coherent() {
    let _g = serial();
    let _a = Armed::new();
    let q = Queue::new(Device::cpu()).with_integrity(true);
    let mut u = q.alloc_usm::<u32>(hetero_rt::usm::UsmKind::Shared, 512).unwrap();
    let b = Buffer::<u32>::new(512);
    // USM hot writes unseal (no false positive), buffer coarse writes
    // reseal (protection stays active).
    u.set(5, 42);
    b.try_write_from(&vec![7u32; 512]).unwrap();
    assert!(integrity::verify_all().is_ok());
    let e = q.try_parallel_for("touch", Range::d1(1), |_| {}).unwrap();
    assert_eq!(e.resilience().faults_absorbed, 0);
    // After the launch-exit reseal, USM is protected again: a raw
    // region write would now be caught (exercised via the buffer's view
    // primitive on the buffer region).
    b.view().set(100, 1);
    let err = q.try_parallel_for("catch", Range::d1(1), |_| {}).unwrap_err();
    assert!(matches!(err, Error::DataCorruption { region, .. } if region == b.object_id()));
    let _ = u.as_slice();
}
