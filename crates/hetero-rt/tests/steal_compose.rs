//! Composition tests for the work-stealing data path: stealing must not
//! weaken any contract the shared-counter pool upheld. A panicking chunk
//! still cancels the whole job (every deque drains, done-accounting
//! stays exact, the pool survives); the race sanitizer reports the same
//! `(kernel, element, kind)` triple no matter which worker stole which
//! span — including through the lane accessors, which record the same
//! per-element accesses as the scalar path; and graph replay's stealable
//! node sweeps stay bit-equal to the per-launch execution of the same
//! kernels across many fast-path replays.

use std::sync::atomic::{AtomicUsize, Ordering};

use hetero_rt::executor::Parallelism;
use hetero_rt::prelude::*;
use hetero_rt::sanitize::take_last_reports;
use hetero_rt::{pool, RaceKind};

/// A chunk panic mid-job cancels the remaining spans of *every* deque:
/// the catch variant returns the payload promptly, the done-accounting
/// still completes the job exactly once, and the pool keeps scheduling
/// clean jobs afterwards. Repeated so the panicking chunk lands on
/// owners and thieves in different interleavings.
#[test]
fn chunk_panic_under_stealing_drains_every_deque_and_pool_survives() {
    let threads = pool::auto_threads();
    for round in 0..25 {
        let trip = 997 * (round + 1); // lands in a different span each round
        let (_, payload) = pool::run_job_catch(1_000_000, threads, &|s, e| {
            if (s..e).contains(&trip) {
                panic!("boom");
            }
            std::hint::black_box(e - s);
        });
        let payload = payload.expect("the panicking chunk must surface its payload");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));

        // The pool must be fully reusable with exact coverage: every
        // index of a follow-up job runs exactly once.
        let hits = AtomicUsize::new(0);
        pool::run_job(100_000, threads, &|s, e| {
            hits.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100_000, "round {round}");
    }
}

/// The canonical write/write race must be reported with the identical
/// stable triple on every run under the stealing scheduler — which
/// spans were stolen by whom must not leak into the report.
#[test]
fn race_report_is_identical_across_stolen_schedules() {
    let mut triples = Vec::new();
    for _ in 0..10 {
        let q = Queue::new(Device::cpu()).with_sanitizer(true).with_parallelism(Parallelism::Auto);
        let b = Buffer::<u32>::new(16);
        let v = b.view();
        let e = q
            .nd_range("steal_racy", NdRange::d1(64 * 16, 16), move |ctx| {
                v.set(3, ctx.group_linear() as u32);
            })
            .unwrap_err();
        assert!(matches!(
            e,
            Error::DataRace { kernel: "steal_racy", element: 3, kind: RaceKind::WriteWrite }
        ));
        let reports = take_last_reports();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        triples.push((r.kernel, r.element, r.kind, r.group, r.other_group));
    }
    assert!(
        triples.windows(2).all(|w| w[0] == w[1]),
        "race triple must not depend on the steal schedule: {triples:?}"
    );
}

/// Lane accessors record the same per-element sanitizer accesses as the
/// scalar path: the same conflicting write reported through `set_lanes`
/// and through eight scalar `set`s must yield the same stable triple.
#[test]
fn lane_accessors_report_races_identically_to_scalar_writes() {
    let run = |lane: bool| {
        let q = Queue::new(Device::cpu()).with_sanitizer(true);
        let b = Buffer::<u32>::new(hetero_rt::LANES * 2);
        let v = b.view();
        let name = if lane { "lane_racy" } else { "scalar_racy" };
        // Every group writes the same 8-element block.
        let e = q
            .nd_range(name, NdRange::d1(8 * 4, 4), move |ctx| {
                let g = ctx.group_linear() as u32;
                if lane {
                    v.set_lanes(0, [g; hetero_rt::LANES]);
                } else {
                    for k in 0..hetero_rt::LANES {
                        v.set(k, g);
                    }
                }
            })
            .unwrap_err();
        assert!(matches!(e, Error::DataRace { kind: RaceKind::WriteWrite, .. }), "{name}: {e:?}");
        let reports = take_last_reports();
        assert!(!reports.is_empty());
        reports.iter().map(|r| (r.element, r.kind, r.group, r.other_group)).collect::<Vec<_>>()
    };
    let lane_reports = run(true);
    let scalar_reports = run(false);
    assert_eq!(
        lane_reports, scalar_reports,
        "lane and scalar writes must produce identical race reports"
    );
}

/// Graph replay's per-node span sweeps are stealable; the fast path must
/// still be bit-equal to launching the same kernels per-launch, replay
/// after replay. The kernel mixes index-sensitive integer state so any
/// dropped, duplicated, or misattributed chunk changes the output.
#[test]
fn replay_with_stealable_spans_stays_bit_equal_to_per_launch() {
    let n = 4096;
    let q = Queue::new(Device::cpu()).with_fault_plan(None).with_sanitizer(false);

    let src = Buffer::<u32>::from_slice(
        &(0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect::<Vec<_>>(),
    );
    let mid = Buffer::<u32>::new(n);
    let out = Buffer::<u32>::new(n);

    let mix = |x: u32, i: u32| x.rotate_left(7).wrapping_add(i).wrapping_mul(0x85EB_CA6B);
    let (sv, mv) = (src.view(), mid.view());
    let (mv2, ov) = (mid.view(), out.view());
    let graph = Graph::record(&q, |g| {
        g.parallel_for("sc_mix", Range::d1(n), &[reads(&src), writes(&mid)], move |it| {
            let i = it.gid(0);
            mv.set(i, mix(sv.get(i), i as u32));
        })
        .parallel_for("sc_fold", Range::d1(n), &[reads(&mid), writes(&out)], move |it| {
            let i = it.gid(0);
            let left = if i == 0 { 0 } else { mv2.get(i - 1) };
            ov.set(i, mv2.get(i).wrapping_add(left.rotate_right(3)));
        });
    })
    .unwrap();

    // Per-launch reference, computed once on the host.
    let host_src: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let host_mid: Vec<u32> =
        host_src.iter().enumerate().map(|(i, &x)| mix(x, i as u32)).collect();
    let expect: Vec<u32> = (0..n)
        .map(|i| {
            let left = if i == 0 { 0 } else { host_mid[i - 1] };
            host_mid[i].wrapping_add(left.rotate_right(3))
        })
        .collect();

    for round in 1..=20 {
        graph.replay(&q).unwrap();
        let got: Vec<u32> = (0..n).map(|i| out.view().get(i)).collect();
        assert_eq!(got, expect, "replay {round} diverged from the per-launch reference");
    }
    assert!(graph.fast_replays() > 0, "disarmed queue should take the fast path");
}
