//! `serve` — the benchmark service front-end.
//!
//! Speaks the line-delimited JSON protocol (see `hetero_serve::protocol`)
//! over stdin/stdout by default, or over a Unix domain socket with
//! `--socket PATH` (one connection per client thread, shared scheduler).
//!
//! Usage:
//! ```text
//! serve [--socket PATH] [--workers N] [--capacity N] [--tenant-quota N]
//!       [--breaker-open-after N] [--breaker-cooldown-ms MS]
//!       [--quarantine-after N] [--default-deadline-ms MS]
//! ```
//!
//! Requests are one JSON object per line. Besides job requests, two
//! control commands are understood:
//!
//! * `{"cmd":"stats"}` — emit the scheduler counters as one JSON line;
//! * `{"cmd":"drain"}` — shed everything still queued, finish running
//!   jobs, emit final stats, and (stdin mode) exit.
//!
//! Responses carry the submitting line's `id`; on stdin they interleave
//! in completion order, so clients correlate by id, not by order.

use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hetero_serve::json::{self, Json};
use hetero_serve::protocol::JobRequest;
use hetero_serve::{MonotonicClock, ResultSink, Scheduler, ServeConfig, ServeStats};

fn stats_line(s: &ServeStats) -> String {
    format!(
        "{{\"stats\":{{\"submitted\":{},\"completed\":{},\"corrected\":{},\
         \"quarantined\":{},\"rejected\":{},\"shed\":{},\"deadline\":{},\
         \"unaccounted\":{},\"uncontained\":{},\"degraded\":{},\"breaker_trips\":{}}}}}",
        s.submitted,
        s.completed,
        s.corrected,
        s.quarantined,
        s.rejected,
        s.shed,
        s.deadline,
        s.unaccounted(),
        s.uncontained,
        s.degraded,
        s.breaker_trips,
    )
}

/// Handle one protocol line. Returns false when the connection should
/// close (a drain request).
fn handle_line(
    line: &str,
    scheduler: &Scheduler,
    sink: &ResultSink,
    errors: &AtomicU64,
    reply: &dyn Fn(String),
) -> bool {
    let line = line.trim();
    if line.is_empty() {
        return true;
    }
    let parsed = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            errors.fetch_add(1, Ordering::Relaxed);
            reply(format!("{{\"error\":\"bad json: {}\"}}", json::escape(&e)));
            return true;
        }
    };
    match parsed.get("cmd").and_then(Json::as_str) {
        Some("stats") => {
            reply(stats_line(&scheduler.stats()));
            return true;
        }
        Some("drain") => {
            scheduler.shutdown();
            reply(stats_line(&scheduler.stats()));
            return false;
        }
        Some(other) => {
            errors.fetch_add(1, Ordering::Relaxed);
            reply(format!(
                "{{\"error\":\"unknown cmd '{}'\"}}",
                json::escape(other)
            ));
            return true;
        }
        None => {}
    }
    match JobRequest::from_json(&parsed) {
        Ok(req) => scheduler.submit(req, sink.clone()),
        Err(e) => {
            errors.fetch_add(1, Ordering::Relaxed);
            reply(format!("{{\"error\":\"{}\"}}", json::escape(&e)));
        }
    }
    true
}

fn run_stdin(scheduler: Arc<Scheduler>) {
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    let out = stdout.clone();
    let sink: ResultSink = Arc::new(move |res| {
        let mut o = out.lock().unwrap();
        let _ = writeln!(o, "{}", res.to_json_line());
        let _ = o.flush();
    });
    let reply = |s: String| {
        let mut o = stdout.lock().unwrap();
        let _ = writeln!(o, "{s}");
        let _ = o.flush();
    };
    let errors = AtomicU64::new(0);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if !handle_line(&line, &scheduler, &sink, &errors, &reply) {
            return; // drained: shutdown already ran
        }
    }
    // EOF: finish queued work, then report.
    scheduler.wait_idle();
    scheduler.shutdown();
    reply(stats_line(&scheduler.stats()));
}

fn run_socket(scheduler: Arc<Scheduler>, path: &str) {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).unwrap_or_else(|e| {
        eprintln!("serve: cannot bind '{path}': {e}");
        std::process::exit(1);
    });
    eprintln!("serve: listening on {path}");
    let mut handles = Vec::new();
    for conn in listener.incoming() {
        let Ok(stream) = conn else { break };
        let scheduler = scheduler.clone();
        handles.push(std::thread::spawn(move || {
            let writer = Arc::new(Mutex::new(
                stream.try_clone().expect("clone unix stream"),
            ));
            let out = writer.clone();
            let sink: ResultSink = Arc::new(move |res| {
                let mut o = out.lock().unwrap();
                let _ = writeln!(o, "{}", res.to_json_line());
            });
            let reply = |s: String| {
                let mut o = writer.lock().unwrap();
                let _ = writeln!(o, "{s}");
            };
            let errors = AtomicU64::new(0);
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if !handle_line(&line, &scheduler, &sink, &errors, &reply) {
                    // A drain over a socket stops the whole server; the
                    // accept loop ends when the process exits.
                    std::process::exit(0);
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut socket: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let num = |it: &mut std::slice::Iter<String>| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("serve: '{a}' needs a numeric argument");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--socket" => socket = it.next().cloned(),
            "--workers" => cfg.workers = num(&mut it) as usize,
            "--capacity" => cfg.queue_capacity = num(&mut it) as usize,
            "--tenant-quota" => cfg.tenant_queued_limit = num(&mut it),
            "--breaker-open-after" => cfg.breaker_open_after = num(&mut it) as u32,
            "--breaker-cooldown-ms" => cfg.breaker_cooldown_ms = num(&mut it),
            "--quarantine-after" => cfg.quarantine_after = num(&mut it),
            "--default-deadline-ms" => cfg.default_deadline_ms = Some(num(&mut it)),
            other => {
                eprintln!("serve: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let scheduler = Arc::new(Scheduler::new(cfg, Arc::new(MonotonicClock::new())));
    match socket {
        Some(path) => run_socket(scheduler, &path),
        None => run_stdin(scheduler),
    }
}
