//! Per-route circuit breakers.
//!
//! The scheduler keeps one breaker per `(app, device)` route. A route
//! that keeps producing containment-class failures — `KernelPanicked`
//! or `DataCorruption` verdicts — stops being dispatched: non-CPU
//! routes degrade to a CPU queue with [`hetero_rt::Fallback::Cpu`],
//! CPU routes are rejected outright. After a cooldown the breaker
//! admits a single probe job (half-open); a clean probe closes the
//! breaker, a failed probe re-opens it for another cooldown.
//!
//! All transitions are functions of `(recorded outcomes, now_ms)` only,
//! so under a [`crate::clock::ManualClock`] the state machine is fully
//! deterministic — pinned by the tests below and by
//! `tests/isolation.rs`.

/// Breaker state, exposed for tests and stats reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Route healthy; jobs flow, consecutive failures are counted.
    Closed,
    /// Route disabled until the cooldown elapses.
    Open,
    /// Cooldown elapsed; exactly one probe is in flight.
    HalfOpen,
}

/// What the breaker says about dispatching one job now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Dispatch normally.
    Allow,
    /// Dispatch as the half-open probe (caller must report the outcome,
    /// like any other job — the probe's verdict decides open vs closed).
    AllowProbe,
    /// Route is open: degrade or reject.
    Deny,
}

/// One route's breaker. Not internally synchronized: the scheduler
/// holds its breaker map under a mutex, which is also what makes
/// check-then-dispatch atomic.
#[derive(Debug)]
pub struct Breaker {
    open_after: u32,
    cooldown_ms: u64,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ms: u64,
    /// Lifetime count of times this breaker opened (stats).
    trips: u64,
}

impl Breaker {
    /// A closed breaker that opens after `open_after` consecutive
    /// breaker-class failures and cools down for `cooldown_ms`.
    pub fn new(open_after: u32, cooldown_ms: u64) -> Self {
        Breaker {
            open_after: open_after.max(1),
            cooldown_ms,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_ms: 0,
            trips: 0,
        }
    }

    /// Current state, advancing `Open -> HalfOpen` if the cooldown has
    /// elapsed at `now_ms`.
    pub fn state(&mut self, now_ms: u64) -> BreakerState {
        if self.state == BreakerState::Open
            && now_ms.saturating_sub(self.opened_at_ms) >= self.cooldown_ms
        {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// Decide whether one job may dispatch on this route at `now_ms`.
    /// An `AllowProbe` moves the breaker out of half-open (back to
    /// `Open` bookkeeping-wise) so concurrent callers cannot both be
    /// "the" probe; the probe's recorded outcome decides what follows.
    pub fn admit(&mut self, now_ms: u64) -> BreakerDecision {
        match self.state(now_ms) {
            BreakerState::Closed => BreakerDecision::Allow,
            BreakerState::Open => BreakerDecision::Deny,
            BreakerState::HalfOpen => {
                // Re-stamp the cooldown: if the probe hangs until its
                // deadline, the route self-heals into another probe one
                // cooldown later instead of staying stuck half-open.
                self.state = BreakerState::Open;
                self.opened_at_ms = now_ms;
                BreakerDecision::AllowProbe
            }
        }
    }

    /// Record one dispatched job's outcome. `breaker_failure` means a
    /// containment-class verdict (`KernelPanicked` / `DataCorruption`);
    /// everything else — including deadline cancellations and admission
    /// rejections, which say nothing about route health — must be
    /// recorded as success=non-failure by the caller.
    pub fn record(&mut self, breaker_failure: bool, now_ms: u64, probe: bool) {
        if breaker_failure {
            self.consecutive_failures += 1;
            if probe || self.consecutive_failures >= self.open_after {
                self.state = BreakerState::Open;
                self.opened_at_ms = now_ms;
                self.consecutive_failures = 0;
                self.trips += 1;
            }
        } else {
            self.consecutive_failures = 0;
            if probe {
                self.state = BreakerState::Closed;
            }
        }
    }

    /// Lifetime number of times this breaker opened.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_probes_after_cooldown() {
        let mut b = Breaker::new(3, 100);
        assert_eq!(b.admit(0), BreakerDecision::Allow);
        b.record(true, 0, false);
        b.record(true, 1, false);
        assert_eq!(b.state(1), BreakerState::Closed);
        b.record(true, 2, false); // third consecutive failure trips it
        assert_eq!(b.state(2), BreakerState::Open);
        assert_eq!(b.admit(50), BreakerDecision::Deny);
        assert_eq!(b.admit(101), BreakerDecision::Deny); // opened at 2, 102 is the edge
        assert_eq!(b.admit(102), BreakerDecision::AllowProbe);
        // Only one probe per cooldown window.
        assert_eq!(b.admit(103), BreakerDecision::Deny);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn clean_probe_closes_failed_probe_reopens() {
        let mut b = Breaker::new(1, 100);
        b.record(true, 0, false);
        assert_eq!(b.admit(100), BreakerDecision::AllowProbe);
        b.record(false, 110, true);
        assert_eq!(b.state(110), BreakerState::Closed);
        assert_eq!(b.admit(110), BreakerDecision::Allow);

        b.record(true, 120, false); // trips again (threshold 1)
        assert_eq!(b.admit(220), BreakerDecision::AllowProbe);
        b.record(true, 230, true); // failed probe: straight back to open
        assert_eq!(b.state(230), BreakerState::Open);
        assert_eq!(b.admit(300), BreakerDecision::Deny);
        assert_eq!(b.admit(330), BreakerDecision::AllowProbe);
        assert_eq!(b.trips(), 3);
    }

    #[test]
    fn successes_reset_the_consecutive_count() {
        let mut b = Breaker::new(2, 100);
        b.record(true, 0, false);
        b.record(false, 1, false);
        b.record(true, 2, false);
        b.record(false, 3, false);
        assert_eq!(b.state(3), BreakerState::Closed);
    }
}
