//! Time source abstraction for the serving layer.
//!
//! Everything time-dependent in the scheduler — deadlines, circuit
//! breaker cooldowns, latency accounting — reads milliseconds from a
//! [`Clock`] instead of [`std::time::Instant`] directly, so tests can
//! drive state machines deterministically with a [`ManualClock`]
//! (ISSUE: "circuit-breaker open/half-open/close transitions
//! deterministic under a seeded clock").

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic milliseconds since some fixed origin.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds. Must never decrease.
    fn now_ms(&self) -> u64;
}

/// Wall clock: milliseconds since the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock anchored at construction time.
    pub fn new() -> Self {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// Test clock: time moves only when [`ManualClock::advance`] is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// A clock starting at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move time forward by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(250);
        assert_eq!(c.now_ms(), 250);
        c.advance(1);
        assert_eq!(c.now_ms(), 251);
    }

    #[test]
    fn monotonic_clock_does_not_decrease() {
        let c = MonotonicClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }
}
