//! Minimal line-oriented JSON support for the serving protocol.
//!
//! The workspace builds fully offline with no registry access (see
//! DESIGN.md "Dependency policy"), so the wire format is handled by a
//! small hand-rolled parser/printer instead of serde. It covers exactly
//! what the protocol needs: one object per line, string/number/bool/null
//! scalars, nested arrays and objects, UTF-8 strings with the standard
//! escapes. Numbers are kept as `f64` (every protocol field fits
//! losslessly: ids and deadlines stay well under 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so printing is
    /// deterministic — handy for golden-file tests.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String value of this node, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value of this node, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value of this node, if it is a number that
    /// round-trips through `u64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean value of this node, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one JSON document from `s`, requiring it to span the whole
/// string (trailing whitespace allowed).
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by the protocol;
                        // map them to the replacement character.
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through untouched; the input is a &str so it is valid).
                let tail = &b[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(tail) };
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {}", *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escape `s` for embedding in a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_object() {
        let v = parse(
            r#"{"id": 7, "tenant": "acme", "deadline_ms": 250.0,
                "tags": ["a", "b"], "hardened": true, "note": null}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("tenant").and_then(Json::as_str), Some("acme"));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(v.get("hardened").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("note"), Some(&Json::Null));
        assert_eq!(
            v.get("tags"),
            Some(&Json::Arr(vec![
                Json::Str("a".to_string()),
                Json::Str("b".to_string())
            ]))
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let hostile = "quote\" slash\\ newline\n tab\t ctrl\u{1} über";
        let wire = format!("{{\"s\": \"{}\"}}", escape(hostile));
        let v = parse(&wire).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some(hostile));
    }
}
