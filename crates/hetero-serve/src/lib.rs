//! # hetero-serve — benchmark-as-a-service on top of hetero-rt
//!
//! A fault-isolated multi-tenant job scheduler that admits thousands
//! of concurrent benchmark jobs — each a `(tenant, app, size, device,
//! flavor, hardening)` request over a line-delimited JSON protocol —
//! and guarantees every one of them exactly one typed verdict:
//!
//! * **Completed** / **Corrected** — ran, output validated (possibly
//!   after the integrity/redundancy machinery absorbed corruptions);
//! * **Quarantined** — ran and was stopped through the typed-error
//!   containment path (PR-2 style), its output rejected;
//! * **Rejected** — admission control refused it (bad request, tenant
//!   quarantined, quota, open circuit breaker on a CPU route);
//! * **Shed** — bounded-queue backpressure dropped it before execution;
//! * **Deadline** — the per-job watchdog fired its [`hetero_rt::CancelToken`]
//!   and the run was cut short (or it expired while still queued).
//!
//! Isolation is per tenant: fault plans attach to per-job queues (never
//! process-wide state), runtime accounting lands in per-tenant
//! [`hetero_rt::ResilienceLedger`]s, and corruption quarantine trips on
//! a tenant's own verdicts only. `tests/isolation.rs` pins the
//! cross-tenant invariants; the `serve_storm` bench gates the
//! zero-unaccounted and hostile-tenant-p99 properties.
//!
//! The `serve` binary speaks the protocol over stdin/stdout or a Unix
//! socket; see README "Benchmark service" for the quickstart.

#![warn(missing_docs)]

pub mod breaker;
pub mod clock;
pub mod json;
pub mod protocol;
pub mod scheduler;
pub mod tenant;

pub use breaker::{Breaker, BreakerDecision, BreakerState};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use protocol::{
    DeviceRoute, FaultKindSel, Flavor, Hardening, JobRequest, JobResult, Priority, Verdict,
};
pub use scheduler::{resolve_app, ResultSink, Scheduler, ServeConfig, ServeStats};
pub use tenant::TenantState;
