//! Wire protocol of the benchmark service: line-delimited JSON job
//! requests in, line-delimited JSON verdicts out.
//!
//! A request names a suite configuration the way the paper's figures
//! do — `(app, size, device, flavor)` — plus the service-level fields:
//! tenant identity, hardening mode, priority lane, deadline, and an
//! optional tenant-scoped fault plan (the chaos matrix replayed through
//! the service attaches its seeds here, so injection never leaks across
//! tenants the way a process-wide `HETERO_RT_FAULT_SEED` would).

use altis_data::InputSize;
use hetero_rt::Device;

use crate::json::{escape, Json};

/// Priority lane of a job. Lanes are drained weighted-fair (see
/// `scheduler`): high gets 4 dequeue slots per cycle, normal 2, low 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive lane.
    High,
    /// Default lane.
    #[default]
    Normal,
    /// Bulk/background lane.
    Low,
}

impl Priority {
    /// Lane index (0 = high).
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Device route of a job: which modelled device the queue is bound to.
/// Non-CPU routes exercise the capability-error path (e.g. FPGA has no
/// USM and a 128-item work-group limit) and are the routes a circuit
/// breaker degrades to CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceRoute {
    /// Host CPU (default).
    #[default]
    Cpu,
    /// Modelled discrete GPU.
    Gpu,
    /// Modelled PCIe FPGA.
    Fpga,
}

impl DeviceRoute {
    /// Construct the runtime device for this route.
    pub fn device(self) -> Device {
        match self {
            DeviceRoute::Cpu => Device::cpu(),
            DeviceRoute::Gpu => Device::rtx_2080(),
            DeviceRoute::Fpga => Device::stratix10(),
        }
    }

    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            DeviceRoute::Cpu => "cpu",
            DeviceRoute::Gpu => "gpu",
            DeviceRoute::Fpga => "fpga",
        }
    }
}

/// Execution flavor of a job: which app version / execution mode runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Flavor {
    /// Host-side golden reference implementation.
    Reference,
    /// As-migrated SYCL (default).
    #[default]
    Baseline,
    /// GPU-optimized SYCL.
    Optimized,
    /// Recorded-graph replay (graph-converted apps only).
    Graph,
    /// Graph replay with the full optimizer pipeline (graph-converted
    /// apps only).
    GraphOpt,
}

impl Flavor {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            Flavor::Reference => "reference",
            Flavor::Baseline => "baseline",
            Flavor::Optimized => "optimized",
            Flavor::Graph => "graph",
            Flavor::GraphOpt => "graph-opt",
        }
    }

    /// Whether this flavor runs through the record-and-replay graph
    /// path (only available for the graph-converted apps).
    pub fn is_graph(self) -> bool {
        matches!(self, Flavor::Graph | Flavor::GraphOpt)
    }
}

/// Hardening mode of a job: which defense stack wraps the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Hardening {
    /// Plain run: no injection, default retry policy.
    #[default]
    None,
    /// Chaos posture: resilient retry policy, typed-error containment.
    Resilient,
    /// SDC posture: integrity protocol + DMR voting. SDC jobs serialize
    /// on a process-wide permit (the integrity counters are global).
    Sdc,
}

impl Hardening {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            Hardening::None => "none",
            Hardening::Resilient => "resilient",
            Hardening::Sdc => "sdc",
        }
    }
}

/// Which fail-stop fault classes a job's tenant-scoped plan injects
/// (SDC hardening ignores this: its plan is always the silent kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultKindSel {
    /// All four fail-stop kinds (the chaos matrix's mix; default).
    #[default]
    Mixed,
    /// Transient launch failures only (absorbed by retry).
    Transient,
    /// Kernel panics only (breaker-class failures).
    Panic,
    /// USM allocation failures only.
    Alloc,
    /// Pipe stalls only.
    Stall,
}

impl FaultKindSel {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKindSel::Mixed => "mixed",
            FaultKindSel::Transient => "transient",
            FaultKindSel::Panic => "panic",
            FaultKindSel::Alloc => "alloc",
            FaultKindSel::Stall => "stall",
        }
    }
}

/// One parsed job request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen id, echoed verbatim in the result (default 0).
    pub id: u64,
    /// Tenant identity: the isolation domain for quotas, ledgers and
    /// quarantine.
    pub tenant: String,
    /// Suite configuration name (case-insensitive; unique substrings
    /// accepted, e.g. "fdtd" for "FDTD2D").
    pub app: String,
    /// Input size class 1..=3 (paper sizes; default 1).
    pub size: InputSize,
    /// Device route (default cpu).
    pub device: DeviceRoute,
    /// Execution flavor (default baseline).
    pub flavor: Flavor,
    /// Hardening mode (default none).
    pub hardening: Hardening,
    /// Priority lane (default normal).
    pub priority: Priority,
    /// Deadline in milliseconds from admission; `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Tenant-scoped fault-injection seed; `None` = no injection.
    pub fault_seed: Option<u64>,
    /// Injection rate used when `fault_seed` is set.
    pub fault_rate: f64,
    /// Which fail-stop kinds the plan injects (default mixed).
    pub fault_kind: FaultKindSel,
    /// Run the app as a window stream for this many windows instead of
    /// one batch execution (streaming-converted apps only; `None` =
    /// batch job). Faults then land on individual windows — contained
    /// by checkpoint/rollback — rather than on the whole job.
    pub stream_windows: Option<u64>,
}

impl Default for JobRequest {
    fn default() -> Self {
        JobRequest {
            id: 0,
            tenant: String::new(),
            app: String::new(),
            size: InputSize::S1,
            device: DeviceRoute::Cpu,
            flavor: Flavor::Baseline,
            hardening: Hardening::None,
            priority: Priority::Normal,
            deadline_ms: None,
            fault_seed: None,
            fault_rate: 0.05,
            fault_kind: FaultKindSel::Mixed,
            stream_windows: None,
        }
    }
}

fn bad(field: &str, got: &Json) -> String {
    format!("invalid '{field}': {got:?}")
}

impl JobRequest {
    /// Parse a request from a decoded JSON object. `tenant` and `app`
    /// are required; everything else defaults.
    pub fn from_json(v: &Json) -> Result<JobRequest, String> {
        let tenant = v
            .get("tenant")
            .and_then(Json::as_str)
            .filter(|t| !t.is_empty())
            .ok_or("missing required field 'tenant'")?
            .to_string();
        let app = v
            .get("app")
            .and_then(Json::as_str)
            .filter(|a| !a.is_empty())
            .ok_or("missing required field 'app'")?
            .to_string();
        let mut r = JobRequest { tenant, app, ..JobRequest::default() };
        if let Some(id) = v.get("id") {
            r.id = id.as_u64().ok_or_else(|| bad("id", id))?;
        }
        if let Some(s) = v.get("size") {
            r.size = match s.as_u64() {
                Some(1) => InputSize::S1,
                Some(2) => InputSize::S2,
                Some(3) => InputSize::S3,
                _ => return Err(bad("size", s)),
            };
        }
        if let Some(d) = v.get("device") {
            r.device = match d.as_str() {
                Some("cpu") => DeviceRoute::Cpu,
                Some("gpu") => DeviceRoute::Gpu,
                Some("fpga") => DeviceRoute::Fpga,
                _ => return Err(bad("device", d)),
            };
        }
        if let Some(f) = v.get("flavor") {
            r.flavor = match f.as_str() {
                Some("reference") => Flavor::Reference,
                Some("baseline") => Flavor::Baseline,
                Some("optimized") => Flavor::Optimized,
                Some("graph") => Flavor::Graph,
                Some("graph-opt") => Flavor::GraphOpt,
                _ => return Err(bad("flavor", f)),
            };
        }
        if let Some(h) = v.get("hardening") {
            r.hardening = match h.as_str() {
                Some("none") => Hardening::None,
                Some("resilient") => Hardening::Resilient,
                Some("sdc") => Hardening::Sdc,
                _ => return Err(bad("hardening", h)),
            };
        }
        if let Some(p) = v.get("priority") {
            r.priority = match p.as_str() {
                Some("high") => Priority::High,
                Some("normal") => Priority::Normal,
                Some("low") => Priority::Low,
                _ => return Err(bad("priority", p)),
            };
        }
        if let Some(d) = v.get("deadline_ms") {
            let ms = d.as_u64().filter(|&ms| ms > 0).ok_or_else(|| bad("deadline_ms", d))?;
            r.deadline_ms = Some(ms);
        }
        if let Some(s) = v.get("fault_seed") {
            r.fault_seed = Some(s.as_u64().ok_or_else(|| bad("fault_seed", s))?);
        }
        if let Some(rate) = v.get("fault_rate") {
            let x = rate
                .as_f64()
                .filter(|x| (0.0..=1.0).contains(x))
                .ok_or_else(|| bad("fault_rate", rate))?;
            r.fault_rate = x;
        }
        if let Some(w) = v.get("stream_windows") {
            let n = w.as_u64().filter(|&n| n > 0).ok_or_else(|| bad("stream_windows", w))?;
            r.stream_windows = Some(n);
        }
        if let Some(k) = v.get("fault_kind") {
            r.fault_kind = match k.as_str() {
                Some("mixed") => FaultKindSel::Mixed,
                Some("transient") => FaultKindSel::Transient,
                Some("panic") => FaultKindSel::Panic,
                Some("alloc") => FaultKindSel::Alloc,
                Some("stall") => FaultKindSel::Stall,
                _ => return Err(bad("fault_kind", k)),
            };
        }
        Ok(r)
    }
}

/// Final disposition of one job. Every submitted job ends in exactly
/// one of these — the scheduler's zero-unaccounted invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Ran to completion and the output matched the golden reference.
    Completed,
    /// Output validated after the integrity/redundancy machinery
    /// detected or out-voted `events` corruptions.
    Corrected {
        /// Detections plus voted-out divergences during the run.
        events: u64,
    },
    /// The run was stopped and its output rejected: typed error,
    /// validation failure, or wrong results. Never reaches a consumer.
    Quarantined {
        /// The typed error or failed check.
        reason: String,
    },
    /// Admission control refused the job (bad request, tenant
    /// quarantined, quota exceeded, circuit open on a CPU route).
    Rejected {
        /// Which admission rule fired.
        reason: String,
    },
    /// Load shedding: the bounded queue was full (or the server was
    /// draining) and the job was dropped before execution.
    Shed {
        /// What was overloaded.
        reason: String,
    },
    /// The per-job deadline fired: the watchdog canceled the run (or it
    /// expired while still queued) and any partial work was contained
    /// via the typed `Canceled` error path.
    Deadline,
}

impl Verdict {
    /// Wire label of the verdict class.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Completed => "completed",
            Verdict::Corrected { .. } => "corrected",
            Verdict::Quarantined { .. } => "quarantined",
            Verdict::Rejected { .. } => "rejected",
            Verdict::Shed { .. } => "shed",
            Verdict::Deadline => "deadline",
        }
    }
}

/// One job's final result, as sent back to the submitting client.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Echoed client id.
    pub id: u64,
    /// Echoed tenant.
    pub tenant: String,
    /// Echoed app name (canonical registry spelling once resolved).
    pub app: String,
    /// Final disposition.
    pub verdict: Verdict,
    /// Whether an open circuit breaker degraded the route to CPU.
    pub degraded: bool,
    /// Admission-to-verdict latency in milliseconds.
    pub latency_ms: u64,
    /// Milliseconds spent executing (0 for jobs that never ran).
    pub run_ms: u64,
}

impl JobResult {
    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let (detail, events) = match &self.verdict {
            Verdict::Corrected { events } => (String::new(), *events),
            Verdict::Quarantined { reason }
            | Verdict::Rejected { reason }
            | Verdict::Shed { reason } => (reason.clone(), 0),
            Verdict::Completed | Verdict::Deadline => (String::new(), 0),
        };
        format!(
            "{{\"id\":{},\"tenant\":\"{}\",\"app\":\"{}\",\"verdict\":\"{}\",\
             \"detail\":\"{}\",\"events\":{},\"degraded\":{},\"latency_ms\":{},\"run_ms\":{}}}",
            self.id,
            escape(&self.tenant),
            escape(&self.app),
            self.verdict.label(),
            escape(&detail),
            events,
            self.degraded,
            self.latency_ms,
            self.run_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn parses_full_request_and_defaults() {
        let v = json::parse(
            r#"{"id":9,"tenant":"acme","app":"FDTD2D","size":2,"device":"fpga",
                "flavor":"graph","hardening":"resilient","priority":"low",
                "deadline_ms":250,"fault_seed":7,"fault_rate":0.1}"#,
        )
        .unwrap();
        let r = JobRequest::from_json(&v).unwrap();
        assert_eq!(r.id, 9);
        assert_eq!(r.tenant, "acme");
        assert_eq!(r.size, InputSize::S2);
        assert_eq!(r.device, DeviceRoute::Fpga);
        assert_eq!(r.flavor, Flavor::Graph);
        assert_eq!(r.hardening, Hardening::Resilient);
        assert_eq!(r.priority, Priority::Low);
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.fault_seed, Some(7));
        assert!((r.fault_rate - 0.1).abs() < 1e-12);

        let min = json::parse(r#"{"tenant":"t","app":"sort"}"#).unwrap();
        let r = JobRequest::from_json(&min).unwrap();
        assert_eq!(r.size, InputSize::S1);
        assert_eq!(r.priority, Priority::Normal);
        assert_eq!(r.deadline_ms, None);
        assert_eq!(r.fault_seed, None);
    }

    #[test]
    fn rejects_missing_and_invalid_fields() {
        let e = |s: &str| JobRequest::from_json(&json::parse(s).unwrap());
        assert!(e(r#"{"app":"sort"}"#).is_err());
        assert!(e(r#"{"tenant":"t"}"#).is_err());
        assert!(e(r#"{"tenant":"t","app":"sort","size":9}"#).is_err());
        assert!(e(r#"{"tenant":"t","app":"sort","device":"tpu"}"#).is_err());
        assert!(e(r#"{"tenant":"t","app":"sort","deadline_ms":0}"#).is_err());
        assert!(e(r#"{"tenant":"t","app":"sort","fault_rate":1.5}"#).is_err());
        assert!(e(r#"{"tenant":"t","app":"srad","stream_windows":0}"#).is_err());
        assert!(e(r#"{"tenant":"t","app":"srad","stream_windows":"many"}"#).is_err());
    }

    #[test]
    fn parses_stream_windows() {
        let v = json::parse(r#"{"tenant":"t","app":"srad","stream_windows":64}"#).unwrap();
        let r = JobRequest::from_json(&v).unwrap();
        assert_eq!(r.stream_windows, Some(64));
        let v = json::parse(r#"{"tenant":"t","app":"srad"}"#).unwrap();
        assert_eq!(JobRequest::from_json(&v).unwrap().stream_windows, None);
    }

    #[test]
    fn result_line_is_valid_json_with_escaped_detail() {
        let r = JobResult {
            id: 3,
            tenant: "a\"b".to_string(),
            app: "Sort".to_string(),
            verdict: Verdict::Quarantined { reason: "typed: \"X\"\n".to_string() },
            degraded: true,
            latency_ms: 12,
            run_ms: 7,
        };
        let v = json::parse(&r.to_json_line()).unwrap();
        assert_eq!(v.get("tenant").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("quarantined"));
        assert_eq!(v.get("detail").and_then(Json::as_str), Some("typed: \"X\"\n"));
        assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(true));
    }
}
