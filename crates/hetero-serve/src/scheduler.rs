//! The multi-tenant job scheduler: admission → schedule → execute →
//! verdict.
//!
//! One [`Scheduler`] owns three priority lanes, a worker pool that
//! drains them weighted-fair (high 4 : normal 2 : low 1), a deadline
//! watchdog that fires per-job [`CancelToken`]s, per-`(app, device)`
//! circuit [`Breaker`]s, and per-tenant [`TenantState`]. The invariant
//! everything else hangs off is **exactly one verdict per submitted
//! job**: every path out of [`Scheduler::submit`] and every worker path
//! funnels through one `finish` call that accounts the verdict and
//! invokes the job's result sink. [`Scheduler::stats`] exposes the
//! counters; `unaccounted()` must read zero once the server is idle —
//! the `serve_storm` bench gates on it at 10k queued jobs.
//!
//! Fault isolation rests on three mechanisms, all tenant-scoped:
//! injection plans are attached per-job queue (never process-wide
//! environment state), runtime accounting goes to the tenant's own
//! [`hetero_rt::ResilienceLedger`], and quarantine trips on a tenant's
//! own corruption-verdict count only.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use altis_core::common::{AppVersion, ExecMode};
use altis_core::streaming::{open_stream, supports_streaming, StreamScenario};
use altis_core::suite::{
    all_apps, run_flavored_inline, run_sdc_inline, AppEntry, ResilienceOutcome, SdcOutcome,
    GRAPH_FLAVOR_APPS,
};
use hetero_rt::{
    CancelToken, Device, Fallback, FaultPlan, Queue, Redundancy, RetryPolicy, StreamConfig,
};

use crate::breaker::{Breaker, BreakerDecision};
use crate::clock::Clock;
use crate::protocol::{DeviceRoute, Flavor, Hardening, JobRequest, JobResult, Verdict};
use crate::tenant::TenantState;

/// Where a job's final [`JobResult`] is delivered. Called exactly once
/// per submitted job, possibly from a worker thread, possibly inline
/// from [`Scheduler::submit`] (immediate rejections and sheds).
pub type ResultSink = Arc<dyn Fn(JobResult) + Send + Sync>;

/// SDC-hardened jobs measure detection/correction activity through the
/// process-global integrity counters, so at most one may run at a time
/// (see `altis_core::suite::run_sdc_inline`). The permit is
/// process-wide: it also serializes SDC jobs across schedulers in the
/// same process (tests spawn several).
static SDC_PERMIT: Mutex<()> = Mutex::new(());

/// Scheduler tuning knobs. `Default` is sized for tests and the serve
/// binary; the storm bench overrides capacity and workers.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs (each job's kernels additionally
    /// use the process-wide hetero-rt pool).
    pub workers: usize,
    /// Global bound on queued jobs across all lanes; submissions beyond
    /// it are shed.
    pub queue_capacity: usize,
    /// Per-tenant bound on queued jobs; submissions beyond it are
    /// rejected (quota, not overload).
    pub tenant_queued_limit: u64,
    /// Consecutive breaker-class failures that open a route's breaker.
    pub breaker_open_after: u32,
    /// How long an open breaker rejects before admitting a probe.
    pub breaker_cooldown_ms: u64,
    /// Corruption-class verdicts after which a tenant is quarantined
    /// (0 disables).
    pub quarantine_after: u64,
    /// Deadline applied to jobs that don't carry one (`None` = none).
    pub default_deadline_ms: Option<u64>,
    /// Deadline watchdog scan period.
    pub watchdog_tick_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let hw = std::thread::available_parallelism().map_or(2, |n| n.get());
        ServeConfig {
            workers: (hw / 2).clamp(1, 8),
            queue_capacity: 1024,
            tenant_queued_limit: 512,
            breaker_open_after: 3,
            breaker_cooldown_ms: 1_000,
            quarantine_after: 0,
            default_deadline_ms: None,
            watchdog_tick_ms: 2,
        }
    }
}

/// Point-in-time scheduler counters. `submitted` equals the sum of the
/// six verdict classes once the server is idle; `uncontained` counts
/// jobs whose failure escaped the typed-error path (delivered as
/// `Quarantined`, but flagged here — the storm bench gates on 0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs submitted (including immediately rejected/shed ones).
    pub submitted: u64,
    /// `Verdict::Completed` deliveries.
    pub completed: u64,
    /// `Verdict::Corrected` deliveries.
    pub corrected: u64,
    /// `Verdict::Quarantined` deliveries.
    pub quarantined: u64,
    /// `Verdict::Rejected` deliveries.
    pub rejected: u64,
    /// `Verdict::Shed` deliveries.
    pub shed: u64,
    /// `Verdict::Deadline` deliveries.
    pub deadline: u64,
    /// Runs whose failure was not a typed error (containment breaches).
    pub uncontained: u64,
    /// Jobs that ran on a CPU-degraded route because of an open breaker.
    pub degraded: u64,
    /// Total breaker trips across all routes.
    pub breaker_trips: u64,
}

impl ServeStats {
    /// Sum of all delivered verdicts.
    pub fn accounted(&self) -> u64 {
        self.completed + self.corrected + self.quarantined + self.rejected + self.shed
            + self.deadline
    }

    /// Jobs submitted but not (yet) resolved to a verdict. Zero once
    /// the scheduler is idle — the zero-unaccounted invariant.
    pub fn unaccounted(&self) -> u64 {
        self.submitted - self.accounted()
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    corrected: AtomicU64,
    quarantined: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    deadline: AtomicU64,
    uncontained: AtomicU64,
    degraded: AtomicU64,
}

/// One queued job (admission already passed).
struct Job {
    uid: u64,
    req: JobRequest,
    /// Canonical registry spelling of the requested app.
    app: &'static str,
    tenant: Arc<TenantState>,
    enqueued_ms: u64,
    /// Absolute deadline on the scheduler clock.
    abs_deadline_ms: Option<u64>,
    sink: ResultSink,
}

struct Lanes {
    queues: [VecDeque<Job>; 3],
    len: usize,
    draining: bool,
}

/// Weighted-fair lane schedule: four high slots, two normal, one low
/// per cycle. A worker whose preferred lane is empty falls through in
/// priority order, so the schedule is work-conserving.
const LANE_CYCLE: [usize; 7] = [0, 0, 0, 0, 1, 1, 2];

struct Shared {
    cfg: ServeConfig,
    clock: Arc<dyn Clock>,
    lanes: Mutex<Lanes>,
    work_cv: Condvar,
    counters: Counters,
    running: AtomicU64,
    /// Signaled on every verdict delivery and every running-count drop;
    /// `wait_idle` sleeps on it.
    idle: (Mutex<()>, Condvar),
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
    breakers: Mutex<HashMap<(&'static str, &'static str), Breaker>>,
    /// uid -> (token, absolute deadline) for jobs currently executing.
    watch: Mutex<HashMap<u64, (CancelToken, u64)>>,
    stop: AtomicBool,
    uid_seq: AtomicU64,
}

impl Shared {
    fn tenant(&self, name: &str) -> Arc<TenantState> {
        let mut map = self.tenants.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(TenantState::new(name)))
            .clone()
    }

    /// The single exit point: account the verdict, update tenant state,
    /// deliver the result. Every submitted job passes through here
    /// exactly once.
    fn finish(&self, job: &Job, verdict: Verdict, degraded: bool, run_ms: u64) {
        let c = &self.counters;
        match &verdict {
            Verdict::Completed => c.completed.fetch_add(1, Ordering::Relaxed),
            Verdict::Corrected { .. } => c.corrected.fetch_add(1, Ordering::Relaxed),
            Verdict::Quarantined { reason } => {
                job.tenant
                    .record_corruption(self.cfg.quarantine_after, reason);
                c.quarantined.fetch_add(1, Ordering::Relaxed)
            }
            Verdict::Rejected { .. } => c.rejected.fetch_add(1, Ordering::Relaxed),
            Verdict::Shed { .. } => c.shed.fetch_add(1, Ordering::Relaxed),
            Verdict::Deadline => c.deadline.fetch_add(1, Ordering::Relaxed),
        };
        if degraded {
            c.degraded.fetch_add(1, Ordering::Relaxed);
        }
        let now = self.clock.now_ms();
        let result = JobResult {
            id: job.req.id,
            tenant: job.req.tenant.clone(),
            // Canonical spelling once resolved; the requested text for
            // jobs rejected before resolution.
            app: if job.app == "?" { job.req.app.clone() } else { job.app.to_string() },
            verdict,
            degraded,
            latency_ms: now.saturating_sub(job.enqueued_ms),
            run_ms,
        };
        (job.sink)(result);
        let (lock, cv) = &self.idle;
        let _g = lock.lock().unwrap();
        cv.notify_all();
    }

    fn stats(&self) -> ServeStats {
        let c = &self.counters;
        let breaker_trips = self
            .breakers
            .lock()
            .unwrap()
            .values()
            .map(Breaker::trips)
            .sum();
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            corrected: c.corrected.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            deadline: c.deadline.load(Ordering::Relaxed),
            uncontained: c.uncontained.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            breaker_trips,
        }
    }

    /// Pop the next job per the weighted-fair schedule; blocks until
    /// work arrives or shutdown drains the lanes.
    fn pop(&self, rr: &mut u64) -> Option<Job> {
        let mut lanes = self.lanes.lock().unwrap();
        loop {
            let slot = LANE_CYCLE[(*rr % 7) as usize];
            *rr += 1;
            let order = [slot, 0, 1, 2];
            for lane in order {
                if let Some(job) = lanes.queues[lane].pop_front() {
                    lanes.len -= 1;
                    job.tenant.queued.fetch_sub(1, Ordering::Relaxed);
                    return Some(job);
                }
            }
            if self.stop.load(Ordering::Acquire) {
                return None;
            }
            lanes = self.work_cv.wait(lanes).unwrap();
        }
    }

    /// Whether a quarantine/typed-error reason is a breaker-class
    /// failure (kernel panic or data corruption — route-health signals,
    /// unlike deadlines, quota rejections, or wrong-size errors).
    fn breaker_class(reason: &str) -> bool {
        const MARKS: [&str; 6] = [
            "panicked",
            "KernelPanicked",
            "data corruption",
            "DataCorruption",
            "replica digests",
            "ReplicaDivergence",
        ];
        MARKS.iter().any(|m| reason.contains(m))
    }

    /// Execute one popped job end to end and deliver its verdict.
    fn run_job(&self, job: Job) {
        let now = self.clock.now_ms();
        if let Some(d) = job.abs_deadline_ms {
            if now >= d {
                // Expired while queued: never runs, still gets its one
                // verdict.
                self.finish(&job, Verdict::Deadline, false, 0);
                return;
            }
        }
        self.running.fetch_add(1, Ordering::AcqRel);
        job.tenant.running.fetch_add(1, Ordering::Relaxed);

        // Circuit-breaker routing happens at dispatch, not admission,
        // so queued jobs see the route's *current* health.
        let route = job.req.device.label();
        let mut degraded = false;
        let mut probe = false;
        let mut rejected: Option<String> = None;
        {
            let mut breakers = self.breakers.lock().unwrap();
            let b = breakers
                .entry((job.app, route))
                .or_insert_with(|| {
                    Breaker::new(self.cfg.breaker_open_after, self.cfg.breaker_cooldown_ms)
                });
            match b.admit(now) {
                BreakerDecision::Allow => {}
                BreakerDecision::AllowProbe => probe = true,
                BreakerDecision::Deny if job.req.device != DeviceRoute::Cpu => {
                    // Degrade to the CPU route — but only if that
                    // route's own breaker is willing.
                    let cb = breakers
                        .entry((job.app, DeviceRoute::Cpu.label()))
                        .or_insert_with(|| {
                            Breaker::new(
                                self.cfg.breaker_open_after,
                                self.cfg.breaker_cooldown_ms,
                            )
                        });
                    match cb.admit(now) {
                        BreakerDecision::Allow => degraded = true,
                        BreakerDecision::AllowProbe => {
                            degraded = true;
                            probe = true;
                        }
                        BreakerDecision::Deny => {
                            rejected = Some(format!(
                                "circuit open for {} on {} (and on cpu)",
                                job.app, route
                            ));
                        }
                    }
                }
                BreakerDecision::Deny => {
                    rejected = Some(format!("circuit open for {} on cpu", job.app));
                }
            }
        }
        if let Some(reason) = rejected {
            self.release_running(&job);
            self.finish(&job, Verdict::Rejected { reason }, false, 0);
            return;
        }

        // Build the per-job hardened queue. The fault plan is attached
        // explicitly (even when `None`) so a process-wide
        // HETERO_RT_FAULT_SEED can never leak into another tenant's job.
        let token = CancelToken::new();
        let sdc = job.req.hardening == Hardening::Sdc;
        let plan = job.req.fault_seed.map(|seed| {
            use crate::protocol::FaultKindSel;
            use hetero_rt::FaultKind;
            let p = if sdc {
                FaultPlan::sdc(seed, job.req.fault_rate)
            } else {
                let p = FaultPlan::new(seed, job.req.fault_rate);
                match job.req.fault_kind {
                    FaultKindSel::Mixed => p,
                    FaultKindSel::Transient => p.with_kinds(&[FaultKind::LaunchTransient]),
                    FaultKindSel::Panic => p.with_kinds(&[FaultKind::KernelPanic]),
                    FaultKindSel::Alloc => p.with_kinds(&[FaultKind::AllocFail]),
                    FaultKindSel::Stall => p.with_kinds(&[FaultKind::PipeStall]),
                }
            };
            Arc::new(p)
        });
        // Stream jobs reuse the tenant-scoped plan but build their own
        // primary/clean queue pair inside `open_stream`.
        let stream_plan = plan.clone();
        let effective_route = if degraded { DeviceRoute::Cpu } else { job.req.device };
        let device: Device = effective_route.device();
        let retry = match job.req.hardening {
            Hardening::None => RetryPolicy::default(),
            Hardening::Resilient | Hardening::Sdc => RetryPolicy::resilient(),
        };
        let mut queue = Queue::new(device)
            .with_fault_plan(plan)
            .with_retry_policy(retry)
            .with_cancel_token(Some(token.clone()))
            .with_resilience_ledger(Some(job.tenant.ledger.clone()));
        if effective_route != DeviceRoute::Cpu {
            // Capability mismatches on modelled accelerators re-run on
            // the host (the paper's porting workflow as policy); real
            // route-health failures still surface and trip the breaker.
            queue = queue.with_fallback(Fallback::Cpu);
        }
        if sdc {
            queue = queue.with_integrity(true).with_redundancy(Redundancy::Dmr);
        }

        if let Some(d) = job.abs_deadline_ms {
            self.watch
                .lock()
                .unwrap()
                .insert(job.uid, (token.clone(), d));
        }

        let version = match job.req.flavor {
            Flavor::Reference => AppVersion::Reference,
            Flavor::Baseline | Flavor::Graph | Flavor::GraphOpt => AppVersion::SyclBaseline,
            Flavor::Optimized => AppVersion::SyclOptimized,
        };
        let mode = match job.req.flavor {
            Flavor::Graph => ExecMode::Graph,
            Flavor::GraphOpt => ExecMode::GraphOptimized,
            _ => ExecMode::PerLaunch,
        };
        let entry = registry_entry(job.app);

        let t0 = Instant::now();
        let verdict = if let Some(windows) = job.req.stream_windows {
            self.run_stream_job(&job, windows, stream_plan, &token)
        } else if sdc {
            // One SDC job at a time: the integrity counters its verdict
            // is computed from are process-global.
            let _permit = SDC_PERMIT.lock().unwrap_or_else(|p| p.into_inner());
            match run_sdc_inline(entry, &queue, job.req.size, version) {
                SdcOutcome::Correct => Verdict::Completed,
                SdcOutcome::Corrected { events } => Verdict::Corrected { events },
                SdcOutcome::Quarantined { reason } => self.classify_stop(&token, reason),
                SdcOutcome::Uncontained { what } => {
                    self.counters.uncontained.fetch_add(1, Ordering::Relaxed);
                    Verdict::Quarantined { reason: format!("UNCONTAINED: {what}") }
                }
            }
        } else {
            match run_flavored_inline(entry, &queue, job.req.size, version, mode)
                .expect("graph flavors are admission-checked")
            {
                ResilienceOutcome::Correct => Verdict::Completed,
                ResilienceOutcome::TypedError(reason) => self.classify_stop(&token, reason),
                ResilienceOutcome::Incorrect => Verdict::Quarantined {
                    reason: "output diverged from the golden reference".to_string(),
                },
                ResilienceOutcome::Panicked(what) => {
                    self.counters.uncontained.fetch_add(1, Ordering::Relaxed);
                    Verdict::Quarantined { reason: format!("UNCONTAINED: {what}") }
                }
                ResilienceOutcome::TimedOut => unreachable!("inline runners cannot time out"),
            }
        };
        let run_ms = t0.elapsed().as_millis() as u64;

        self.watch.lock().unwrap().remove(&job.uid);
        // Route-health bookkeeping: the verdict is recorded against the
        // route the job actually ran on.
        let ran_route = effective_route.label();
        let failure = matches!(&verdict, Verdict::Quarantined { reason } if Self::breaker_class(reason));
        {
            let mut breakers = self.breakers.lock().unwrap();
            if let Some(b) = breakers.get_mut(&(job.app, ran_route)) {
                b.record(failure, self.clock.now_ms(), probe);
            }
        }
        self.release_running(&job);
        self.finish(&job, verdict, degraded, run_ms);
    }

    /// Execute a stream job: drive `windows` windows through the app's
    /// recorded-graph stream under windowed fault containment, then
    /// fold the per-window verdicts into the job's single verdict.
    /// Faults land on individual windows (retried or rolled back, the
    /// stream survives); only cancellation — the deadline watchdog —
    /// is stream-fatal.
    fn run_stream_job(
        &self,
        job: &Job,
        windows: u64,
        fault: Option<Arc<FaultPlan>>,
        token: &CancelToken,
    ) -> Verdict {
        let scenario = StreamScenario {
            fault,
            sdc: false,
            cancel: Some(token.clone()),
            ledger: Some(job.tenant.ledger.clone()),
        };
        let opened = open_stream(job.app, job.req.size, StreamConfig::default(), &scenario);
        let mut stream = match opened {
            Ok(Some(s)) => s,
            Ok(None) => unreachable!("stream jobs are admission-checked"),
            Err(e) => return self.classify_stop(token, format!("stream open failed: {e}")),
        };
        for _ in 0..windows {
            if let Err(e) = stream.next_window() {
                return self.classify_stop(token, format!("stream stopped: {e}"));
            }
        }
        let st = stream.stats();
        if st.dropped > 0 {
            Verdict::Quarantined {
                reason: format!("stream dropped {} window(s) past the containment budget", st.dropped),
            }
        } else if st.non_delivered() > 0 {
            Verdict::Corrected { events: st.non_delivered() }
        } else {
            Verdict::Completed
        }
    }

    /// Map a typed-error reason to its verdict: a fired deadline token
    /// whose cancellation surfaced through the typed path is a
    /// `Deadline`, anything else is a quarantine.
    fn classify_stop(&self, token: &CancelToken, reason: String) -> Verdict {
        if token.is_canceled() && (reason.contains("canceled") || reason.contains("Canceled")) {
            Verdict::Deadline
        } else {
            Verdict::Quarantined { reason }
        }
    }

    fn release_running(&self, job: &Job) {
        job.tenant.running.fetch_sub(1, Ordering::Relaxed);
        self.running.fetch_sub(1, Ordering::AcqRel);
        let (lock, cv) = &self.idle;
        let _g = lock.lock().unwrap();
        cv.notify_all();
    }
}

/// Resolve a registry entry by canonical name. The registry is 'static
/// in all but name; keep one copy per process.
fn registry() -> &'static Vec<AppEntry> {
    use std::sync::OnceLock;
    static APPS: OnceLock<Vec<AppEntry>> = OnceLock::new();
    APPS.get_or_init(all_apps)
}

fn registry_entry(name: &'static str) -> &'static AppEntry {
    registry()
        .iter()
        .find(|a| a.name == name)
        .expect("canonical names resolve")
}

/// Resolve a requested app name: exact case-insensitive match first,
/// then a unique case-insensitive substring. Returns the canonical
/// registry spelling.
pub fn resolve_app(requested: &str) -> Result<&'static str, String> {
    let lower = requested.to_lowercase();
    let apps = registry();
    if let Some(a) = apps.iter().find(|a| a.name.to_lowercase() == lower) {
        return Ok(a.name);
    }
    let matches: Vec<&'static str> = apps
        .iter()
        .filter(|a| a.name.to_lowercase().contains(&lower))
        .map(|a| a.name)
        .collect();
    match matches.as_slice() {
        [one] => Ok(one),
        [] => Err(format!("unknown app '{requested}'")),
        many => Err(format!("ambiguous app '{requested}' (matches {many:?})")),
    }
}

/// The benchmark service. Construct with [`Scheduler::new`], feed it
/// [`JobRequest`]s via [`Scheduler::submit`], and every request's
/// [`JobResult`] arrives at its sink exactly once.
pub struct Scheduler {
    shared: Arc<Shared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Start a scheduler: `cfg.workers` executor threads plus one
    /// deadline-watchdog thread, all reading time from `clock`.
    pub fn new(cfg: ServeConfig, clock: Arc<dyn Clock>) -> Self {
        let shared = Arc::new(Shared {
            cfg: cfg.clone(),
            clock,
            lanes: Mutex::new(Lanes {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                draining: false,
            }),
            work_cv: Condvar::new(),
            counters: Counters::default(),
            running: AtomicU64::new(0),
            idle: (Mutex::new(()), Condvar::new()),
            tenants: Mutex::new(HashMap::new()),
            breakers: Mutex::new(HashMap::new()),
            watch: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            uid_seq: AtomicU64::new(1),
        });
        let mut threads = Vec::with_capacity(cfg.workers + 1);
        for i in 0..cfg.workers.max(1) {
            let sh = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        let mut rr = i as u64;
                        while let Some(job) = sh.pop(&mut rr) {
                            sh.run_job(job);
                        }
                    })
                    .expect("spawn worker"),
            );
        }
        {
            let sh = shared.clone();
            let tick = std::time::Duration::from_millis(cfg.watchdog_tick_ms.max(1));
            threads.push(
                std::thread::Builder::new()
                    .name("serve-watchdog".to_string())
                    .spawn(move || {
                        while !sh.stop.load(Ordering::Acquire) {
                            let now = sh.clock.now_ms();
                            {
                                let mut watch = sh.watch.lock().unwrap();
                                watch.retain(|_, (token, deadline)| {
                                    if now >= *deadline {
                                        token.cancel();
                                        false
                                    } else {
                                        true
                                    }
                                });
                            }
                            std::thread::sleep(tick);
                        }
                    })
                    .expect("spawn watchdog"),
            );
        }
        Scheduler { shared, threads: Mutex::new(threads) }
    }

    /// Submit one job. Admission control runs inline: a rejected or
    /// shed job gets its verdict (through `sink`) before this returns;
    /// an admitted job is queued and `sink` fires from a worker later.
    pub fn submit(&self, req: JobRequest, sink: ResultSink) {
        let sh = &self.shared;
        sh.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let tenant = sh.tenant(&req.tenant);
        tenant.submitted.fetch_add(1, Ordering::Relaxed);
        let now = sh.clock.now_ms();
        let uid = sh.uid_seq.fetch_add(1, Ordering::Relaxed);

        // Resolve the app first so even rejected jobs echo a canonical
        // name when possible.
        let resolved = resolve_app(&req.app);
        let app = *resolved.as_ref().unwrap_or(&"?");
        let make_job = |sink: ResultSink| Job {
            uid,
            req: req.clone(),
            app,
            tenant: tenant.clone(),
            enqueued_ms: now,
            abs_deadline_ms: req
                .deadline_ms
                .or(sh.cfg.default_deadline_ms)
                .map(|d| now + d),
            sink,
        };

        // --- admission control (every deny is an immediate verdict) ---
        let deny = |verdict: Verdict| {
            let job = make_job(sink.clone());
            sh.finish(&job, verdict, false, 0);
        };
        if sh.stop.load(Ordering::Acquire) || sh.lanes.lock().unwrap().draining {
            return deny(Verdict::Shed { reason: "server draining".to_string() });
        }
        let app = match resolved {
            Ok(a) => a,
            Err(e) => return deny(Verdict::Rejected { reason: e }),
        };
        if req.flavor.is_graph() && !GRAPH_FLAVOR_APPS.contains(&app) {
            return deny(Verdict::Rejected {
                reason: format!("app '{app}' has no {} flavor", req.flavor.label()),
            });
        }
        if req.hardening == Hardening::Sdc && req.flavor.is_graph() {
            return deny(Verdict::Rejected {
                reason: "sdc hardening supports per-launch flavors only".to_string(),
            });
        }
        if req.stream_windows.is_some() {
            if !supports_streaming(app) {
                return deny(Verdict::Rejected {
                    reason: format!("app '{app}' has no streaming conversion"),
                });
            }
            if req.hardening == Hardening::Sdc {
                return deny(Verdict::Rejected {
                    reason: "stream jobs support none/resilient hardening only".to_string(),
                });
            }
            if req.device != DeviceRoute::Cpu {
                return deny(Verdict::Rejected {
                    reason: "stream jobs run on the cpu route".to_string(),
                });
            }
        }
        if tenant.is_quarantined() {
            return deny(Verdict::Rejected {
                reason: format!("tenant quarantined: {}", tenant.quarantine_reason()),
            });
        }
        if tenant.queued.load(Ordering::Relaxed) >= sh.cfg.tenant_queued_limit {
            return deny(Verdict::Rejected {
                reason: format!(
                    "tenant queue quota exceeded ({} queued)",
                    sh.cfg.tenant_queued_limit
                ),
            });
        }

        // --- enqueue under the lane lock (bounded: shed on overflow) ---
        let job = make_job(sink);
        {
            let mut lanes = sh.lanes.lock().unwrap();
            if lanes.len >= sh.cfg.queue_capacity {
                drop(lanes);
                sh.finish(
                    &job,
                    Verdict::Shed {
                        reason: format!("queue full ({} jobs)", sh.cfg.queue_capacity),
                    },
                    false,
                    0,
                );
                return;
            }
            // Under the lane lock, so a worker can never pop (and
            // decrement) this job before the increment lands.
            tenant.queued.fetch_add(1, Ordering::Relaxed);
            lanes.queues[job.req.priority.lane()].push_back(job);
            lanes.len += 1;
        }
        sh.work_cv.notify_one();
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Per-tenant runtime-accounting snapshot, if the tenant exists.
    pub fn tenant_ledger(&self, name: &str) -> Option<hetero_rt::LedgerSnapshot> {
        self.shared
            .tenants
            .lock()
            .unwrap()
            .get(name)
            .map(|t| t.ledger.snapshot())
    }

    /// Whether a tenant is currently quarantined.
    pub fn tenant_quarantined(&self, name: &str) -> bool {
        self.shared
            .tenants
            .lock()
            .unwrap()
            .get(name)
            .is_some_and(|t| t.is_quarantined())
    }

    /// Block until every submitted job has its verdict and no job is
    /// queued or running.
    pub fn wait_idle(&self) {
        let sh = &self.shared;
        let (lock, cv) = &sh.idle;
        let mut g = lock.lock().unwrap();
        loop {
            let s = sh.stats();
            let queued = sh.lanes.lock().unwrap().len;
            if s.unaccounted() == 0 && queued == 0 && sh.running.load(Ordering::Acquire) == 0 {
                return;
            }
            let (guard, _timeout) = cv
                .wait_timeout(g, std::time::Duration::from_millis(50))
                .unwrap();
            g = guard;
        }
    }

    /// Drain and stop: still-queued jobs are shed (`"server draining"`),
    /// running jobs finish, workers and the watchdog join. Idempotent.
    pub fn shutdown(&self) {
        let sh = &self.shared;
        let drained: Vec<Job> = {
            let mut lanes = sh.lanes.lock().unwrap();
            lanes.draining = true;
            let mut out = Vec::with_capacity(lanes.len);
            for lane in 0..lanes.queues.len() {
                while let Some(j) = lanes.queues[lane].pop_front() {
                    lanes.len -= 1;
                    j.tenant.queued.fetch_sub(1, Ordering::Relaxed);
                    out.push(j);
                }
            }
            out
        };
        for job in drained {
            sh.finish(
                &job,
                Verdict::Shed { reason: "server draining".to_string() },
                false,
                0,
            );
        }
        sh.stop.store(true, Ordering::Release);
        sh.work_cv.notify_all();
        let threads: Vec<_> = std::mem::take(&mut *self.threads.lock().unwrap());
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}
