//! Per-tenant isolation state: resilience ledger, quotas, quarantine.
//!
//! A tenant is the service's isolation domain. Each one owns:
//!
//! * a [`ResilienceLedger`] attached to every queue built for its jobs,
//!   so retries, absorbed faults, replica votes and fallbacks are
//!   accounted to the tenant that caused them;
//! * admission quotas (max queued, max in flight);
//! * a quarantine flag: a tenant whose jobs keep producing
//!   corruption-class verdicts is quarantined and its *future* jobs are
//!   rejected at admission — scoped strictly to that tenant id, never
//!   to its neighbours (pinned by `tests/isolation.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hetero_rt::ResilienceLedger;

/// One tenant's serving-layer state. All counters are relaxed atomics:
/// they are statistics and admission heuristics, not synchronization.
#[derive(Debug)]
pub struct TenantState {
    /// Tenant id (the JSON `tenant` field, verbatim).
    pub name: String,
    /// Runtime-level accounting for every queue this tenant's jobs run
    /// on (shared with hetero-rt via [`hetero_rt::Queue::with_resilience_ledger`]).
    pub ledger: Arc<ResilienceLedger>,
    /// Jobs currently waiting in a lane.
    pub queued: AtomicU64,
    /// Jobs currently executing.
    pub running: AtomicU64,
    /// Jobs this tenant has submitted (including rejected/shed ones).
    pub submitted: AtomicU64,
    /// Corruption-class verdicts (`Quarantined`) this tenant has
    /// accumulated; drives the quarantine trip below.
    pub corruption_verdicts: AtomicU64,
    quarantined: AtomicBool,
    quarantine_reason: Mutex<String>,
}

impl TenantState {
    /// Fresh state for tenant `name`.
    pub fn new(name: &str) -> Self {
        TenantState {
            name: name.to_string(),
            ledger: Arc::new(ResilienceLedger::default()),
            queued: AtomicU64::new(0),
            running: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            corruption_verdicts: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
            quarantine_reason: Mutex::new(String::new()),
        }
    }

    /// Whether this tenant is quarantined (new jobs rejected).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    /// The reason recorded when the tenant was quarantined.
    pub fn quarantine_reason(&self) -> String {
        self.quarantine_reason.lock().unwrap().clone()
    }

    /// Quarantine this tenant. Idempotent; the first reason wins.
    pub fn quarantine(&self, reason: &str) {
        let mut r = self.quarantine_reason.lock().unwrap();
        if !self.quarantined.swap(true, Ordering::AcqRel) {
            *r = reason.to_string();
        }
    }

    /// Record one corruption-class verdict; quarantines the tenant once
    /// the count reaches `quarantine_after` (0 disables quarantining).
    /// Returns true if this call tripped the quarantine.
    pub fn record_corruption(&self, quarantine_after: u64, reason: &str) -> bool {
        let n = self.corruption_verdicts.fetch_add(1, Ordering::AcqRel) + 1;
        if quarantine_after > 0 && n >= quarantine_after && !self.is_quarantined() {
            self.quarantine(&format!(
                "{n} corruption-class verdicts (threshold {quarantine_after}); last: {reason}"
            ));
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_trips_at_threshold_and_is_sticky() {
        let t = TenantState::new("acme");
        assert!(!t.record_corruption(3, "a"));
        assert!(!t.record_corruption(3, "b"));
        assert!(!t.is_quarantined());
        assert!(t.record_corruption(3, "c"));
        assert!(t.is_quarantined());
        assert!(t.quarantine_reason().contains("threshold 3"));
        assert!(t.quarantine_reason().contains("last: c"));
        // Further verdicts don't re-trip or rewrite the reason.
        assert!(!t.record_corruption(3, "d"));
        assert!(t.quarantine_reason().contains("last: c"));
    }

    #[test]
    fn threshold_zero_disables_quarantine() {
        let t = TenantState::new("acme");
        for _ in 0..100 {
            assert!(!t.record_corruption(0, "x"));
        }
        assert!(!t.is_quarantined());
    }
}
