//! Cross-tenant isolation invariants: a hostile tenant's injected
//! faults never change a clean tenant's verdicts, quarantine never
//! leaks across tenant ids, and breaker transitions are deterministic
//! under a seeded manual clock.

use std::sync::{Arc, Mutex};

use hetero_serve::{
    FaultKindSel, Hardening, JobRequest, JobResult, ManualClock, MonotonicClock, Priority,
    ResultSink, Scheduler, ServeConfig, Verdict,
};

/// Same serialization story as tests/scheduler.rs: these tests share
/// process-global runtime state (integrity layer, thread pool) and make
/// timing-sensitive assertions.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn collector() -> (ResultSink, Arc<Mutex<Vec<JobResult>>>) {
    let results = Arc::new(Mutex::new(Vec::new()));
    let r = results.clone();
    let sink: ResultSink = Arc::new(move |res| r.lock().unwrap().push(res));
    (sink, results)
}

fn req(tenant: &str, app: &str) -> JobRequest {
    JobRequest {
        tenant: tenant.to_string(),
        app: app.to_string(),
        ..JobRequest::default()
    }
}

/// A hostile tenant hammering one app with seeded panic injection must
/// not perturb a clean tenant running a different app concurrently: the
/// fault plans are attached per-job queue, so every clean job completes
/// and every hostile job quarantines.
#[test]
fn disjoint_fault_seeds_never_cross_tenant_boundaries() {
    let _serial = serialize();
    let s = Scheduler::new(
        ServeConfig {
            workers: 2,
            // High threshold: this test is about fault-plan scoping,
            // not breaker routing (breakers are per-(app,device) and
            // intentionally shared — see the breaker test below).
            breaker_open_after: 1_000,
            ..ServeConfig::default()
        },
        Arc::new(MonotonicClock::new()),
    );
    let (sink, results) = collector();
    // Interleave submissions so both tenants are in flight together.
    for i in 0..6 {
        s.submit(
            JobRequest {
                id: i,
                hardening: Hardening::Resilient,
                fault_seed: Some(1_000 + i),
                fault_rate: 1.0,
                fault_kind: FaultKindSel::Panic,
                ..req("hostile", "DWT2D")
            },
            sink.clone(),
        );
        s.submit(
            JobRequest { id: 100 + i, hardening: Hardening::Resilient, ..req("clean", "Where") },
            sink.clone(),
        );
    }
    s.wait_idle();
    let got = results.lock().unwrap();
    assert_eq!(got.len(), 12);
    for r in got.iter() {
        match r.tenant.as_str() {
            "clean" => assert_eq!(
                r.verdict,
                Verdict::Completed,
                "clean tenant job {} caught a stray fault: {:?}",
                r.id,
                r.verdict
            ),
            "hostile" => assert!(
                matches!(&r.verdict, Verdict::Quarantined { reason } if reason.contains("panicked")),
                "hostile job {} should quarantine on its own panic: {:?}",
                r.id,
                r.verdict
            ),
            other => panic!("unexpected tenant '{other}'"),
        }
    }
    drop(got);
    // Runtime accounting is tenant-scoped too: the clean tenant's
    // ledger saw launches but no typed errors.
    let clean = s.tenant_ledger("clean").expect("clean tenant exists");
    assert!(clean.launches > 0);
    assert_eq!(clean.errors, 0, "hostile errors must not land in the clean ledger");
    let hostile = s.tenant_ledger("hostile").expect("hostile tenant exists");
    assert!(hostile.errors > 0, "hostile panics are accounted to the hostile ledger");
    assert_eq!(s.stats().uncontained, 0);
    s.shutdown();
}

/// Tenant quarantine trips on a tenant's own corruption verdicts only:
/// after the hostile tenant is quarantined, its submissions are
/// rejected, while a clean tenant keeps running the very same app.
#[test]
fn quarantine_never_leaks_across_tenant_ids() {
    let _serial = serialize();
    let s = Scheduler::new(
        ServeConfig { workers: 1, quarantine_after: 2, ..ServeConfig::default() },
        Arc::new(MonotonicClock::new()),
    );
    let (sink, results) = collector();
    // Two panic-class quarantines trip the hostile tenant's own
    // quarantine (threshold 2) without opening the shared (app, cpu)
    // breaker (threshold 3).
    for i in 0..2 {
        s.submit(
            JobRequest {
                id: i,
                hardening: Hardening::Resilient,
                fault_seed: Some(9),
                fault_rate: 1.0,
                fault_kind: FaultKindSel::Panic,
                ..req("hostile", "Where")
            },
            sink.clone(),
        );
        s.wait_idle();
    }
    assert!(s.tenant_quarantined("hostile"), "2 corruption verdicts must quarantine");
    assert!(!s.tenant_quarantined("clean"), "quarantine must be tenant-scoped");

    s.submit(JobRequest { id: 2, ..req("hostile", "Where") }, sink.clone());
    s.submit(JobRequest { id: 3, ..req("clean", "Where") }, sink.clone());
    s.wait_idle();
    let got = results.lock().unwrap();
    let by_id = |id: u64| got.iter().find(|r| r.id == id).expect("verdict delivered");
    assert!(
        matches!(&by_id(2).verdict, Verdict::Rejected { reason } if reason.contains("quarantined")),
        "quarantined tenant is refused: {:?}",
        by_id(2).verdict
    );
    assert_eq!(
        by_id(3).verdict,
        Verdict::Completed,
        "clean tenant runs the same app unharmed"
    );
    assert!(!s.tenant_quarantined("clean"));
    s.shutdown();
}

/// Breaker transitions are a pure function of the seeded clock: trip at
/// t, deny until t + cooldown, probe exactly once after, close on the
/// clean probe. No sleeps, no real time.
#[test]
fn breaker_transitions_are_deterministic_under_manual_clock() {
    let _serial = serialize();
    let clock = Arc::new(ManualClock::new());
    let s = Scheduler::new(
        ServeConfig {
            workers: 1,
            breaker_open_after: 1,
            breaker_cooldown_ms: 100,
            ..ServeConfig::default()
        },
        clock.clone(),
    );
    let (sink, results) = collector();
    let verdict_of = |id: u64| {
        let got = results.lock().unwrap();
        got.iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("job {id} has no verdict"))
            .verdict
            .clone()
    };

    // t=0: one panic-class failure trips the breaker (threshold 1).
    s.submit(
        JobRequest {
            id: 0,
            hardening: Hardening::Resilient,
            fault_seed: Some(5),
            fault_rate: 1.0,
            fault_kind: FaultKindSel::Panic,
            ..req("acme", "Where")
        },
        sink.clone(),
    );
    s.wait_idle();
    assert!(matches!(verdict_of(0), Verdict::Quarantined { .. }));
    assert_eq!(s.stats().breaker_trips, 1);

    // Still t=0 (cooldown not elapsed): a clean job on the same route
    // is denied — and on the cpu route there is nowhere to degrade to.
    s.submit(JobRequest { id: 1, ..req("acme", "Where") }, sink.clone());
    s.wait_idle();
    assert!(
        matches!(verdict_of(1), Verdict::Rejected { reason } if reason.contains("circuit open")),
        "open breaker must deny before cooldown: {:?}",
        verdict_of(1)
    );

    // t=99: one tick short of the cooldown — still denied.
    clock.advance(99);
    s.submit(JobRequest { id: 2, ..req("acme", "Where") }, sink.clone());
    s.wait_idle();
    assert!(matches!(verdict_of(2), Verdict::Rejected { .. }));

    // t=100: cooldown elapsed — exactly one probe is admitted and its
    // clean run closes the breaker.
    clock.advance(1);
    s.submit(JobRequest { id: 3, ..req("acme", "Where") }, sink.clone());
    s.wait_idle();
    assert_eq!(verdict_of(3), Verdict::Completed, "probe runs clean and closes");

    // Closed again: ordinary admission, no probe bookkeeping left over.
    s.submit(JobRequest { id: 4, priority: Priority::High, ..req("acme", "Where") }, sink.clone());
    s.wait_idle();
    assert_eq!(verdict_of(4), Verdict::Completed);
    assert_eq!(s.stats().breaker_trips, 1, "no spurious re-trips");
    assert_eq!(s.stats().uncontained, 0);
    s.shutdown();
}
