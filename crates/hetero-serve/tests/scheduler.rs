//! End-to-end scheduler behavior: one verdict per job, deadlines,
//! shedding, breaker routing, weighted-fair lanes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hetero_serve::{
    FaultKindSel, Flavor, Hardening, JobRequest, JobResult, MonotonicClock, Priority,
    ResultSink, Scheduler, ServeConfig, Verdict,
};

/// Tests in this binary run one at a time: SDC-hardened jobs use the
/// process-global integrity layer, and timing-sensitive assertions
/// (deadlines, lane ordering) want an unloaded machine.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn collector() -> (ResultSink, Arc<Mutex<Vec<JobResult>>>) {
    let results = Arc::new(Mutex::new(Vec::new()));
    let r = results.clone();
    let sink: ResultSink = Arc::new(move |res| r.lock().unwrap().push(res));
    (sink, results)
}

fn req(tenant: &str, app: &str) -> JobRequest {
    JobRequest {
        tenant: tenant.to_string(),
        app: app.to_string(),
        ..JobRequest::default()
    }
}

fn scheduler(cfg: ServeConfig) -> Scheduler {
    Scheduler::new(cfg, Arc::new(MonotonicClock::new()))
}

#[test]
fn every_submitted_job_gets_exactly_one_verdict() {
    let _serial = serialize();
    let s = scheduler(ServeConfig { workers: 2, ..ServeConfig::default() });
    let (sink, results) = collector();
    // A mix of clean jobs, admission failures, and malformed routes.
    for i in 0..8 {
        let mut r = req("acme", "Where");
        r.id = i;
        s.submit(r, sink.clone());
    }
    s.submit(req("acme", "NoSuchApp"), sink.clone());
    s.submit(
        JobRequest { flavor: Flavor::Graph, ..req("acme", "Where") },
        sink.clone(),
    );
    s.submit(
        JobRequest {
            flavor: Flavor::Graph,
            hardening: Hardening::Sdc,
            ..req("acme", "SRAD")
        },
        sink.clone(),
    );
    s.wait_idle();
    let stats = s.stats();
    assert_eq!(stats.submitted, 11);
    assert_eq!(stats.unaccounted(), 0, "every job must have one verdict");
    assert_eq!(results.lock().unwrap().len(), 11);
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.rejected, 3);
    assert_eq!(stats.uncontained, 0);
    s.shutdown();
}

#[test]
fn deadline_fires_and_is_typed_not_hung() {
    let _serial = serialize();
    let s = scheduler(ServeConfig { workers: 1, watchdog_tick_ms: 1, ..ServeConfig::default() });
    let (sink, results) = collector();
    // FDTD2D at S1 runs ~20ms debug-much-longer; a 1 ms deadline always
    // fires mid-run and must come back as a Deadline verdict.
    s.submit(
        JobRequest { deadline_ms: Some(1), ..req("acme", "FDTD2D") },
        sink.clone(),
    );
    s.wait_idle();
    let got = results.lock().unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].verdict, Verdict::Deadline, "got {:?}", got[0]);
    let stats = s.stats();
    assert_eq!(stats.deadline, 1);
    assert_eq!(stats.uncontained, 0, "cancellation must stay typed");
    drop(got);

    // The scheduler (and the shared pool) survive: a clean job on the
    // same worker completes.
    let (sink2, results2) = collector();
    s.submit(req("acme", "Where"), sink2);
    s.wait_idle();
    assert_eq!(results2.lock().unwrap()[0].verdict, Verdict::Completed);
    s.shutdown();
}

#[test]
fn bounded_queue_sheds_under_overload() {
    let _serial = serialize();
    let s = scheduler(ServeConfig {
        workers: 1,
        queue_capacity: 3,
        tenant_queued_limit: 1_000,
        ..ServeConfig::default()
    });
    let (sink, results) = collector();
    for _ in 0..40 {
        s.submit(req("acme", "Where"), sink.clone());
    }
    s.wait_idle();
    let stats = s.stats();
    assert_eq!(stats.unaccounted(), 0);
    assert!(stats.shed > 0, "40 jobs through a 3-deep queue must shed: {stats:?}");
    assert!(stats.completed > 0);
    let got = results.lock().unwrap();
    assert_eq!(got.len(), 40);
    for r in got.iter() {
        if let Verdict::Shed { reason } = &r.verdict {
            assert!(reason.contains("queue full"), "{reason}");
        }
    }
    s.shutdown();
}

#[test]
fn tenant_quota_rejects_distinctly_from_shedding() {
    let _serial = serialize();
    let s = scheduler(ServeConfig {
        workers: 1,
        queue_capacity: 1_000,
        tenant_queued_limit: 2,
        ..ServeConfig::default()
    });
    let (sink, results) = collector();
    for _ in 0..30 {
        s.submit(req("greedy", "Where"), sink.clone());
    }
    s.wait_idle();
    let stats = s.stats();
    assert_eq!(stats.unaccounted(), 0);
    assert!(stats.rejected > 0, "quota must reject: {stats:?}");
    assert_eq!(stats.shed, 0, "quota overruns are rejections, not shed");
    let got = results.lock().unwrap();
    for r in got.iter() {
        if let Verdict::Rejected { reason } = &r.verdict {
            assert!(reason.contains("quota"), "{reason}");
        }
    }
    s.shutdown();
}

#[test]
fn breaker_opens_on_panic_class_failures_then_recovers() {
    let _serial = serialize();
    let s = scheduler(ServeConfig {
        workers: 1,
        breaker_open_after: 2,
        breaker_cooldown_ms: 200,
        ..ServeConfig::default()
    });
    let (sink, results) = collector();
    // Panic-only injection at rate 1.0: every launch panics, retries
    // don't apply (panics are never retried), so each job quarantines
    // with a KernelPanicked reason — a breaker-class failure.
    for i in 0..2 {
        s.submit(
            JobRequest {
                id: i,
                hardening: Hardening::Resilient,
                fault_seed: Some(7),
                fault_rate: 1.0,
                fault_kind: FaultKindSel::Panic,
                ..req("acme", "Where")
            },
            sink.clone(),
        );
        s.wait_idle();
    }
    // Third job (clean!) hits the now-open breaker on the cpu route.
    s.submit(JobRequest { id: 2, ..req("acme", "Where") }, sink.clone());
    s.wait_idle();
    {
        let got = results.lock().unwrap();
        assert!(matches!(&got[0].verdict, Verdict::Quarantined { reason } if reason.contains("panicked")));
        assert!(matches!(&got[1].verdict, Verdict::Quarantined { reason } if reason.contains("panicked")));
        assert!(
            matches!(&got[2].verdict, Verdict::Rejected { reason } if reason.contains("circuit open")),
            "got {:?}",
            got[2].verdict
        );
    }
    assert!(s.stats().breaker_trips >= 1);

    // After the cooldown, a clean probe closes the breaker again.
    std::thread::sleep(std::time::Duration::from_millis(250));
    s.submit(JobRequest { id: 3, ..req("acme", "Where") }, sink.clone());
    s.wait_idle();
    {
        let got = results.lock().unwrap();
        assert_eq!(got[3].verdict, Verdict::Completed, "probe should run clean");
    }
    s.submit(JobRequest { id: 4, ..req("acme", "Where") }, sink.clone());
    s.wait_idle();
    let got = results.lock().unwrap();
    assert_eq!(got[4].verdict, Verdict::Completed);
    s.shutdown();
}

#[test]
fn graph_flavors_run_through_the_service() {
    let _serial = serialize();
    let s = scheduler(ServeConfig { workers: 2, ..ServeConfig::default() });
    let (sink, results) = collector();
    for (i, flavor) in [Flavor::Graph, Flavor::GraphOpt].into_iter().enumerate() {
        s.submit(
            JobRequest { id: i as u64, flavor, ..req("acme", "FDTD2D") },
            sink.clone(),
        );
    }
    s.wait_idle();
    let got = results.lock().unwrap();
    assert_eq!(got.len(), 2);
    for r in got.iter() {
        assert_eq!(r.verdict, Verdict::Completed, "graph flavor failed: {r:?}");
    }
    s.shutdown();
}

#[test]
fn sdc_hardened_jobs_get_corruption_verdicts() {
    let _serial = serialize();
    let s = scheduler(ServeConfig { workers: 2, ..ServeConfig::default() });
    let (sink, results) = collector();
    // Silent-fault injection under the full defense stack: outcomes
    // must be completed/corrected/quarantined, never uncontained.
    for i in 0..3 {
        s.submit(
            JobRequest {
                id: i,
                hardening: Hardening::Sdc,
                fault_seed: Some(i + 1),
                fault_rate: 0.2,
                ..req("acme", "Where")
            },
            sink.clone(),
        );
    }
    s.wait_idle();
    let stats = s.stats();
    assert_eq!(stats.unaccounted(), 0);
    assert_eq!(stats.uncontained, 0, "SDC defense must contain: {stats:?}");
    let got = results.lock().unwrap();
    assert_eq!(got.len(), 3);
    for r in got.iter() {
        assert!(
            matches!(
                r.verdict,
                Verdict::Completed | Verdict::Corrected { .. } | Verdict::Quarantined { .. }
            ),
            "unexpected verdict {r:?}"
        );
    }
    s.shutdown();
}

#[test]
fn draining_sheds_queued_jobs_with_verdicts() {
    let _serial = serialize();
    let s = scheduler(ServeConfig { workers: 1, ..ServeConfig::default() });
    let (sink, results) = collector();
    for _ in 0..20 {
        s.submit(req("acme", "KMeans"), sink.clone());
    }
    s.shutdown(); // immediately: most jobs are still queued
    let stats = s.stats();
    assert_eq!(stats.unaccounted(), 0, "drain must account every job: {stats:?}");
    assert_eq!(results.lock().unwrap().len(), 20);
    assert!(stats.shed > 0, "a fast shutdown should shed queued work");
    // Submissions after shutdown still get a verdict (shed).
    let before = s.stats().submitted;
    s.submit(req("acme", "Where"), sink.clone());
    assert_eq!(s.stats().submitted, before + 1);
    assert_eq!(s.stats().unaccounted(), 0);
}

#[test]
fn priority_lanes_drain_weighted_fair() {
    let _serial = serialize();
    // One worker, jobs preloaded while it is blocked by a long first
    // job: completion order of the backlog then follows the 4:2:1
    // weighted cycle rather than FIFO across lanes.
    let s = scheduler(ServeConfig { workers: 1, ..ServeConfig::default() });
    let order = Arc::new(Mutex::new(Vec::new()));
    let done = Arc::new(AtomicU64::new(0));
    let sink: ResultSink = {
        let order = order.clone();
        let done = done.clone();
        Arc::new(move |res: JobResult| {
            order.lock().unwrap().push((res.id, res.verdict.clone()));
            done.fetch_add(1, Ordering::SeqCst);
        })
    };
    // Block the worker first so the backlog builds deterministically.
    s.submit(JobRequest { id: 1000, ..req("acme", "KMeans") }, sink.clone());
    for i in 0..6 {
        s.submit(
            JobRequest { id: 100 + i, priority: Priority::Low, ..req("acme", "Where") },
            sink.clone(),
        );
        s.submit(
            JobRequest { id: 200 + i, priority: Priority::Normal, ..req("acme", "Where") },
            sink.clone(),
        );
        s.submit(
            JobRequest { id: 300 + i, priority: Priority::High, ..req("acme", "Where") },
            sink.clone(),
        );
    }
    s.wait_idle();
    let order = order.lock().unwrap();
    assert_eq!(order.len(), 19);
    // Among the first half of the backlog, high-priority jobs must be
    // overrepresented: count highs in the first 9 completions after the
    // blocker.
    let first9: Vec<u64> = order.iter().skip(1).take(9).map(|(id, _)| *id).collect();
    let highs = first9.iter().filter(|id| (300..400).contains(*id)).count();
    let lows = first9.iter().filter(|id| (100..200).contains(*id)).count();
    assert!(
        highs > lows,
        "high lane must outpace low under load: first9={first9:?}"
    );
    s.shutdown();
}

#[test]
fn stream_jobs_complete_cleanly_without_faults() {
    let _serial = serialize();
    let s = scheduler(ServeConfig { workers: 1, ..ServeConfig::default() });
    let (sink, results) = collector();
    s.submit(
        JobRequest { stream_windows: Some(8), ..req("acme", "SRAD") },
        sink.clone(),
    );
    s.wait_idle();
    let results = results.lock().unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].verdict, Verdict::Completed);
    assert_eq!(s.stats().uncontained, 0);
    drop(results);
    s.shutdown();
}

#[test]
fn stream_jobs_contain_faults_as_corrected_never_quarantined() {
    let _serial = serialize();
    let s = scheduler(ServeConfig { workers: 1, ..ServeConfig::default() });
    let (sink, results) = collector();
    s.submit(
        JobRequest {
            stream_windows: Some(12),
            fault_seed: Some(9),
            fault_rate: 0.5,
            hardening: Hardening::Resilient,
            ..req("acme", "SRAD")
        },
        sink.clone(),
    );
    s.wait_idle();
    let results = results.lock().unwrap();
    assert_eq!(results.len(), 1);
    // Faults land on windows, not the job: the stream survives and the
    // verdict reports how many windows needed containment.
    match &results[0].verdict {
        Verdict::Corrected { events } => assert!(*events > 0),
        other => panic!("expected Corrected at 50% fault rate, got {other:?}"),
    }
    assert_eq!(s.stats().quarantined, 0);
    assert_eq!(s.stats().uncontained, 0);
    drop(results);
    s.shutdown();
}

#[test]
fn stream_admission_rejects_unconverted_apps_sdc_and_non_cpu_routes() {
    let _serial = serialize();
    let s = scheduler(ServeConfig { workers: 1, ..ServeConfig::default() });
    let (sink, results) = collector();
    s.submit(
        JobRequest { stream_windows: Some(4), ..req("acme", "Where") },
        sink.clone(),
    );
    s.submit(
        JobRequest {
            stream_windows: Some(4),
            hardening: Hardening::Sdc,
            ..req("acme", "SRAD")
        },
        sink.clone(),
    );
    s.submit(
        JobRequest {
            stream_windows: Some(4),
            device: hetero_serve::DeviceRoute::Gpu,
            ..req("acme", "SRAD")
        },
        sink.clone(),
    );
    s.wait_idle();
    let results = results.lock().unwrap();
    assert_eq!(results.len(), 3);
    for r in results.iter() {
        assert!(
            matches!(r.verdict, Verdict::Rejected { .. }),
            "expected rejection, got {:?}",
            r.verdict
        );
    }
    assert_eq!(s.stats().rejected, 3);
    drop(results);
    s.shutdown();
}
