//! Stream compaction: keep the elements matching a predicate, preserving
//! order — the core of the `Where` benchmark (filter + scatter via
//! prefix-sum).

use crate::scan::{exclusive_scan, ScanFlavor};

/// Compact `data` by `pred` using the flag/scan/scatter pipeline a GPU
/// implementation uses (and the paper's `Where` reproduces):
/// 1. flags\[i\] = pred(data\[i\]),
/// 2. offsets = exclusive_scan(flags) with the selected flavour,
/// 3. scatter kept elements to their offsets.
pub fn compact<T: Copy>(flavor: ScanFlavor, data: &[T], pred: impl Fn(&T) -> bool) -> Vec<T> {
    let flags: Vec<u32> = data.iter().map(|x| u32::from(pred(x))).collect();
    let mut offsets = vec![0u32; data.len()];
    exclusive_scan(flavor, &flags, &mut offsets);
    let total = match data.len() {
        0 => 0,
        n => (offsets[n - 1] + flags[n - 1]) as usize,
    };
    let mut out = Vec::with_capacity(total);
    // Scatter in order (host-side equivalent of the scatter kernel).
    for (i, &f) in flags.iter().enumerate() {
        if f == 1 {
            debug_assert_eq!(offsets[i] as usize, out.len());
            out.push(data[i]);
        }
    }
    out
}

/// Return the *indices* of matching elements (the `Where` row-id output).
pub fn compact_indices<T>(flavor: ScanFlavor, data: &[T], pred: impl Fn(&T) -> bool) -> Vec<u32> {
    let flags: Vec<u32> = data.iter().map(|x| u32::from(pred(x))).collect();
    let mut offsets = vec![0u32; data.len()];
    exclusive_scan(flavor, &flags, &mut offsets);
    let total = match data.len() {
        0 => 0,
        n => (offsets[n - 1] + flags[n - 1]) as usize,
    };
    let mut out = vec![0u32; total];
    for (i, &f) in flags.iter().enumerate() {
        if f == 1 {
            out[offsets[i] as usize] = i as u32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_keeps_order() {
        let data = vec![5, 2, 8, 1, 9, 3];
        let out = compact(ScanFlavor::Cub, &data, |&x| x > 3);
        assert_eq!(out, vec![5, 8, 9]);
    }

    #[test]
    fn indices_point_at_matches() {
        let data = vec![10u32, 0, 20, 0, 30];
        let idx = compact_indices(ScanFlavor::OneDpl, &data, |&x| x > 0);
        assert_eq!(idx, vec![0, 2, 4]);
    }

    #[test]
    fn all_flavors_agree() {
        let data: Vec<i64> = (0..10_000).map(|i| (i * 37) % 101).collect();
        let base = compact(ScanFlavor::FpgaCustom, &data, |&x| x % 3 == 0);
        for f in [ScanFlavor::OneDpl, ScanFlavor::Cub] {
            assert_eq!(compact(f, &data, |&x| x % 3 == 0), base);
        }
    }

    #[test]
    fn empty_and_none_matching() {
        let empty: Vec<u8> = vec![];
        assert!(compact(ScanFlavor::Cub, &empty, |_| true).is_empty());
        let data = vec![1u8, 2, 3];
        assert!(compact(ScanFlavor::Cub, &data, |_| false).is_empty());
        assert_eq!(compact(ScanFlavor::Cub, &data, |_| true), data);
    }

    #[test]
    fn prop_compact_equals_filter() {
        let mut g = crate::testgen::Gen::new(0xC09A);
        for _ in 0..crate::testgen::cases(64) {
            let data = g.u32_vec(0, 1000, 100);
            let expect: Vec<u32> = data.iter().copied().filter(|&x| x % 2 == 0).collect();
            for f in [ScanFlavor::OneDpl, ScanFlavor::Cub, ScanFlavor::FpgaCustom] {
                assert_eq!(compact(f, &data, |&x| x % 2 == 0), expect);
            }
        }
    }
}
