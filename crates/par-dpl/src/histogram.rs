//! Parallel histogram — per-thread private bins merged at the end, the
//! standard GPU-library formulation (and the shape Altis' `Where`
//! selectivity analysis uses when profiling predicates).


/// Histogram of `data` into `bins` equal-width buckets over
/// `[lo, hi)`. Out-of-range values are clamped into the edge buckets.
pub fn histogram_f32(data: &[f32], bins: usize, lo: f32, hi: f32) -> Vec<u64> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "empty histogram range");
    let n = data.len();
    let width = (hi - lo) / bins as f32;
    let bucket = |v: f32| -> usize {
        (((v - lo) / width) as isize).clamp(0, bins as isize - 1) as usize
    };
    let threads = crate::util::thread_count_for(n, 8192);
    if threads <= 1 {
        let mut h = vec![0u64; bins];
        for &v in data {
            h[bucket(v)] += 1;
        }
        return h;
    }
    let chunk = n.div_ceil(threads);
    let mut partials = vec![vec![0u64; bins]; threads];
    hetero_rt::pool::parallel_parts(&mut partials, threads, |t, part| {
        let lo_i = t * chunk;
        let hi_i = ((t + 1) * chunk).min(n);
        for &v in &data[lo_i..hi_i] {
            part[bucket(v)] += 1;
        }
    });
    let mut out = vec![0u64; bins];
    for part in partials {
        for (o, p) in out.iter_mut().zip(part) {
            *o += p;
        }
    }
    out
}

/// Histogram of `u32` keys into `bins` buckets by modulo (the integer
/// bucketing the record-filtering workloads use).
pub fn histogram_u32_mod(data: &[u32], bins: usize) -> Vec<u64> {
    assert!(bins > 0, "histogram needs at least one bin");
    let n = data.len();
    let threads = crate::util::thread_count_for(n, 8192);
    let chunk = n.div_ceil(threads).max(1);
    let mut partials = vec![vec![0u64; bins]; threads];
    hetero_rt::pool::parallel_parts(&mut partials, threads, |t, part| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        let slice = &data[lo..hi.max(lo)];
        if hetero_rt::lanes::enabled() && bins <= u32::MAX as usize {
            // Lane path: bucket indices computed 8 at a time (the modulo
            // is the expensive op); the scatter increments stay scalar.
            use hetero_rt::lanes::{LANES, U32x8};
            let mut it = slice.chunks_exact(LANES);
            for lane in &mut it {
                let a: [u32; LANES] = lane.try_into().unwrap();
                let idx = U32x8::from(a).rem(bins as u32);
                for k in 0..LANES {
                    part[idx.0[k] as usize] += 1;
                }
            }
            for &v in it.remainder() {
                part[v as usize % bins] += 1;
            }
        } else {
            for &v in slice {
                part[v as usize % bins] += 1;
            }
        }
    });
    let mut out = vec![0u64; bins];
    for part in partials {
        for (o, p) in out.iter_mut().zip(part) {
            *o += p;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_input_length() {
        let data: Vec<f32> = (0..100_000).map(|i| (i % 1000) as f32).collect();
        let h = histogram_f32(&data, 16, 0.0, 1000.0);
        assert_eq!(h.iter().sum::<u64>(), data.len() as u64);
    }

    #[test]
    fn uniform_data_fills_bins_evenly() {
        let data: Vec<f32> = (0..64_000).map(|i| (i % 64) as f32 + 0.5).collect();
        let h = histogram_f32(&data, 64, 0.0, 64.0);
        assert!(h.iter().all(|&c| c == 1000));
    }

    #[test]
    fn out_of_range_values_clamp_to_edges() {
        // Bins of width 0.5 over [0,1): -5 clamps into bin 0; 0.5 lands
        // in bin 1; 99 clamps into bin 1.
        let h = histogram_f32(&[-5.0, 0.5, 99.0], 2, 0.0, 1.0);
        assert_eq!(h, vec![1, 2]);
    }

    #[test]
    fn mod_histogram_matches_sequential() {
        let data: Vec<u32> = (0..50_000).map(|i| i * 7 + 3).collect();
        let par = histogram_u32_mod(&data, 10);
        let mut seq = vec![0u64; 10];
        for &v in &data {
            seq[v as usize % 10] += 1;
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_input_yields_zero_bins() {
        assert_eq!(histogram_f32(&[], 4, 0.0, 1.0), vec![0; 4]);
        assert_eq!(histogram_u32_mod(&[], 4), vec![0; 4]);
    }

    #[test]
    fn prop_total_count_preserved() {
        let mut g = crate::testgen::Gen::new(0x4157);
        for _ in 0..crate::testgen::cases(64) {
            let data = g.f32_vec(0, 2000, -100.0, 100.0);
            let h = histogram_f32(&data, 7, -100.0, 100.0);
            assert_eq!(h.iter().sum::<u64>(), data.len() as u64);
        }
    }
}
