//! # par-dpl — parallel algorithms library (oneDPL / CUB stand-in)
//!
//! Altis' `Where` benchmark relies on a library prefix-sum: CUDA uses the
//! CUB-style single-pass scan; DPCT migrates it to oneDPL's
//! multi-pass work-efficient scan, which the paper measures at 50 % slower
//! on the RTX 2080; and for FPGAs the paper writes a custom unrolled
//! Single-Task scan (Listing 2) that is up to 100× faster on Stratix 10
//! than the GPU-shaped oneDPL one.
//!
//! This crate implements all three flavours as real algorithms with
//! *structurally different* pass counts (which is exactly where the
//! performance difference comes from), together with the reduce, compact,
//! and sort primitives the suite needs. Each flavour also exposes the
//! kernel-IR descriptor used by the performance models.
//!
//! ## Example
//!
//! ```
//! use par_dpl::scan::{exclusive_scan, ScanFlavor};
//!
//! let flags = [1u32, 0, 1, 1, 0];
//! let mut offsets = vec![0; 5];
//! exclusive_scan(ScanFlavor::Cub, &flags, &mut offsets);
//! assert_eq!(offsets, vec![0, 1, 1, 2, 3]);
//! ```

#![warn(missing_docs)]

pub mod compact;
pub mod histogram;
#[cfg(test)]
pub(crate) mod testgen;
pub mod radix_sort;
pub mod reduce;
pub mod scan;
pub mod segmented;
pub mod sort;
pub mod transform;
pub mod util;

pub use compact::{compact, compact_indices};
pub use reduce::{reduce_max, reduce_min, reduce_sum};
pub use scan::{
    exclusive_scan_cub_style, exclusive_scan_fpga_custom, exclusive_scan_onedpl_style,
    fpga_scan_kernel_ir, inclusive_scan_onedpl_style, ScanFlavor,
};
pub use histogram::{histogram_f32, histogram_u32_mod};
pub use radix_sort::{radix_sort_pairs_u32, radix_sort_u32};
pub use segmented::{min_element_index, segmented_exclusive_scan, segmented_max, segmented_sum};
pub use sort::{sort_by_key, sort_f32};
pub use transform::{count_if, dot_f32, transform_reduce_f32};
