//! LSD radix sort for `u32` keys — the GPU-library sorting algorithm
//! (CUB/oneDPL both ship one), built from the same scan primitives the
//! rest of this crate provides. Useful to downstream users and as a
//! larger integration exercise of the scan machinery.

use crate::scan::exclusive_scan_cub_style;

const RADIX_BITS: u32 = 8;
const BUCKETS: usize = 1 << RADIX_BITS;

/// Sort `u32` keys ascending, stable, via 4 passes of 8-bit counting
/// sort (histogram → exclusive scan → stable scatter).
pub fn radix_sort_u32(keys: &mut Vec<u32>) {
    let n = keys.len();
    if n <= 1 {
        return;
    }
    let mut src = std::mem::take(keys);
    let mut dst = vec![0u32; n];
    for pass in 0..(32 / RADIX_BITS) {
        let shift = pass * RADIX_BITS;
        // Histogram of the current digit.
        let mut counts = vec![0u32; BUCKETS];
        for &k in &src {
            counts[((k >> shift) as usize) & (BUCKETS - 1)] += 1;
        }
        // Bucket offsets via the crate's scan.
        let mut offsets = vec![0u32; BUCKETS];
        exclusive_scan_cub_style(&counts, &mut offsets);
        // Stable scatter.
        for &k in &src {
            let b = ((k >> shift) as usize) & (BUCKETS - 1);
            dst[offsets[b] as usize] = k;
            offsets[b] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    *keys = src;
}

/// Sort `(key, value)` pairs ascending by key, stable.
pub fn radix_sort_pairs_u32<V: Copy + Default>(keys: &mut Vec<u32>, values: &mut Vec<V>) {
    assert_eq!(keys.len(), values.len(), "key/value length mismatch");
    let n = keys.len();
    if n <= 1 {
        return;
    }
    let mut ks = std::mem::take(keys);
    let mut vs = std::mem::take(values);
    let mut kd = vec![0u32; n];
    let mut vd = vec![V::default(); n];
    for pass in 0..(32 / RADIX_BITS) {
        let shift = pass * RADIX_BITS;
        let mut counts = vec![0u32; BUCKETS];
        for &k in &ks {
            counts[((k >> shift) as usize) & (BUCKETS - 1)] += 1;
        }
        let mut offsets = vec![0u32; BUCKETS];
        exclusive_scan_cub_style(&counts, &mut offsets);
        for (&k, &v) in ks.iter().zip(vs.iter()) {
            let b = ((k >> shift) as usize) & (BUCKETS - 1);
            let o = offsets[b] as usize;
            kd[o] = k;
            vd[o] = v;
            offsets[b] += 1;
        }
        std::mem::swap(&mut ks, &mut kd);
        std::mem::swap(&mut vs, &mut vd);
    }
    *keys = ks;
    *values = vs;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_reverse_sequence() {
        let mut keys: Vec<u32> = (0..10_000).rev().collect();
        radix_sort_u32(&mut keys);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(keys[0], 0);
        assert_eq!(keys[9999], 9999);
    }

    #[test]
    fn matches_std_sort_on_pseudorandom_keys() {
        let mut keys: Vec<u32> =
            (0..100_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        radix_sort_u32(&mut keys);
        assert_eq!(keys, expect);
    }

    #[test]
    fn pairs_stay_paired_and_stable() {
        let mut keys = vec![3u32, 1, 3, 1, 2];
        let mut vals = vec!['a', 'b', 'c', 'd', 'e'];
        radix_sort_pairs_u32(&mut keys, &mut vals);
        assert_eq!(keys, vec![1, 1, 2, 3, 3]);
        // Stability: b before d, a before c.
        assert_eq!(vals, vec!['b', 'd', 'e', 'a', 'c']);
    }

    #[test]
    fn trivial_inputs() {
        let mut empty: Vec<u32> = vec![];
        radix_sort_u32(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![42u32];
        radix_sort_u32(&mut one);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn full_range_keys() {
        let mut keys = vec![u32::MAX, 0, u32::MAX / 2, 1, u32::MAX - 1];
        radix_sort_u32(&mut keys);
        assert_eq!(keys, vec![0, 1, u32::MAX / 2, u32::MAX - 1, u32::MAX]);
    }

    #[test]
    fn prop_matches_std_sort() {
        let mut g = crate::testgen::Gen::new(0x4AD1);
        for _ in 0..crate::testgen::cases(64) {
            let mut keys = g.u32_vec(0, 3000, u32::MAX);
            let mut expect = keys.clone();
            expect.sort_unstable();
            radix_sort_u32(&mut keys);
            assert_eq!(keys, expect);
        }
    }
}
