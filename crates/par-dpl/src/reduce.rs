//! Parallel reductions (sum / min / max) over slices.
//!
//! Deterministic chunked tree reductions: each thread reduces a
//! contiguous chunk, then the chunk results reduce sequentially in chunk
//! order, so f32 sums are reproducible run-to-run (important for the
//! suite's regression tests).

use hetero_rt::lanes::F32x8;

fn chunked_reduce<T, F>(data: &[T], identity: T, f: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let n = data.len();
    if n == 0 {
        return identity;
    }
    let threads = crate::util::thread_count_for(n, 8192);
    if threads == 1 {
        return data.iter().fold(identity, |a, &b| f(a, b));
    }
    let chunk = n.div_ceil(threads);
    let mut partials = vec![identity; threads];
    hetero_rt::pool::parallel_parts(&mut partials, threads, |t, p| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        if lo < hi {
            *p = data[lo..hi].iter().fold(identity, |a, &b| f(a, b));
        }
    });
    partials.into_iter().fold(identity, f)
}

/// Parallel sum of f32 values (deterministic chunk order).
///
/// Deliberately **not** lane-vectorized: f32 addition is order-sensitive
/// and this fold's chunk-order tree is the reproducibility contract the
/// regression suites pin (DESIGN.md §10's refusal rule).
pub fn reduce_sum(data: &[f32]) -> f32 {
    chunked_reduce(data, 0.0f32, |a, b| a + b)
}

/// Chunk fold for min/max with 8 lane accumulators. `f32::min`/`max`
/// are commutative and associative (NaN-ignoring; zero-sign ties are
/// unspecified scalar-to-scalar already), so lane reordering cannot
/// change the selected value.
fn lanes_fold(slice: &[f32], identity: f32, lane: fn(F32x8, F32x8) -> F32x8) -> f32 {
    use hetero_rt::lanes::LANES;
    let mut acc = F32x8::splat(identity);
    let mut it = slice.chunks_exact(LANES);
    for c in &mut it {
        let a: [f32; LANES] = c.try_into().unwrap();
        acc = lane(acc, F32x8::from(a));
    }
    let scalar: fn(f32, f32) -> f32 =
        if identity == f32::INFINITY { f32::min } else { f32::max };
    let head = acc.to_array().iter().fold(identity, |a, &b| scalar(a, b));
    it.remainder().iter().fold(head, |a, &b| scalar(a, b))
}

fn reduce_minmax(data: &[f32], identity: f32, lane: fn(F32x8, F32x8) -> F32x8) -> f32 {
    let scalar: fn(f32, f32) -> f32 =
        if identity == f32::INFINITY { f32::min } else { f32::max };
    if !hetero_rt::lanes::enabled() {
        return chunked_reduce(data, identity, scalar);
    }
    let n = data.len();
    if n == 0 {
        return identity;
    }
    let threads = crate::util::thread_count_for(n, 8192);
    if threads == 1 {
        return lanes_fold(data, identity, lane);
    }
    let chunk = n.div_ceil(threads);
    let mut partials = vec![identity; threads];
    hetero_rt::pool::parallel_parts(&mut partials, threads, |t, p| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        if lo < hi {
            *p = lanes_fold(&data[lo..hi], identity, lane);
        }
    });
    partials.into_iter().fold(identity, scalar)
}

/// Parallel minimum; returns `f32::INFINITY` for empty input.
pub fn reduce_min(data: &[f32]) -> f32 {
    reduce_minmax(data, f32::INFINITY, F32x8::min)
}

/// Parallel maximum; returns `f32::NEG_INFINITY` for empty input.
pub fn reduce_max(data: &[f32]) -> f32 {
    reduce_minmax(data, f32::NEG_INFINITY, F32x8::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_sequential() {
        let data: Vec<f32> = (0..100_000).map(|i| (i % 13) as f32 * 0.25).collect();
        let seq: f32 = data.iter().sum();
        let par = reduce_sum(&data);
        assert!((par - seq).abs() < seq.abs() * 1e-4);
    }

    #[test]
    fn min_max_match() {
        let data: Vec<f32> = (0..50_000).map(|i| ((i * 2654435761u64 as usize) % 1000) as f32 - 500.0).collect();
        assert_eq!(reduce_min(&data), data.iter().copied().fold(f32::INFINITY, f32::min));
        assert_eq!(reduce_max(&data), data.iter().copied().fold(f32::NEG_INFINITY, f32::max));
    }

    #[test]
    fn empty_inputs_yield_identities() {
        assert_eq!(reduce_sum(&[]), 0.0);
        assert_eq!(reduce_min(&[]), f32::INFINITY);
        assert_eq!(reduce_max(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn reduction_is_deterministic() {
        let data: Vec<f32> = (0..200_000).map(|i| (i as f32).sin()).collect();
        let a = reduce_sum(&data);
        let b = reduce_sum(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn prop_min_max_bound_all_elements() {
        let mut g = crate::testgen::Gen::new(0x4ED0);
        for _ in 0..crate::testgen::cases(64) {
            let data = g.f32_vec(1, 500, -1e6, 1e6);
            let lo = reduce_min(&data);
            let hi = reduce_max(&data);
            for &x in &data {
                assert!(lo <= x && x <= hi);
            }
        }
    }
}
