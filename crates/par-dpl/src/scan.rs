//! Prefix-sum (scan) implementations in three flavours.
//!
//! * [`exclusive_scan_onedpl_style`] — the work-efficient multi-pass
//!   parallel scan a GPU library ships: per-chunk reduction pass, scan of
//!   chunk totals, then a per-chunk scan-and-add pass. Reads the input
//!   twice and writes once → more memory traffic than a single-pass scan,
//!   the structural reason the paper measures it 50 % slower than CUB on
//!   the RTX 2080.
//! * [`exclusive_scan_cub_style`] — single-pass chained scan in the
//!   spirit of CUB's decoupled look-back: chunks are scanned once, with
//!   each chunk consuming its predecessor's running total as soon as it
//!   is published. One read and one write per element.
//! * [`exclusive_scan_fpga_custom`] — the paper's Listing 2: a
//!   Single-Task sequential recurrence with an unroll hint, II = 1. On
//!   the host this is a plain sequential scan; its FPGA cost comes from
//!   the IR descriptor in [`fpga_scan_kernel_ir`].

use std::sync::atomic::{AtomicU64, Ordering};

use hetero_ir::builder::{KernelBuilder, LoopBuilder};
use hetero_ir::ir::{Kernel, OpMix};

/// Which scan implementation a caller selected (plumbs through `Where`'s
/// device-specific dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanFlavor {
    /// oneDPL-style multi-pass parallel scan (GPU default after DPCT).
    OneDpl,
    /// CUB-style single-pass scan (CUDA's library).
    Cub,
    /// The paper's custom FPGA Single-Task scan (Listing 2).
    FpgaCustom,
}


/// oneDPL-style exclusive scan: three phases, two full input reads.
pub fn exclusive_scan_onedpl_style(input: &[u32], output: &mut [u32]) {
    assert_eq!(input.len(), output.len(), "scan length mismatch");
    let n = input.len();
    if n == 0 {
        return;
    }
    let threads = crate::util::thread_count_for(n, 4096);
    let chunk = n.div_ceil(threads);

    // Phase 1: per-chunk reduction (first read of the input), on the
    // persistent runtime pool — no threads spawned per pass. Wrapping
    // u32 addition is associative and commutative, so the 8-lane
    // accumulator fold is bit-equal to the sequential fold.
    let mut totals = vec![0u32; threads];
    hetero_rt::pool::parallel_parts(&mut totals, threads, |t, total| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        if lo < hi {
            let slice = &input[lo..hi];
            if hetero_rt::lanes::enabled() {
                let mut acc = hetero_rt::lanes::U32x8::splat(0);
                let mut it = slice.chunks_exact(hetero_rt::lanes::LANES);
                for lane in &mut it {
                    let a: [u32; hetero_rt::lanes::LANES] = lane.try_into().unwrap();
                    acc = acc.wrapping_add(hetero_rt::lanes::U32x8::from(a));
                }
                let tail =
                    it.remainder().iter().fold(0u32, |a, &b| a.wrapping_add(b));
                *total = acc.hsum_wrapping().wrapping_add(tail);
            } else {
                *total = slice.iter().fold(0u32, |a, &b| a.wrapping_add(b));
            }
        }
    });

    // Phase 2: exclusive scan of chunk totals (tiny, sequential).
    let mut offsets = vec![0u32; threads];
    let mut acc = 0u32;
    for (o, &t) in offsets.iter_mut().zip(totals.iter()) {
        *o = acc;
        acc = acc.wrapping_add(t);
    }

    // Phase 3: per-chunk exclusive scan + offset (second read, one
    // write). The lane path computes the in-lane exclusive prefix and
    // adds the running offset; wrapping adds keep it bit-equal to the
    // scalar running prefix.
    let mut parts: Vec<&mut [u32]> = output.chunks_mut(chunk).collect();
    hetero_rt::pool::parallel_parts(&mut parts, threads, |t, out_chunk| {
        let lo = t * chunk;
        let len = out_chunk.len();
        let mut run = offsets[t];
        let mut k = 0;
        if hetero_rt::lanes::enabled() {
            use hetero_rt::lanes::{LANES, U32x8};
            while k + LANES <= len {
                let a: [u32; LANES] = input[lo + k..lo + k + LANES].try_into().unwrap();
                let (pre, lane_total) = U32x8::from(a).prefix_exclusive_wrapping();
                let v = pre.wrapping_add(U32x8::splat(run));
                out_chunk[k..k + LANES].copy_from_slice(&v.to_array());
                run = run.wrapping_add(lane_total);
                k += LANES;
            }
        }
        for (o, &x) in out_chunk[k..].iter_mut().zip(&input[lo + k..lo + len]) {
            *o = run;
            run = run.wrapping_add(x);
        }
    });
}

/// oneDPL-style inclusive scan (same pass structure).
pub fn inclusive_scan_onedpl_style(input: &[u32], output: &mut [u32]) {
    exclusive_scan_onedpl_style(input, output);
    for (o, &i) in output.iter_mut().zip(input.iter()) {
        *o = o.wrapping_add(i);
    }
}

/// CUB-style single-pass chained exclusive scan: each chunk scans its
/// data once and publishes its running total; the next chunk spins until
/// the predecessor total is available (decoupled look-back, simplified
/// to chained look-back).
pub fn exclusive_scan_cub_style(input: &[u32], output: &mut [u32]) {
    assert_eq!(input.len(), output.len(), "scan length mismatch");
    let n = input.len();
    if n == 0 {
        return;
    }
    let threads = crate::util::thread_count_for(n, 4096);
    let chunk = n.div_ceil(threads);

    // published[t] = 1 + inclusive running total of chunks 0..=t
    // (0 = not yet published). Using +1 lets 0 mean "pending" while
    // still supporting genuine zero totals; u64 so the +1 cannot wrap
    // even when the u32 total is at its maximum.
    let published: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();

    // Runs on the persistent pool in *ordered* mode. The spin-wait on
    // the predecessor is only safe when part indices are handed out in
    // globally ascending order: by the time any thread works on chunk t,
    // chunk t-1 has already been claimed by a running thread that will
    // publish. The default stealing mode breaks that (a thief can hold
    // chunk t while t-1 is unclaimed and every other thread is spinning),
    // so this is the one caller of `parallel_parts_ordered`.
    let mut parts: Vec<&mut [u32]> = output.chunks_mut(chunk).collect();
    hetero_rt::pool::parallel_parts_ordered(&mut parts, threads, |t, out_chunk| {
        let lo = t * chunk;
        // Single pass over own chunk: exclusive scan into output
        // while computing the chunk total.
        let mut local = 0u32;
        for (k, o) in out_chunk.iter_mut().enumerate() {
            *o = local;
            local = local.wrapping_add(input[lo + k]);
        }
        // Wait for predecessor's running total (chunk 0 starts).
        let prefix = if t == 0 {
            0u32
        } else {
            loop {
                let v = published[t - 1].load(Ordering::Acquire);
                if v != 0 {
                    break (v - 1) as u32;
                }
                std::hint::spin_loop();
            }
        };
        // Publish own inclusive total for the successor.
        published[t].store(1 + u64::from(prefix.wrapping_add(local)), Ordering::Release);
        // Add the prefix to the chunk.
        if prefix != 0 {
            for o in out_chunk.iter_mut() {
                *o = o.wrapping_add(prefix);
            }
        }
    });
}

/// The paper's custom FPGA scan (Listing 2): a Single-Task sequential
/// recurrence, unrolled by 2 in hardware. Functionally it is a plain
/// exclusive scan; note the paper's code computes
/// `prefix[i] = prefix[i-1] + results[i]`, i.e. an exclusive scan that
/// skips `results[0]` — we reproduce the standard exclusive semantics
/// the surrounding `Where` code expects.
pub fn exclusive_scan_fpga_custom(input: &[u32], output: &mut [u32]) {
    assert_eq!(input.len(), output.len(), "scan length mismatch");
    let mut run = 0u32;
    for (o, &i) in output.iter_mut().zip(input.iter()) {
        *o = run;
        run = run.wrapping_add(i);
    }
}

/// Kernel-IR descriptor of the custom FPGA scan over `n` elements:
/// a Single-Task loop with II = 1, unroll 2, restrict args, reading 4 B
/// and writing 4 B per iteration — exactly Listing 2's attributes.
pub fn fpga_scan_kernel_ir(n: u64) -> Kernel {
    let body = OpMix {
        int_ops: 1,
        global_read_bytes: 4,
        global_write_bytes: 4,
        ..OpMix::default()
    };
    let l = LoopBuilder::new("scan", n)
        .body(body)
        .ii(1)
        .unroll(2)
        .loop_carried_dep() // the recurrence — but an integer add chain
        .build();
    // Integer accumulation closes timing at II=1 on these parts (unlike
    // FP); the explicit ii(1) attribute records the author's request.
    KernelBuilder::single_task("exclusive_scan_custom")
        .loop_(l)
        .restrict()
        .build()
}

/// Dispatch helper used by `Where`.
pub fn exclusive_scan(flavor: ScanFlavor, input: &[u32], output: &mut [u32]) {
    match flavor {
        ScanFlavor::OneDpl => exclusive_scan_onedpl_style(input, output),
        ScanFlavor::Cub => exclusive_scan_cub_style(input, output),
        ScanFlavor::FpgaCustom => exclusive_scan_fpga_custom(input, output),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_exclusive(input: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0u32;
        for &x in input {
            out.push(acc);
            acc = acc.wrapping_add(x);
        }
        out
    }

    #[test]
    fn all_flavors_match_naive_on_small_input() {
        let input: Vec<u32> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let expect = naive_exclusive(&input);
        for flavor in [ScanFlavor::OneDpl, ScanFlavor::Cub, ScanFlavor::FpgaCustom] {
            let mut out = vec![0; input.len()];
            exclusive_scan(flavor, &input, &mut out);
            assert_eq!(out, expect, "{flavor:?}");
        }
    }

    #[test]
    fn large_input_parallel_flavors_agree() {
        let input: Vec<u32> = (0..1_000_003).map(|i| (i % 7) as u32).collect();
        let expect = naive_exclusive(&input);
        let mut a = vec![0; input.len()];
        exclusive_scan_onedpl_style(&input, &mut a);
        assert_eq!(a, expect);
        let mut b = vec![0; input.len()];
        exclusive_scan_cub_style(&input, &mut b);
        assert_eq!(b, expect);
    }

    #[test]
    fn inclusive_scan_is_exclusive_plus_self() {
        let input: Vec<u32> = (0..100).collect();
        let mut inc = vec![0; 100];
        inclusive_scan_onedpl_style(&input, &mut inc);
        let exc = naive_exclusive(&input);
        for i in 0..100 {
            assert_eq!(inc[i], exc[i].wrapping_add(input[i]));
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let mut out: Vec<u32> = vec![];
        exclusive_scan_cub_style(&[], &mut out);
        assert!(out.is_empty());
        let mut out = vec![99u32];
        exclusive_scan_onedpl_style(&[42], &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn wrapping_behaviour_is_consistent() {
        let input = vec![u32::MAX, 2, u32::MAX, 7];
        let expect = naive_exclusive(&input);
        for flavor in [ScanFlavor::OneDpl, ScanFlavor::Cub, ScanFlavor::FpgaCustom] {
            let mut out = vec![0; input.len()];
            exclusive_scan(flavor, &input, &mut out);
            assert_eq!(out, expect, "{flavor:?}");
        }
    }

    #[test]
    fn fpga_scan_ir_matches_listing2() {
        let k = fpga_scan_kernel_ir(1 << 20);
        assert!(k.args_restrict);
        assert_eq!(k.loops.len(), 1);
        let l = &k.loops[0];
        assert_eq!(l.attrs.initiation_interval, Some(1));
        assert_eq!(l.attrs.unroll, 2);
        assert_eq!(l.trip_count, 1 << 20);
    }

    #[test]
    fn prop_flavors_agree_with_naive() {
        let mut g = crate::testgen::Gen::new(0x5CA7);
        for _ in 0..crate::testgen::cases(64) {
            let input = g.u32_vec(0, 2000, 1000);
            let expect = naive_exclusive(&input);
            for flavor in [ScanFlavor::OneDpl, ScanFlavor::Cub, ScanFlavor::FpgaCustom] {
                let mut out = vec![0; input.len()];
                exclusive_scan(flavor, &input, &mut out);
                assert_eq!(out, expect, "{flavor:?}, n = {}", input.len());
            }
        }
    }
}
