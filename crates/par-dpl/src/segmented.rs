//! Segmented primitives: per-segment scan and reduction over a flat
//! array partitioned by segment offsets (CSR-style). These back
//! irregular workloads like CFD's per-element neighbour sums and
//! LavaMD's per-box accumulations when expressed with library calls.

/// Exclusive scan within each segment. `offsets` are CSR segment starts
/// with a final end sentinel (`offsets.len() == segments + 1`).
pub fn segmented_exclusive_scan(data: &[u32], offsets: &[usize], out: &mut [u32]) {
    assert_eq!(data.len(), out.len(), "segmented scan length mismatch");
    validate_offsets(offsets, data.len());
    for seg in offsets.windows(2) {
        let (lo, hi) = (seg[0], seg[1]);
        let mut acc = 0u32;
        for i in lo..hi {
            out[i] = acc;
            acc = acc.wrapping_add(data[i]);
        }
    }
}

/// Sum of each segment; returns one value per segment.
pub fn segmented_sum(data: &[f32], offsets: &[usize]) -> Vec<f32> {
    validate_offsets(offsets, data.len());
    offsets
        .windows(2)
        .map(|seg| data[seg[0]..seg[1]].iter().sum())
        .collect()
}

/// Maximum of each segment; empty segments yield `f32::NEG_INFINITY`.
pub fn segmented_max(data: &[f32], offsets: &[usize]) -> Vec<f32> {
    validate_offsets(offsets, data.len());
    offsets
        .windows(2)
        .map(|seg| {
            data[seg[0]..seg[1]]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max)
        })
        .collect()
}

/// Index of the minimum element of a slice (ties to the first), or
/// `None` for an empty slice — `std::min_element` for the suite.
pub fn min_element_index(data: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in data.iter().enumerate() {
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

fn validate_offsets(offsets: &[usize], len: usize) {
    assert!(!offsets.is_empty(), "offsets needs at least the end sentinel");
    assert_eq!(*offsets.last().unwrap(), len, "offsets must end at data length");
    assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "offsets must be non-decreasing"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_restarts_at_segment_boundaries() {
        let data = vec![1u32, 2, 3, 10, 20, 5];
        let offsets = vec![0, 3, 5, 6];
        let mut out = vec![0; 6];
        segmented_exclusive_scan(&data, &offsets, &mut out);
        assert_eq!(out, vec![0, 1, 3, 0, 10, 0]);
    }

    #[test]
    fn sums_and_maxes_per_segment() {
        let data = vec![1.0f32, 2.0, 3.0, -1.0, 5.0];
        let offsets = vec![0, 2, 2, 5];
        assert_eq!(segmented_sum(&data, &offsets), vec![3.0, 0.0, 7.0]);
        let m = segmented_max(&data, &offsets);
        assert_eq!(m[0], 2.0);
        assert_eq!(m[1], f32::NEG_INFINITY); // empty segment
        assert_eq!(m[2], 5.0);
    }

    #[test]
    fn min_element_ties_to_first() {
        assert_eq!(min_element_index(&[3.0, 1.0, 1.0, 2.0]), Some(1));
        assert_eq!(min_element_index(&[]), None);
        assert_eq!(min_element_index(&[7.0]), Some(0));
    }

    #[test]
    #[should_panic(expected = "offsets must end at data length")]
    fn bad_sentinel_is_rejected() {
        segmented_sum(&[1.0, 2.0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_offsets_are_rejected() {
        segmented_sum(&[1.0, 2.0, 3.0], &[0, 2, 1, 3]);
    }

    #[test]
    fn prop_segment_sums_total_matches_whole() {
        let mut g = crate::testgen::Gen::new(0x5E91);
        for _ in 0..crate::testgen::cases(64) {
            let data = g.f32_vec(1, 200, 0.0, 10.0);
            let cut = g.range(0, 200).min(data.len());
            let offsets = vec![0, cut, data.len()];
            let sums = segmented_sum(&data, &offsets);
            let total: f32 = data.iter().sum();
            assert!((sums[0] + sums[1] - total).abs() < 1e-3);
        }
    }
}
