//! Sorting primitives: a parallel merge sort for f32 data and a
//! key-value sort (used by KMeans diagnostics and the Where benchmark's
//! verification paths).


/// Sort f32 values ascending (NaNs sort last), in parallel for large
/// inputs.
pub fn sort_f32(data: &mut [f32]) {
    let n = data.len();
    let threads = crate::util::thread_count_for(n, 16384);
    if threads <= 1 {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        return;
    }
    // Parallel chunk sort (on the persistent runtime pool) + sequential
    // k-way merge via repeated 2-way merges (simple, allocation-bounded,
    // deterministic).
    let chunk = n.div_ceil(threads);
    let mut pieces: Vec<&mut [f32]> = data.chunks_mut(chunk).collect();
    hetero_rt::pool::parallel_parts(&mut pieces, threads, |_, piece| {
        piece.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    });
    // Merge sorted runs pairwise until one run remains.
    let mut run = chunk;
    let mut buf = vec![0f32; n];
    while run < n {
        let mut lo = 0;
        while lo + run < n {
            let mid = lo + run;
            let hi = (lo + 2 * run).min(n);
            merge_into(&data[lo..mid], &data[mid..hi], &mut buf[lo..hi]);
            data[lo..hi].copy_from_slice(&buf[lo..hi]);
            lo = hi;
        }
        run *= 2;
    }
}

fn merge_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out[k] = a[i];
            i += 1;
        } else {
            out[k] = b[j];
            j += 1;
        }
        k += 1;
    }
    out[k..k + a.len() - i].copy_from_slice(&a[i..]);
    k += a.len() - i;
    out[k..k + b.len() - j].copy_from_slice(&b[j..]);
}

/// Sort `(key, value)` pairs by key ascending; stable.
pub fn sort_by_key<V: Copy>(keys: &mut [u32], values: &mut [V]) {
    assert_eq!(keys.len(), values.len(), "key/value length mismatch");
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    idx.sort_by_key(|&i| keys[i]);
    let old_keys = keys.to_vec();
    let old_vals = values.to_vec();
    for (dst, &src) in idx.iter().enumerate() {
        keys[dst] = old_keys[src];
        values[dst] = old_vals[src];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_random_data() {
        let mut g = crate::testgen::Gen::new(7);
        let mut data: Vec<f32> = (0..100_000).map(|_| g.f32(-1e3, 1e3)).collect();
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sort_f32(&mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn small_and_empty_inputs() {
        let mut e: Vec<f32> = vec![];
        sort_f32(&mut e);
        assert!(e.is_empty());
        let mut one = vec![3.5f32];
        sort_f32(&mut one);
        assert_eq!(one, vec![3.5]);
        let mut two = vec![2.0f32, 1.0];
        sort_f32(&mut two);
        assert_eq!(two, vec![1.0, 2.0]);
    }

    #[test]
    fn sort_by_key_is_stable() {
        let mut keys = vec![2u32, 1, 2, 1];
        let mut vals = vec!['a', 'b', 'c', 'd'];
        sort_by_key(&mut keys, &mut vals);
        assert_eq!(keys, vec![1, 1, 2, 2]);
        assert_eq!(vals, vec!['b', 'd', 'a', 'c']);
    }

    #[test]
    fn prop_sorted_output_is_permutation() {
        let mut g = crate::testgen::Gen::new(0x50F7);
        for _ in 0..crate::testgen::cases(64) {
            let data = g.f32_vec(0, 3000, -1e5, 1e5);
            let mut sorted = data.clone();
            sort_f32(&mut sorted);
            assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
            let mut a = data.clone();
            let mut b = sorted.clone();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(a, b);
        }
    }
}
