//! Deterministic input generator (SplitMix64) for the randomized unit
//! tests — the offline replacement for the previous proptest strategies.
//! Default iteration counts stay quick; the `heavy-tests` feature
//! multiplies them for longer soak runs.

pub struct Gen(u64);

impl Gen {
    pub fn new(seed: u64) -> Self {
        Gen(seed)
    }

    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    /// Uniform u32 in `[0, bound)`.
    pub fn u32(&mut self, bound: u32) -> u32 {
        (self.next() % bound as u64) as u32
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + (hi - lo) * unit
    }

    /// Vector of uniform u32 values below `bound`, with random length in
    /// `[min_len, max_len)`.
    pub fn u32_vec(&mut self, min_len: usize, max_len: usize, bound: u32) -> Vec<u32> {
        let n = self.range(min_len, max_len);
        (0..n).map(|_| self.u32(bound)).collect()
    }

    /// Vector of uniform f32 values in `[lo, hi)`, with random length in
    /// `[min_len, max_len)`.
    pub fn f32_vec(&mut self, min_len: usize, max_len: usize, lo: f32, hi: f32) -> Vec<f32> {
        let n = self.range(min_len, max_len);
        (0..n).map(|_| self.f32(lo, hi)).collect()
    }
}

/// Iteration count for randomized tests, scaled up by `heavy-tests`.
pub fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 8
    } else {
        base
    }
}
