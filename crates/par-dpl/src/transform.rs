//! Fused transform primitives: `transform_reduce` and `count_if`, the
//! remaining oneDPL surface the suite's host paths use (e.g. weighted
//! sums in ParticleFilter and selectivity estimation in Where).


/// Map each element with `f` and sum the results, in parallel with
/// deterministic chunked combination.
pub fn transform_reduce_f32<T: Sync>(data: &[T], f: impl Fn(&T) -> f32 + Sync) -> f32 {
    let n = data.len();
    if n == 0 {
        return 0.0;
    }
    let threads = crate::util::thread_count_for(n, 8192);
    if threads == 1 {
        return data.iter().map(&f).sum();
    }
    let chunk = n.div_ceil(threads);
    let mut partials = vec![0f32; threads];
    hetero_rt::pool::parallel_parts(&mut partials, threads, |t, p| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        if lo < hi {
            *p = data[lo..hi].iter().map(&f).sum();
        }
    });
    partials.into_iter().sum()
}

/// Count the elements satisfying `pred`, in parallel.
pub fn count_if<T: Sync>(data: &[T], pred: impl Fn(&T) -> bool + Sync) -> usize {
    let n = data.len();
    if n == 0 {
        return 0;
    }
    let threads = crate::util::thread_count_for(n, 8192);
    if threads == 1 {
        return data.iter().filter(|x| pred(x)).count();
    }
    let chunk = n.div_ceil(threads);
    let mut partials = vec![0usize; threads];
    hetero_rt::pool::parallel_parts(&mut partials, threads, |t, p| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        if lo < hi {
            *p = data[lo..hi].iter().filter(|x| pred(x)).count();
        }
    });
    partials.into_iter().sum()
}

/// Weighted dot product: `Σ a[i]·b[i]` (ParticleFilter's estimate step).
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let idx: Vec<usize> = (0..n).collect();
    transform_reduce_f32(&idx, |&i| a[i] * b[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_reduce_matches_sequential() {
        let data: Vec<i64> = (0..200_000).collect();
        let par = transform_reduce_f32(&data, |&x| (x % 10) as f32);
        let seq: f32 = data.iter().map(|&x| (x % 10) as f32).sum();
        assert!((par - seq).abs() < seq.abs() * 1e-4);
    }

    #[test]
    fn count_if_matches_filter_count() {
        let data: Vec<u32> = (0..150_000).map(|i| i % 97).collect();
        assert_eq!(count_if(&data, |&x| x < 30), data.iter().filter(|&&x| x < 30).count());
    }

    #[test]
    fn dot_product_basic() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![4.0f32, 5.0, 6.0];
        assert!((dot_f32(&a, &b) - 32.0).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(transform_reduce_f32::<f32>(&[], |&x| x), 0.0);
        assert_eq!(count_if::<u8>(&[], |_| true), 0);
        assert_eq!(dot_f32(&[], &[]), 0.0);
    }

    #[test]
    fn prop_count_if_bounded_by_len() {
        let mut g = crate::testgen::Gen::new(0xC0F1);
        for _ in 0..crate::testgen::cases(64) {
            let data = g.u32_vec(0, 2000, 100);
            let c = count_if(&data, |&x| x % 2 == 0);
            assert!(c <= data.len());
            let inv = count_if(&data, |&x| x % 2 == 1);
            assert_eq!(c + inv, data.len());
        }
    }
}
