//! Shared execution-policy helpers for the parallel primitives.

/// How many worker threads to use for an input of `n` elements, given a
/// per-thread grain size: small inputs run sequentially (pool handoff
/// costs more than the work), larger inputs scale up to the runtime
/// pool's width (cached `available_parallelism` or the
/// `HETERO_RT_THREADS` override — not re-queried per call).
pub fn thread_count_for(n: usize, grain: usize) -> usize {
    let hw = hetero_rt::pool::auto_threads();
    hw.min(n.div_ceil(grain.max(1))).max(1)
}

/// Split `n` items into per-thread half-open ranges of near-equal size.
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let t = threads.max(1);
    let chunk = n.div_ceil(t).max(1);
    (0..t)
        .map(|i| (i * chunk, ((i + 1) * chunk).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_inputs_run_sequentially() {
        assert_eq!(thread_count_for(10, 4096), 1);
        assert_eq!(thread_count_for(0, 4096), 1);
    }

    #[test]
    fn thread_count_is_monotone_and_bounded() {
        let hw = hetero_rt::pool::auto_threads();
        let small = thread_count_for(1 << 12, 4096);
        let large = thread_count_for(1 << 24, 4096);
        assert!(large >= small);
        assert!(large <= hw);
        assert!(small >= 1);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 100, 1001] {
            for t in [1usize, 2, 3, 8] {
                let ranges = chunk_ranges(n, t);
                let total: usize = ranges.iter().map(|(lo, hi)| hi - lo).sum();
                assert_eq!(total, n, "n={n} t={t}");
                // Contiguous and ordered.
                let mut expect = 0;
                for (lo, hi) in ranges {
                    assert_eq!(lo, expect);
                    expect = hi;
                }
            }
        }
    }
}
