//! DPCT migration walkthrough: runs the paper's Section-3/4 pipeline
//! over one application's source model and prints what each pass did —
//! intercept-build, migration diagnostics, GPU optimisation, and the
//! FPGA refactor (including Raytracing's rejection until the manual
//! virtual-function rewrite).
//!
//! ```text
//! cargo run --release --example dpct_walkthrough
//! ```

use hetero_ir::dpct::{
    migrate, migrate_build_db, optimize_for_gpu, refactor_for_fpga, BuildDatabase,
    CompileCommand, Construct, CudaModule,
};

fn main() {
    // 1. intercept-build: capture and migrate the build database.
    println!("== step 1: intercept-build ==");
    let db = BuildDatabase {
        commands: vec![
            CompileCommand {
                directory: "/src/altis/raytracing".into(),
                file: "raytracing.cu".into(),
                compiler: "nvcc".into(),
                args: vec!["-O3".into(), "-arch=sm_75".into(), "--use_fast_math".into()],
            },
            CompileCommand {
                directory: "/src/altis/common".into(),
                file: "options.cpp".into(),
                compiler: "g++".into(),
                args: vec!["-O2".into()],
            },
        ],
    };
    let (migrated_db, notes) = migrate_build_db(&db);
    for (before, after) in db.commands.iter().zip(&migrated_db.commands) {
        println!(
            "  {} {} {:?}\n    -> {} {} {:?}",
            before.compiler, before.file, before.args, after.compiler, after.file, after.args
        );
    }
    for n in &notes {
        println!("  note [{}]: {}", n.file, n.message);
    }

    // 2. dpct migration with diagnostics.
    println!("\n== step 2: dpct source migration (Raytracing) ==");
    let cuda = altis_core::raytracing::cuda_module();
    let (baseline, diags) = migrate(&cuda);
    for d in &diags {
        println!(
            "  {} {:?}: {}",
            if d.blocking { "[BLOCKING]" } else { "[warning] " },
            d.kind,
            d.message
        );
    }

    // 3. GPU optimisation pass.
    println!("\n== step 3: GPU optimisation ==");
    let optimized = optimize_for_gpu(&baseline);
    println!(
        "  inline threshold: {} -> {}",
        baseline.inline_threshold, optimized.inline_threshold
    );
    println!(
        "  dpct helper headers: {} -> {}",
        baseline.uses_dpct_headers, optimized.uses_dpct_headers
    );

    // 4. FPGA refactor: rejected until the manual rewrite removes the
    //    virtual functions and in-kernel allocation.
    println!("\n== step 4: FPGA refactor ==");
    match refactor_for_fpga(&optimized) {
        Ok(_) => println!("  unexpectedly succeeded"),
        Err(e) => println!("  rejected as the paper describes: {e}"),
    }
    let rewritten = CudaModule {
        name: "raytracing (manually rewritten)".into(),
        constructs: cuda
            .constructs
            .iter()
            .filter(|c| !matches!(c, Construct::VirtualFunctions | Construct::DynamicKernelAlloc))
            .cloned()
            .collect(),
    };
    let (m, _) = migrate(&rewritten);
    match refactor_for_fpga(&optimize_for_gpu(&m)) {
        Ok(f) => println!(
            "  after enum-dispatch rewrite: OK ({} constructs, ready for bitstream builds)",
            f.constructs.len()
        ),
        Err(e) => println!("  still rejected: {e}"),
    }

    // 5. The resulting FPGA design's build report.
    println!("\n== step 5: build report of the optimized FPGA design ==");
    let part = fpga_sim::FpgaPart::stratix10();
    let design = altis_core::raytracing::fpga_design(altis_data::InputSize::S1, true, &part);
    print!("{}", fpga_sim::build_report(&design, &part));
}
