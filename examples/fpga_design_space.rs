//! FPGA design-space exploration: the ablation behind the paper's
//! Section-5 optimisation choices.
//!
//! Sweeps (1) LavaMD's unrolling factor (Case 1: near-linear until
//! timing closure), (2) CFD FP32's compute-unit replication ("replicate
//! as often as possible while each step still helps"), and
//! (3) Mandelbrot's speculated-iterations setting. Prints kernel time,
//! resources, and Fmax for each point, with fit failures reported the
//! way Quartus would reject them.
//!
//! ```text
//! cargo run --release --example fpga_design_space
//! ```

use fpga_sim::{Design, FpgaPart, KernelInstance};
use hetero_ir::builder::{KernelBuilder, LoopBuilder};
use hetero_ir::ir::{AccessPattern, OpMix, Scalar};

fn report(design: &Design, part: &FpgaPart) -> String {
    match fpga_sim::resources::check_fit(design, part) {
        Ok(usage) => {
            let sim = fpga_sim::simulate(design, part);
            let (alm, _, dsp) = usage.utilization(part);
            format!(
                "{:>9.3} ms  ALM {:>5.1}%  DSP {:>5.1}%  {:>5.0} MHz",
                sim.total_seconds * 1e3,
                alm * 100.0,
                dsp * 100.0,
                sim.fmax_mhz
            )
        }
        Err(e) => format!("DOES NOT FIT ({} at {:.0}%)", e.resource, e.utilization * 100.0),
    }
}

fn lavamd_unroll_sweep(part: &FpgaPart) {
    println!("-- LavaMD: unroll factor sweep (paper: 30x on Stratix 10) --");
    let items = 1_000u64 * 128;
    for unroll in [1u32, 4, 8, 16, 30, 64, 128] {
        let inner = LoopBuilder::new("particles_j", 128)
            .body(OpMix { f32_ops: 11, transcendental_ops: 1, local_reads: 4, ..OpMix::default() })
            .unroll(unroll)
            .build();
        let nbrs = LoopBuilder::new("neighbors", 19).child(inner).build();
        let k = KernelBuilder::nd_range("lavamd_force", 128)
            .loop_(nbrs)
            .local_array("stage", Scalar::F32, 128 * 4, AccessPattern::Banked)
            .restrict()
            .build();
        let d = Design::new(format!("lavamd-u{unroll}")).with(KernelInstance::new(k).items(items));
        println!("  unroll {unroll:>3}: {}", report(&d, part));
    }
}

fn cfd_replication_sweep(part: &FpgaPart) {
    println!("-- CFD FP32: compute-unit replication sweep (paper: 4x on S10, 8x on Agilex) --");
    for cu in [1u32, 2, 4, 8, 16, 32] {
        let flux = KernelBuilder::nd_range("compute_flux", 64)
            .simd(2)
            .straight_line(OpMix {
                f32_ops: 150,
                fdiv_ops: 6,
                global_write_bytes: 20,
                ..OpMix::default()
            })
            .restrict()
            .build();
        let d = Design::new(format!("cfd-cu{cu}"))
            .with(KernelInstance::new(flux).items(1 << 20).replicated(cu));
        println!("  CU {cu:>2}: {}", report(&d, part));
    }
}

fn mandelbrot_speculation_sweep(part: &FpgaPart) {
    println!("-- Mandelbrot: speculated-iterations sweep (paper: compiler default 4, set to 0) --");
    for spec in [0u32, 1, 2, 4, 8, 16] {
        let inner = LoopBuilder::new("escape", 2300)
            .body(OpMix { f32_ops: 7, cmp_sel_ops: 2, ..OpMix::default() })
            .speculated(spec)
            .data_dependent_exit()
            .build();
        let pixels = LoopBuilder::new("pixels", 1 << 16).ii(1).child(inner).build();
        let k = KernelBuilder::single_task("mandel").loop_(pixels).restrict().build();
        let d = Design::new(format!("mandel-s{spec}")).with(KernelInstance::new(k));
        println!("  speculated {spec:>2}: {}", report(&d, part));
    }
}

fn main() {
    for part in [FpgaPart::stratix10(), FpgaPart::agilex()] {
        println!("==== {} ====", part.name);
        lavamd_unroll_sweep(&part);
        cfd_replication_sweep(&part);
        mandelbrot_speculation_sweep(&part);
        println!();
    }
}
