//! The Figure-3 KMeans dataflow: baseline kernels exchanging data
//! through global memory vs. the optimized mapCenters ⇄ resetAccFin
//! pair connected by on-chip pipes, running concurrently.
//!
//! The example runs both *functionally* on the runtime (identical
//! results) and then simulates both *FPGA designs* to show where the
//! paper's ~510× comes from.
//!
//! ```text
//! cargo run --release --example kmeans_pipes
//! ```

use altis_core::common::AppVersion;
use altis_data::{InputSize, KmeansParams};
use fpga_sim::FpgaPart;
use hetero_rt::prelude::*;

fn main() {
    let p = KmeansParams { n_points: 16_384, n_features: 16, k: 5, iterations: 8 };

    // Functional: both paths must produce the same clustering.
    let gpu_queue = Queue::new(Device::rtx_2080());
    let fpga_queue = Queue::new(Device::stratix10());
    let baseline = altis_core::kmeans::run(&gpu_queue, &p, AppVersion::SyclBaseline);
    let piped = altis_core::kmeans::run(&fpga_queue, &p, AppVersion::SyclOptimized);
    assert_eq!(baseline.membership, piped.membership);
    println!(
        "functional check: baseline and piped dataflow agree on {} assignments",
        baseline.membership.len()
    );

    // Modelled: simulate the two FPGA designs on the Stratix 10.
    let part = FpgaPart::stratix10();
    for (label, optimized) in [("baseline (via DRAM)", false), ("optimized (pipes)", true)] {
        let design = altis_core::kmeans::fpga_design(InputSize::S3, optimized, &part);
        let report = fpga_sim::simulate(&design, &part);
        let usage = fpga_sim::resources::design_resources(&design);
        let (alm, bram, dsp) = usage.utilization(&part);
        println!(
            "\n{label}:\n  kernel time {:>9.2} ms at {:.0} MHz",
            report.total_seconds * 1e3,
            report.fmax_mhz
        );
        println!(
            "  resources   ALM {:.1}%  BRAM {:.1}%  DSP {:.1}%",
            alm * 100.0,
            bram * 100.0,
            dsp * 100.0
        );
        for g in &report.groups {
            println!(
                "  group {:?} {} {:>8.2} ms",
                g.members,
                if g.members.len() > 1 { "(concurrent, pipes)" } else { "(sequential)" },
                g.seconds * 1e3
            );
        }
    }

    let base = fpga_sim::simulate(
        &altis_core::kmeans::fpga_design(InputSize::S3, false, &part),
        &part,
    )
    .total_seconds;
    let opt = fpga_sim::simulate(
        &altis_core::kmeans::fpga_design(InputSize::S3, true, &part),
        &part,
    )
    .total_seconds;
    println!(
        "\npipes + Single-Task rewrite: {:.0}x faster (paper Figure 4: ~510x at size 3)",
        base / opt
    );
}
