//! Quickstart: run three Altis-SYCL-rs applications on the portable
//! runtime, verify them against their golden references, and print the
//! modelled device times for the paper's Table-2 accelerators.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use altis_core::common::AppVersion;
use altis_core::migration::{measured_seconds, PerfFactors};
use altis_data::InputSize;
use device_model::{DeviceSpec, RuntimeFlavor};
use hetero_rt::prelude::*;
use std::time::Instant;

fn main() {
    let size = InputSize::S1;
    let queue = Queue::with_profiling(Device::cpu());

    println!("Altis-SYCL-rs quickstart — input {size}\n");

    // 1. Run a few applications end-to-end on the host runtime.
    println!("{:<14} {:>12} {:>10}", "App", "host time", "verified");
    for entry in altis_core::all_apps() {
        if !["Mandelbrot", "KMeans", "Where"].contains(&entry.name) {
            continue;
        }
        let t0 = Instant::now();
        let ok = (entry.verify)(&queue, size, AppVersion::SyclOptimized);
        println!(
            "{:<14} {:>10.1?} {:>10}",
            entry.name,
            t0.elapsed(),
            if ok { "yes" } else { "NO" }
        );
        assert!(ok, "{} failed verification", entry.name);
    }

    // 2. Show the modelled cross-device picture for one app.
    println!("\nModelled KMeans run times (paper-scale workload, {size}):");
    let profile = altis_core::kmeans::work_profile(size);
    for dev in DeviceSpec::table2() {
        let flavor = RuntimeFlavor::default_for(dev.class);
        let t = measured_seconds(&profile, &dev, flavor, PerfFactors::neutral());
        println!("  {:<22} {:>9.2} ms", dev.name, t * 1e3);
    }

    println!("\nNext steps:");
    println!("  cargo run --release -p altis-bench --bin repro   # every table & figure");
    println!("  cargo run --release --example kmeans_pipes       # the Figure-3 dataflow");
    println!("  cargo run --release --example fpga_design_space  # FPGA DSE ablation");
}
