//! Render the Raytracing benchmark's sphere scene and write it to a PPM
//! file — a visible end-to-end check that the enum-based material
//! dispatch (the paper's virtual-function replacement) really renders.
//!
//! ```text
//! cargo run --release --example raytrace_scene [out.ppm]
//! ```

use altis_data::RaytracingParams;
use hetero_rt::prelude::*;
use std::io::Write;

fn main() -> std::io::Result<()> {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "raytrace.ppm".to_string());
    let p = RaytracingParams {
        width: 320,
        height: 200,
        samples: 4,
        spheres: 48,
        max_depth: 8,
    };

    let q = Queue::with_profiling(Device::cpu());
    let t0 = std::time::Instant::now();
    let img = altis_core::raytracing::run(&q, &p, altis_core::common::AppVersion::SyclOptimized);
    println!(
        "rendered {}x{} at {} spp in {:.1?} ({} spheres, enum-dispatch materials)",
        p.width,
        p.height,
        p.samples,
        t0.elapsed(),
        p.spheres + 1
    );

    // Gamma-correct and quantise to 8-bit PPM.
    let mut f = std::io::BufWriter::new(std::fs::File::create(&out_path)?);
    writeln!(f, "P3\n{} {}\n255", p.width, p.height)?;
    for y in (0..p.height).rev() {
        for x in 0..p.width {
            let i = (y * p.width + x) * 3;
            for c in 0..3 {
                let v = (img[i + c].max(0.0).sqrt() * 255.99) as u32;
                write!(f, "{} ", v.min(255))?;
            }
        }
        writeln!(f)?;
    }
    println!("wrote {out_path}");

    // The material-layout study from Listing 1: both layouts round-trip.
    use altis_core::raytracing::{MaterialFused, MaterialOriginal, MaterialType, Vec3};
    let original = MaterialOriginal {
        m_type: MaterialType::Dielectric,
        m_albedo: Vec3::new(1.0, 1.0, 1.0),
        m_fuzz: 0.0,
        m_ref_idx: 1.5,
    };
    let fused: MaterialFused = original.into();
    assert_eq!(fused.unfuse(), original);
    println!("Listing-1 material layout fusion verified (float8 <-> struct)");
    Ok(())
}
