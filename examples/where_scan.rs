//! The Where benchmark's scan-flavour study (Sections 3.3 and 5.3):
//! run the record filter with all three prefix-sum implementations —
//! CUB-style single-pass, oneDPL-style multi-pass, and the paper's
//! custom FPGA scan — verify they agree, and time the host versions.
//!
//! ```text
//! cargo run --release --example where_scan
//! ```

use altis_data::{InputSize, WhereParams};
use fpga_sim::FpgaPart;
use par_dpl::scan::{exclusive_scan, ScanFlavor};
use std::time::Instant;

fn main() {
    let p = WhereParams { n_records: 4_000_000, selectivity_pct: 30 };
    let records = altis_core::where_q::generate_records(&p);
    let flags: Vec<u32> = records
        .iter()
        .map(|r| u32::from(altis_core::where_q::predicate(&p, r)))
        .collect();

    println!("Where over {} records (selectivity {}%)\n", p.n_records, p.selectivity_pct);

    // Host timing of the three scan flavours on the same input.
    let mut reference: Option<Vec<u32>> = None;
    for flavor in [ScanFlavor::Cub, ScanFlavor::OneDpl, ScanFlavor::FpgaCustom] {
        let mut out = vec![0u32; flags.len()];
        let t0 = Instant::now();
        exclusive_scan(flavor, &flags, &mut out);
        let dt = t0.elapsed();
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(r, &out, "{flavor:?} disagrees"),
        }
        println!("  {flavor:?} scan: {dt:>10.2?}  (all flavours agree)");
    }

    // The modelled FPGA comparison: GPU-shaped scan synthesised on the
    // Stratix 10 vs. the custom Listing-2 scan.
    let part = FpgaPart::stratix10();
    let base = altis_core::where_q::fpga_design(InputSize::S3, false, &part);
    let opt = altis_core::where_q::fpga_design(InputSize::S3, true, &part);
    let t_base = fpga_sim::simulate(&base, &part);
    let t_opt = fpga_sim::simulate(&opt, &part);
    // Group 1 is the scan stage in both designs.
    let scan_base = t_base.groups[1].seconds;
    let scan_opt = t_opt.groups[1].seconds;
    println!(
        "\nStratix 10 scan stage: GPU-shaped {:.2} ms vs custom {:.2} ms ({:.0}x; paper: up to 100x)",
        scan_base * 1e3,
        scan_opt * 1e3,
        scan_base / scan_opt
    );
    println!(
        "whole Where design:    baseline   {:.2} ms vs optimized {:.2} ms ({:.0}x)",
        t_base.total_seconds * 1e3,
        t_opt.total_seconds * 1e3,
        t_base.total_seconds / t_opt.total_seconds
    );
}
