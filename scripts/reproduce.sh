#!/usr/bin/env bash
# Reproduce everything: build, test, regenerate every table/figure, and
# run the Criterion benches. Outputs land next to this script's parent.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace --release 2>&1 | tee test_output.txt

echo "== tables & figures =="
cargo run --release -p altis-bench --bin repro | tee repro_output.txt
cargo run --release -p altis-bench --bin repro -- --json results.json

echo "== benches =="
cargo bench --workspace 2>&1 | tee bench_output.txt

echo "done: test_output.txt, repro_output.txt, results.json, bench_output.txt"
