#!/usr/bin/env bash
# Full offline verification: release build, test suite, and lint-clean
# clippy. No network access is required (the workspace has path-only
# dependencies); any registry fetch attempt is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings
cargo clippy --all-targets --offline --features heavy-tests -- -D warnings

# hetero-san layer 3: repo lint over every kernel closure in crates/core
# (no unwrap/expect, no raw indexing around BufferView, no HashMap
# iteration-order dependence, no std::time). Exits nonzero on violation.
./target/release/lint

# hetero-san layers 2+1 smoke: static IR verification of every suite
# configuration, then the full 13-config matrix at size 1 under the
# dynamic race detector. Any race report, verifier error, or containment
# break exits nonzero. (The full 13x3 matrix is the long-form gate:
# `./target/release/sanitize` with no flags, ~7 minutes.)
./target/release/sanitize --size 1

# Chaos smoke matrix: the whole suite under seeded fault injection. Every
# run must stay contained (correct results or a typed error; never a
# hang, untyped panic, or poisoned pool) — the chaos binary exits nonzero
# otherwise. Seeds x rates are fixed so failures reproduce exactly.
for seed in 1 2 3 4 5; do
  for rate in 0.01 0.1; do
    echo "chaos: seed ${seed} rate ${rate}"
    HETERO_RT_FAULT_SEED="${seed}" HETERO_RT_FAULT_RATE="${rate}" \
      ./target/release/chaos > /dev/null
  done
done

# SDC defense matrix: the whole suite at size 1 under seeded *silent*
# fault plans (memory bit-flips and stuck-at pages), with the integrity
# layer armed and DMR voting on. Every run must end Correct, Corrected,
# or Quarantined — never silently wrong output accepted as success —
# and (first invocation) the committed golden-checksum registry in
# tests/golden_checksums.tsv must still match the reference outputs.
./target/release/sdc --seed 1 --size 1 > /dev/null
./target/release/sdc --seed 2 --size 1 --skip-golden > /dev/null
./target/release/sdc --seed 3 --size 1 --skip-golden > /dev/null

# Disarmed-hook cost gate: a process that never arms the SDC defense
# pays only the launch-scope counter and two branch loads per launch;
# sdc_overhead times that sequence and fails if it reaches 2% of a
# disarmed launch (writes BENCH_sdc_overhead.json).
./target/release/sdc_overhead > /dev/null

# Record-and-replay + graph-optimizer gates: the graph_replay microbench
# must show the single-wake-up replay path at >= 5x lower per-launch
# overhead than the hardened per-launch path; the fusion gate requires
# the fully optimized FDTD2D replay (hx+hy fused, 3 -> 2 launches/step)
# to be at least as fast as the unfused recorded graph at the
# launch-bound configuration; and --matrix re-verifies the five
# converted apps (FDTD2D, SRAD, CFD, KMeans, ParticleFilter) against
# golden under sequential, pooled per-launch, pooled graph, AND pooled
# graph-opt (full pass pipeline) execution at size 1 — any diverging
# cell or a missed gate exits nonzero.
./target/release/graph_replay /tmp/BENCH_graph_replay.json --gate 5 --fusion-gate 1.0 --matrix > /dev/null

# Service-layer gates. chaos --serve replays the 13-config fault matrix
# through the real JSON protocol and an in-process scheduler: every job
# must get exactly one typed verdict (none uncontained) and the shared
# pool must survive. serve_storm floods the scheduler with 1k queued
# jobs across 8 tenants x 3 priority lanes (zero unaccounted, zero
# uncontained) and then runs the hostile-tenant isolation gate: a
# saturating fault-rate-1.0 tenant must not move a clean tenant's
# closed-loop p99 by more than 10%.
./target/release/chaos --serve > /dev/null
./target/release/serve_storm /tmp/BENCH_serve_storm.json --jobs 1000 > /dev/null

# Streaming gates. chaos --stream runs the seeded fault matrix
# (transient / kernel-panic / alloc / mixed) against live window
# streams of the four converted apps: the stream must survive every
# cell, delivered windows must be bit-equal to the clean trail, and no
# window may be dropped — quarantine the *window*, never the stream.
# stream_storm (committed BENCH_stream_storm.json is the long form) is
# smoked at 60 windows/app: the transient rate sweep, the stuck-group
# rollback-cost run, and the shed-ingress backpressure phase, with the
# golden-trail equality and containment-budget gates armed.
for seed in 1 2 3; do
  echo "chaos --stream: seed ${seed}"
  ./target/release/chaos --stream --seed "${seed}" --rate 0.05 --windows 24 > /dev/null
done
./target/release/stream_storm /tmp/BENCH_stream_storm.json --windows 60 > /dev/null

# hetero-prove gates: the binding-contract sweep (13 apps + the graph
# matrix with enforcement force-enabled: zero violations, certificates
# issued, zero translation-validation rejections), the 26-design FPGA
# verifier sweep against the explicit DPCT_BASELINE_DEVIATIONS
# allowlist (stale entries fail too), and the proof-gated elision
# benchmark — the proven (unchecked) fast path must beat the fully
# checked replay by >= 1.05x on at least one bandwidth-bound FDTD2D /
# SRAD configuration, with record-time check cost amortized to ~0 per
# replay and the armed-queue fallback verified bit-equal.
./target/release/prove /tmp/BENCH_prove_elision.json --gate 1.05 > /dev/null

# Data-path gates. roofline measures every lane-converted kernel's GB/s
# against the pool-parallel memcpy peak, with the scalar (pre-conversion)
# path timed in-process via lanes::force: at least two kernels must show
# a >= 1.5x lane-over-scalar speedup. launch_storm --steal runs the
# NW-wavefront-shaped imbalanced job (per-item cost ~ index) and
# requires the work-stealing deques to beat static whole-span chunking
# by >= 1.2x, on top of the existing exact-dispatch-count and
# scratch-reuse accounting gates.
./target/release/roofline /tmp/BENCH_roofline.json --gate 1.5 > /dev/null
./target/release/launch_storm /tmp/BENCH_launch_storm.json --steal > /dev/null

echo "verify: build + tests + clippy + lint + sanitize smoke + chaos matrix + sdc matrix + sdc overhead gate + graph replay + fusion gates + serve gates + stream chaos + stream storm smoke + prove sweep + elision gate + roofline gate + steal gate all green"
