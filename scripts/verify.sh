#!/usr/bin/env bash
# Full offline verification: release build, test suite, and lint-clean
# clippy. No network access is required (the workspace has path-only
# dependencies); any registry fetch attempt is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings

echo "verify: build + tests + clippy all green"
