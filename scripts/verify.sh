#!/usr/bin/env bash
# Full offline verification: release build, test suite, and lint-clean
# clippy. No network access is required (the workspace has path-only
# dependencies); any registry fetch attempt is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings

# Chaos smoke matrix: the whole suite under seeded fault injection. Every
# run must stay contained (correct results or a typed error; never a
# hang, untyped panic, or poisoned pool) — the chaos binary exits nonzero
# otherwise. Seeds x rates are fixed so failures reproduce exactly.
for seed in 1 2 3 4 5; do
  for rate in 0.01 0.1; do
    echo "chaos: seed ${seed} rate ${rate}"
    HETERO_RT_FAULT_SEED="${seed}" HETERO_RT_FAULT_RATE="${rate}" \
      ./target/release/chaos > /dev/null
  done
done

echo "verify: build + tests + clippy + chaos matrix all green"
