#!/usr/bin/env bash
# Full offline verification: release build, test suite, and lint-clean
# clippy. No network access is required (the workspace has path-only
# dependencies); any registry fetch attempt is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings
cargo clippy --all-targets --offline --features heavy-tests -- -D warnings

# hetero-san layer 3: repo lint over every kernel closure in crates/core
# (no unwrap/expect, no raw indexing around BufferView, no HashMap
# iteration-order dependence, no std::time). Exits nonzero on violation.
./target/release/lint

# hetero-san layers 2+1 smoke: static IR verification of every suite
# configuration, then the full 13-config matrix at size 1 under the
# dynamic race detector. Any race report, verifier error, or containment
# break exits nonzero. (The full 13x3 matrix is the long-form gate:
# `./target/release/sanitize` with no flags, ~7 minutes.)
./target/release/sanitize --size 1

# Chaos smoke matrix: the whole suite under seeded fault injection. Every
# run must stay contained (correct results or a typed error; never a
# hang, untyped panic, or poisoned pool) — the chaos binary exits nonzero
# otherwise. Seeds x rates are fixed so failures reproduce exactly.
for seed in 1 2 3 4 5; do
  for rate in 0.01 0.1; do
    echo "chaos: seed ${seed} rate ${rate}"
    HETERO_RT_FAULT_SEED="${seed}" HETERO_RT_FAULT_RATE="${rate}" \
      ./target/release/chaos > /dev/null
  done
done

echo "verify: build + tests + clippy + lint + sanitize smoke + chaos matrix all green"
