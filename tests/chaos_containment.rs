//! Suite-level containment: applications driven under seeded fault
//! injection must end bit-correct or with a typed error — never an
//! unclassified panic, a hang, or a poisoned worker pool. The full
//! 13-app × seed × rate matrix runs in `scripts/verify.sh` through the
//! `chaos` binary; this test keeps a small in-process slice of it in the
//! tier-1 suite.

use std::sync::Arc;
use std::time::Duration;

use altis_core::common::AppVersion;
use altis_core::suite::{all_apps, run_resilient, ResilienceOutcome};
use altis_data::InputSize;
use hetero_rt::prelude::*;
use hetero_rt::RetryPolicy;

fn chaos_queue(seed: u64, rate: f64) -> Queue {
    Queue::new(Device::cpu())
        .with_fault_plan(Some(Arc::new(FaultPlan::new(seed, rate))))
        .with_retry_policy(RetryPolicy::resilient())
}

#[test]
fn injected_faults_stay_contained_across_apps() {
    let picks = ["Mandelbrot", "NW", "SRAD", "KMeans"];
    let apps: Vec<_> = all_apps()
        .into_iter()
        .filter(|a| picks.contains(&a.name))
        .collect();
    assert_eq!(apps.len(), picks.len());
    for app in &apps {
        for seed in [1u64, 2] {
            let outcome = run_resilient(
                app,
                chaos_queue(seed, 0.05),
                InputSize::S1,
                AppVersion::SyclBaseline,
                Duration::from_secs(60),
            );
            assert!(
                outcome.is_contained(),
                "{} seed {seed}: {outcome:?}",
                app.name
            );
        }
    }

    // The shared pool must still produce exact results afterwards.
    let q = Queue::new(Device::cpu());
    let b = Buffer::<u32>::new(1024);
    let v = b.view();
    q.parallel_for("after_chaos", Range::d1(1024), move |it| {
        v.set(it.gid(0), it.gid(0) as u32);
    });
    assert!(b.to_vec().iter().enumerate().all(|(i, &x)| x == i as u32));
}

#[test]
fn zero_rate_plan_changes_nothing() {
    let app = all_apps()
        .into_iter()
        .find(|a| a.name == "Mandelbrot")
        .unwrap();
    let outcome = run_resilient(
        &app,
        chaos_queue(7, 0.0),
        InputSize::S1,
        AppVersion::SyclBaseline,
        Duration::from_secs(60),
    );
    assert_eq!(outcome, ResilienceOutcome::Correct);
}
