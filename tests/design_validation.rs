//! Integration: structural validation of every hand-authored FPGA
//! design in the suite, build-report generation, and the replication
//! strategy applied to real designs.

use altis_core::suite::all_apps;
use altis_data::InputSize;
use fpga_sim::FpgaPart;
use hetero_ir::printer::{validate_kernel, ValidationError};

#[test]
fn every_suite_kernel_passes_structural_validation() {
    let parts = [FpgaPart::stratix10(), FpgaPart::agilex()];
    for app in all_apps() {
        for part in &parts {
            for optimized in [false, true] {
                let Some(design) = (app.fpga_design)(InputSize::S2, optimized, part) else {
                    continue;
                };
                design.validate().unwrap_or_else(|e| panic!("{}: {e}", design.name));
                for inst in &design.instances {
                    let errs = validate_kernel(&inst.kernel);
                    // Baselines may legitimately carry the SIMD-with-
                    // irregular smell (that is what the refactoring
                    // fixes); everything else must be clean.
                    let hard: Vec<_> = errs
                        .iter()
                        .filter(|e| !matches!(e, ValidationError::SimdWithIrregularLocal { .. }))
                        .collect();
                    assert!(
                        hard.is_empty(),
                        "{} / kernel {}: {:?}",
                        design.name,
                        inst.kernel.name,
                        hard
                    );
                }
            }
        }
    }
}

#[test]
fn build_reports_render_for_all_optimized_designs() {
    let part = FpgaPart::stratix10();
    for app in all_apps() {
        let Some(design) = (app.fpga_design)(InputSize::S3, true, &part) else {
            continue;
        };
        let report = fpga_sim::build_report(&design, &part);
        assert!(report.contains("Fmax"), "{}: no Fmax in report", design.name);
        assert!(!report.contains("FIT FAILED"), "{}:\n{report}", design.name);
        // Every kernel of the design appears in the report.
        for inst in &design.instances {
            assert!(
                report.contains(inst.kernel.name.as_str()),
                "{}: kernel {} missing from report",
                design.name,
                inst.kernel.name
            );
        }
    }
}

#[test]
fn replication_strategy_agrees_with_paper_scale_choices() {
    // Run the Section-5.1 strategy on the CFD FP32 flux kernel shape
    // and check it lands in the small-replication regime the paper
    // chose (4× on Stratix 10), not at the fit limit.
    use fpga_sim::{Design, KernelInstance};
    use hetero_ir::builder::KernelBuilder;
    use hetero_ir::ir::OpMix;

    let part = FpgaPart::stratix10();
    // The pipe-fed flux kernel (reads decoupled, as in the optimized
    // design): compute-limited at one copy, bandwidth-limited soon after.
    let mk = |cu: u32| {
        let flux = KernelBuilder::nd_range("flux", 64)
            .simd(2)
            .straight_line(OpMix {
                f32_ops: 150,
                fdiv_ops: 6,
                pipe_reads: 1,
                global_write_bytes: 20,
                ..OpMix::default()
            })
            .restrict()
            .build();
        Design::new(format!("cfd-flux-cu{cu}"))
            .with(KernelInstance::new(flux).items(1 << 21).replicated(cu))
    };
    let (cu, _t) = fpga_sim::replicate_while_beneficial(&part, 1.10, mk);
    // Memory bandwidth caps the gain: the strategy stops well before
    // the DSP/ALM fit limit (which would allow dozens of copies).
    assert!((2..=16).contains(&cu), "strategy chose cu = {cu}");
}

#[test]
fn dse_sweep_covers_fit_failures_gracefully() {
    use fpga_sim::{Design, KernelInstance};
    use hetero_ir::builder::KernelBuilder;
    use hetero_ir::ir::OpMix;

    let part = FpgaPart::agilex();
    let points = fpga_sim::sweep(&part, &[1, 4, 16, 256], |cu| {
        let k = KernelBuilder::single_task("fat")
            .straight_line(OpMix { f64_ops: 40, ..OpMix::default() })
            .build();
        Design::new(format!("p{cu}")).with(KernelInstance::new(k).replicated(cu))
    });
    assert_eq!(points.len(), 4);
    assert!(points[0].seconds.is_some());
    assert!(points[3].seconds.is_none(), "256 replicas of an FP64 kernel cannot fit");
    // Utilization grows monotonically with replication.
    assert!(points.windows(2).all(|w| w[1].alm_utilization > w[0].alm_utilization));
}

#[test]
fn every_s10_design_retargets_to_agilex() {
    // Section 5.5 as an algorithm: each Stratix-10-tuned optimized
    // design must come out of the retarget procedure fitting the
    // smaller Agilex part.
    let s10 = FpgaPart::stratix10();
    let agx = FpgaPart::agilex();
    for app in all_apps() {
        let Some(design) = (app.fpga_design)(InputSize::S2, true, &s10) else {
            continue;
        };
        let retargeted = fpga_sim::retarget(&design, &agx, 1.10)
            .unwrap_or_else(|e| panic!("{}: {e}", design.name));
        fpga_sim::resources::check_fit(&retargeted, &agx)
            .unwrap_or_else(|e| panic!("{}: {e}", retargeted.name));
        // Retargeted designs clock higher on the newer part, as Table 3
        // reports for every application.
        let f_s10 = fpga_sim::estimate_fmax(&design, &s10);
        let f_agx = fpga_sim::estimate_fmax(&retargeted, &agx);
        assert!(f_agx > f_s10, "{}: {f_agx} <= {f_s10}", retargeted.name);
    }
}
