//! Integration: the regenerated tables and figures reproduce the
//! paper's headline shapes (who wins, rough factors, crossovers).

use altis_bench::*;
use altis_data::InputSize;

#[test]
fn fig2_headline_shapes() {
    let rows = fig2();
    let row = |name: &str| rows.iter().find(|r| r.app == name).unwrap().clone();

    // FDTD2D baseline collapses (mis-measured CUDA + SYCL overhead);
    // optimisation restores it towards parity at larger sizes.
    let fdtd = row("FDTD2D");
    assert!(fdtd.baseline.iter().all(|&s| s < 0.4), "{:?}", fdtd.baseline);
    assert!(fdtd.optimized[2] > 0.8, "{:?}", fdtd.optimized);

    // PF Float's baseline "speedup" is large (CUDA pays pow(a,2));
    // after backporting the fix, parity.
    let pf = row("PF Float");
    assert!(pf.baseline.iter().all(|&s| s > 2.0), "{:?}", pf.baseline);
    assert!(pf.optimized.iter().all(|&s| (0.5..2.0).contains(&s)), "{:?}", pf.optimized);

    // Where underperforms in every configuration (oneDPL scan).
    let wq = row("Where");
    assert!(wq.baseline.iter().chain(wq.optimized.iter()).all(|&s| s < 1.0), "{wq:?}");

    // Raytracing is "not comparable" — far above parity.
    assert!(row("Raytracing").baseline[2] > 5.0);

    // Optimized geomean near parity, growing with size (paper 1.0→1.3).
    let gm = fig2_geomeans(&rows);
    assert!(gm[0] > 0.5 && gm[2] < 2.0 && gm[2] >= gm[0] * 0.8, "{gm:?}");
}

#[test]
fn fig4_headline_shapes() {
    let rows = fig4();
    let s3 = |name: &str| rows.iter().find(|r| r.app == name).unwrap().speedup[2].unwrap();

    // The two headline optimisations.
    assert!(s3("KMeans") > 100.0, "KMeans {}", s3("KMeans"));
    assert!(s3("Mandelbrot") > 100.0, "Mandelbrot {}", s3("Mandelbrot"));
    // Moderate gains stay moderate (paper: ~2.2 / ~5.4).
    assert!((1.5..8.0).contains(&s3("CFD FP64")), "CFD FP64 {}", s3("CFD FP64"));
    assert!((2.0..12.0).contains(&s3("SRAD")), "SRAD {}", s3("SRAD"));
    // PF's Single-Task rewrite grows with size (paper: 0.9 → 272).
    let pf = rows.iter().find(|r| r.app == "PF Naive").unwrap();
    assert!(pf.speedup[2].unwrap() >= pf.speedup[0].unwrap());

    // Whole-suite geomean in the paper's decade (10.7–35.6).
    let gm = fig4_geomeans(&rows);
    assert!(gm.iter().all(|&g| g > 5.0 && g < 100.0), "{gm:?}");
    assert!(gm[2] >= gm[0], "{gm:?}");
}

#[test]
fn fig5_headline_shapes() {
    let rows = fig5();
    let gm1 = fig5_geomeans(&rows, InputSize::S1);
    let gm3 = fig5_geomeans(&rows, InputSize::S3);

    // GPU geomeans grow with size (paper: RTX 5.07→8.61, A100 4.91→23.1).
    for d in 0..3 {
        assert!(gm3[d] > gm1[d], "device {d}: {} -> {}", gm1[d], gm3[d]);
    }
    // FPGAs are competitive with the CPU (order 1x, the paper's 1.4-2.6).
    for (d, g) in gm1.iter().enumerate().skip(3) {
        assert!(*g > 0.3 && *g < 10.0, "device {d}: {g}");
    }
    // The FPGA advantage relative to the best GPU fades from size 1 to
    // size 3 (the paper's bandwidth story).
    let gpu_best_1 = gm1[0].max(gm1[1]).max(gm1[2]);
    let gpu_best_3 = gm3[0].max(gm3[1]).max(gm3[2]);
    let fpga_1 = gm1[3].max(gm1[4]);
    let fpga_3 = gm3[3].max(gm3[4]);
    assert!(fpga_1 / gpu_best_1 > fpga_3 / gpu_best_3);

    // Per-app: CFD underperforms GPUs on FPGA; NW sits below the CPU.
    let find = |name: &str, size: InputSize| {
        rows.iter().find(|r| r.app == name && r.size == size).unwrap()
    };
    let cfd = find("CFD FP32", InputSize::S3);
    assert!(cfd.speedup[3].unwrap() < cfd.speedup[1].unwrap());
    let nw = find("NW", InputSize::S2);
    assert!(nw.speedup[3].unwrap() < 1.0);
    // Where size 3 is missing on Agilex (the paper's crash).
    assert!(find("Where", InputSize::S3).speedup[4].is_none());
}

#[test]
fn table3_headline_shapes() {
    let rows = table3();
    assert!(rows.len() >= 14, "expected ≥14 design rows, got {}", rows.len());
    for (s10, agx) in &rows {
        // Agilex clocks higher everywhere (Table 3's uniform finding).
        assert!(agx.fmax_mhz > s10.fmax_mhz, "{}", s10.design);
        // Everything fits: utilization strictly below 100 %.
        for r in [s10, agx] {
            assert!(r.alm_pct < 100.0 && r.bram_pct < 100.0 && r.dsp_pct < 100.0, "{}", r.design);
        }
    }
    // PF designs are the slow-clock outliers (paper: ~102–108 MHz).
    let pf = rows.iter().find(|(s, _)| s.design.contains("pf-")).unwrap();
    let fdtd = rows.iter().find(|(s, _)| s.design.contains("fdtd2d")).unwrap();
    assert!(pf.0.fmax_mhz < 0.7 * fdtd.0.fmax_mhz);
    // Mostly-higher utilization on the smaller Agilex part.
    let higher = rows.iter().filter(|(s, a)| a.alm_pct > s.alm_pct).count();
    assert!(higher * 2 > rows.len(), "{higher}/{}", rows.len());
}

#[test]
fn fig1_decomposition_shape() {
    let bars = fig1();
    let get = |stack: &str, size: InputSize| {
        bars.iter().find(|b| b.stack == stack && b.size == size).unwrap().clone()
    };
    // Size 1: SYCL total exceeds CUDA total, driven by non-kernel time.
    let (c1, s1) = (get("CUDA", InputSize::S1), get("SYCL", InputSize::S1));
    assert!(s1.total_ms() > c1.total_ms());
    assert!(s1.non_kernel_ms > 3.0 * c1.non_kernel_ms);
    // Size 3: kernel time dominates both stacks; totals converge.
    let (c3, s3) = (get("CUDA", InputSize::S3), get("SYCL", InputSize::S3));
    assert!(s3.kernel_ms > s3.non_kernel_ms);
    assert!(s3.total_ms() / c3.total_ms() < 1.5);
}

#[test]
fn harness_is_deterministic() {
    let a = fig4_geomeans(&fig4());
    let b = fig4_geomeans(&fig4());
    assert_eq!(a, b);
    let x = fig2_geomeans(&fig2());
    let y = fig2_geomeans(&fig2());
    assert_eq!(x, y);
}
