//! One test, one binary: `hetero_rt::lanes::force` flips process-global
//! state, so the lane/scalar parity sweep cannot share a process with
//! the default parallel test runner.
//!
//! Pins the PR's central bit-exactness claim from both sides: with lanes
//! forced *off* every converted kernel runs its pre-conversion data path
//! (per-item kernels, scalar folds) and must still verify against the
//! goldens; with lanes forced *on* the outputs must be **bitwise
//! identical** to the scalar run — not merely within tolerance.

use altis_core::common::{AppVersion, ExecMode};
use altis_data::InputSize;
use hetero_rt::prelude::*;

#[test]
fn lane_and_scalar_paths_are_bitwise_identical_and_both_verify() {
    let q = Queue::new(Device::cpu());
    let fp = altis_data::fdtd2d(InputSize::S1);
    let sp = altis_data::srad(InputSize::S1);

    hetero_rt::lanes::force(false);
    let fdtd_scalar = altis_core::fdtd2d::run_with(&q, &fp, AppVersion::SyclOptimized, ExecMode::PerLaunch);
    let srad_scalar = altis_core::srad::run_with(&q, &sp, AppVersion::SyclOptimized, ExecMode::PerLaunch);
    let scan_scalar = {
        let input: Vec<u32> = (0..100_000u32).map(|i| i.wrapping_mul(0x9E37_79B9) >> 20).collect();
        let mut out = vec![0u32; input.len()];
        par_dpl::scan::exclusive_scan_onedpl_style(&input, &mut out);
        out
    };
    let data: Vec<f32> =
        (0..65_536).map(|i| ((i as u32).wrapping_mul(0x9E37_79B9) as f32) * 1e-3).collect();
    let min_scalar = par_dpl::reduce::reduce_min(&data);
    let hist_scalar = par_dpl::histogram::histogram_u32_mod(
        &(0..65_536u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect::<Vec<_>>(),
        257,
    );

    // The scalar path *is* the pre-conversion path; it must still verify.
    let golden = altis_core::fdtd2d::golden(&fp);
    assert_eq!(
        fdtd_scalar.ez.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        golden.ez.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "scalar FDTD2D must match the golden bitwise"
    );
    let srad_golden = altis_core::srad::golden(&sp);
    assert_eq!(
        srad_scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        srad_golden.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "scalar SRAD must match the golden bitwise"
    );

    hetero_rt::lanes::force(true);
    let fdtd_lanes = altis_core::fdtd2d::run_with(&q, &fp, AppVersion::SyclOptimized, ExecMode::PerLaunch);
    let srad_lanes = altis_core::srad::run_with(&q, &sp, AppVersion::SyclOptimized, ExecMode::PerLaunch);
    let scan_lanes = {
        let input: Vec<u32> = (0..100_000u32).map(|i| i.wrapping_mul(0x9E37_79B9) >> 20).collect();
        let mut out = vec![0u32; input.len()];
        par_dpl::scan::exclusive_scan_onedpl_style(&input, &mut out);
        out
    };
    let min_lanes = par_dpl::reduce::reduce_min(&data);
    let hist_lanes = par_dpl::histogram::histogram_u32_mod(
        &(0..65_536u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect::<Vec<_>>(),
        257,
    );

    assert_eq!(
        fdtd_lanes.ez.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        fdtd_scalar.ez.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "FDTD2D lane path must be bitwise identical to scalar"
    );
    assert_eq!(
        fdtd_lanes.hx.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        fdtd_scalar.hx.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
    assert_eq!(
        fdtd_lanes.hy.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        fdtd_scalar.hy.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
    assert_eq!(
        srad_lanes.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        srad_scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "SRAD lane path must be bitwise identical to scalar"
    );
    assert_eq!(scan_lanes, scan_scalar, "scan lane path must be exact (wrapping adds)");
    assert_eq!(min_lanes.to_bits(), min_scalar.to_bits(), "min reduction must be exact");
    assert_eq!(hist_lanes, hist_scalar, "histogram lane path must be exact");
}
