//! Integration: the three descriptions of each application — the
//! analytic work profile (device models), the FPGA IR designs
//! (simulator), and the executable kernels — must agree with each other
//! up to the variant differences they legitimately encode.

use altis_core::suite::all_apps;
use altis_data::InputSize;
use fpga_sim::FpgaPart;
use hetero_ir::analysis::kernel_cost;
use hetero_ir::ir::KernelStyle;

/// Total FLOPs of a design (all instances, invocations, items).
fn design_flops(design: &fpga_sim::Design) -> f64 {
    design
        .instances
        .iter()
        .map(|inst| {
            let items = match inst.kernel.style {
                KernelStyle::NdRange { .. } => inst.items_per_invocation,
                KernelStyle::SingleTask => 1,
            };
            kernel_cost(&inst.kernel, items).flops() as f64 * inst.invocations as f64
        })
        .sum()
}

#[test]
fn profile_and_ir_flop_counts_agree_in_magnitude() {
    // The work profile and the baseline FPGA design describe the same
    // paper-scale workload; their FLOP totals must agree within an
    // order of magnitude (they model different kernel variants, and
    // integer-dominated apps have little FP at all — skip those).
    let part = FpgaPart::stratix10();
    for app in all_apps() {
        if ["NW", "Where", "PF Naive", "PF Float"].contains(&app.name) {
            // Integer/compare-dominated: NW and Where carry no FP work,
            // and PF's CDF walk is FP in the CPU-cost proxy but compare
            // ops in the IR — the FLOP ratio is meaningless for these.
            continue;
        }
        for size in [InputSize::S1, InputSize::S3] {
            let profile = (app.work_profile)(size);
            let Some(design) = (app.fpga_design)(size, false, &part) else {
                continue;
            };
            let p_flops = profile.total_flops() as f64;
            let d_flops = design_flops(&design);
            if p_flops == 0.0 || d_flops == 0.0 {
                continue;
            }
            let ratio = p_flops / d_flops;
            assert!(
                (0.02..=50.0).contains(&ratio),
                "{} at {size}: profile {p_flops:.3e} vs design {d_flops:.3e} (ratio {ratio:.2})",
                app.name
            );
        }
    }
}

#[test]
fn profiles_and_designs_share_size_scaling() {
    // Growing the input from size 1 to size 3 must scale the profile
    // and the design by comparable factors: the two model layers track
    // the same workload.
    let part = FpgaPart::stratix10();
    for app in all_apps() {
        let p1 = (app.work_profile)(InputSize::S1);
        let p3 = (app.work_profile)(InputSize::S3);
        let (Some(d1), Some(d3)) = (
            (app.fpga_design)(InputSize::S1, false, &part),
            (app.fpga_design)(InputSize::S3, false, &part),
        ) else {
            continue;
        };
        let profile_growth = (p3.total_flops() + p3.global_bytes) as f64
            / (p1.total_flops() + p1.global_bytes).max(1) as f64;
        let t1 = fpga_sim::simulate(&d1, &part).total_seconds;
        let t3 = fpga_sim::simulate(&d3, &part).total_seconds;
        let design_growth = t3 / t1;
        // Same direction, within ~30× of each other (time growth can be
        // sublinear when fill/overhead terms matter at size 1).
        assert!(design_growth > 1.0, "{}: design did not grow", app.name);
        let rel = profile_growth / design_growth;
        assert!(
            (0.03..=30.0).contains(&rel),
            "{}: profile x{profile_growth:.1} vs design x{design_growth:.1}",
            app.name
        );
    }
}

#[test]
fn launch_counts_are_consistent_with_design_invocations() {
    // The profile's kernel_launches and the design's total invocations
    // describe the same host-side submission stream.
    let part = FpgaPart::stratix10();
    for app in all_apps() {
        let profile = (app.work_profile)(InputSize::S2);
        let Some(design) = (app.fpga_design)(InputSize::S2, false, &part) else {
            continue;
        };
        let design_invocations: u64 = design.instances.iter().map(|i| i.invocations).sum();
        let ratio = profile.kernel_launches as f64 / design_invocations.max(1) as f64;
        assert!(
            (0.1..=10.0).contains(&ratio),
            "{}: profile launches {} vs design invocations {}",
            app.name,
            profile.kernel_launches,
            design_invocations
        );
    }
}
