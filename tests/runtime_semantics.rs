//! Integration: cross-crate runtime semantics — the SYCL-like runtime,
//! the parallel-algorithms library, and the migration passes interact
//! the way the applications rely on.

use hetero_ir::dpct::{migrate, optimize_for_gpu, refactor_for_fpga, Construct, CudaModule, TimingApi};
use hetero_rt::ndrange::FenceSpace;
use hetero_rt::prelude::*;
use par_dpl::scan::{exclusive_scan, ScanFlavor};

#[test]
fn scan_inside_kernel_pipeline_matches_host_scan() {
    // Flag kernel on the runtime, scan via par-dpl, scatter kernel —
    // the Where pipeline wired by hand across crates.
    let n = 100_000usize;
    let q = Queue::new(Device::cpu());
    let data: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761) % 100).collect();

    let input = Buffer::from_slice(&data);
    let flags = Buffer::<u32>::new(n);
    let (iv, fv) = (input.view(), flags.view());
    q.parallel_for("flags", Range::d1(n), move |it| {
        fv.set(it.gid(0), u32::from(iv.get(it.gid(0)) < 30));
    });

    let flags_host = flags.to_vec();
    let mut offsets = vec![0u32; n];
    exclusive_scan(ScanFlavor::Cub, &flags_host, &mut offsets);

    let expected: Vec<u32> = data.iter().filter(|&&v| v < 30).copied().collect();
    let out = Buffer::<u32>::new(expected.len().max(1));
    let offs = Buffer::from_slice(&offsets);
    let fl = Buffer::from_slice(&flags_host);
    let (ov, offv, flv, iv) = (out.view(), offs.view(), fl.view(), input.view());
    q.parallel_for("scatter", Range::d1(n), move |it| {
        let i = it.gid(0);
        if flv.get(i) == 1 {
            ov.set(offv.get(i) as usize, iv.get(i));
        }
    });
    let mut got = out.to_vec();
    got.truncate(expected.len());
    assert_eq!(got, expected);
}

#[test]
fn multi_kernel_dataflow_over_pipes_is_equivalent_to_sequential() {
    // Three-stage pipeline over pipes == three sequential kernels.
    let n = 50_000u64;
    let q = Queue::new(Device::stratix10());
    let stage1 = Pipe::<u64>::with_capacity(256);
    let stage2 = Pipe::<u64>::with_capacity(256);
    let out = Buffer::<u64>::new(n as usize);
    let ov = out.view();
    let (s1w, s1r) = (stage1.clone(), stage1);
    let (s2w, s2r) = (stage2.clone(), stage2);
    q.submit_concurrent(
        "three_stage",
        vec![
            Box::new(move || {
                for i in 0..n {
                    s1w.write(i * 3)?;
                }
                Ok(())
            }) as Box<dyn FnOnce() -> hetero_rt::Result<()> + Send>,
            Box::new(move || {
                for _ in 0..n {
                    let v = s1r.read()?;
                    s2w.write(v + 7)?;
                }
                Ok(())
            }),
            Box::new(move || {
                for i in 0..n {
                    ov.set(i as usize, s2r.read()?);
                }
                Ok(())
            }),
        ],
    )
    .unwrap();
    let got = out.to_vec();
    assert!(got.iter().enumerate().all(|(i, &v)| v == i as u64 * 3 + 7));
}

#[test]
fn fpga_work_group_limits_reject_oversized_launches_end_to_end() {
    // The Section-4 story: default Altis work-group sizes exceed the
    // FPGA limit; the launch must fail until the size is reduced.
    let q = Queue::new(Device::agilex());
    let err = q.nd_range("too_wide", NdRange::d1(1024, 256), |_| {}).unwrap_err();
    assert!(matches!(err, hetero_rt::Error::WorkGroupTooLarge { .. }));
    // Reduced work-group size: fine.
    assert!(q.nd_range("ok", NdRange::d1(1024, 128), |_| {}).is_ok());
}

#[test]
fn migration_pipeline_end_to_end_over_whole_suite() {
    // Every app's source model must migrate, optimise, and (except
    // Raytracing, which needs its manual rewrite first) refactor for
    // FPGA without errors.
    for app in altis_core::all_apps() {
        let cuda = (app.cuda_module)();
        let (migrated, _diags) = migrate(&cuda);
        let optimized = optimize_for_gpu(&migrated);
        let fpga = refactor_for_fpga(&optimized);
        if app.name == "Raytracing" {
            assert!(fpga.is_err(), "raytracing must require the manual rewrite");
        } else {
            assert!(fpga.is_ok(), "{} failed FPGA refactor: {:?}", app.name, fpga.err());
        }
    }
}

#[test]
fn raytracing_fpga_path_after_manual_rewrite() {
    // Model the manual rewrite: virtual functions and in-kernel
    // allocation removed by hand, then the pass pipeline succeeds.
    let rewritten = CudaModule {
        name: "raytracing_rewritten".into(),
        constructs: altis_core::raytracing::cuda_module()
            .constructs
            .into_iter()
            .filter(|c| {
                !matches!(c, Construct::VirtualFunctions | Construct::DynamicKernelAlloc)
            })
            .collect(),
    };
    let (m, _) = migrate(&rewritten);
    assert!(refactor_for_fpga(&optimize_for_gpu(&m)).is_ok());
}

#[test]
fn barrier_phases_compose_with_global_memory() {
    // A two-kernel dependency chain with an in-kernel reduction: checks
    // barriers, local arrays, private arrays, and buffer reuse together.
    let n = 4096usize;
    let q = Queue::new(Device::cpu());
    let data = Buffer::from_slice(&(0..n as u32).collect::<Vec<_>>());
    let partial = Buffer::<u32>::new(n / 64);

    let (dv, pv) = (data.view(), partial.view());
    q.nd_range("block_sum", NdRange::d1(n, 64), move |ctx| {
        let tile = ctx.local_array::<u32>(64);
        ctx.items(|it| tile.set(it.local_linear, dv.get(it.global_linear)));
        ctx.barrier(FenceSpace::Local);
        let mut stride = 32;
        while stride > 0 {
            ctx.items(|it| {
                if it.local_linear < stride {
                    tile.update(it.local_linear, |v| v + tile.get(it.local_linear + stride));
                }
            });
            ctx.barrier(FenceSpace::Local);
            stride /= 2;
        }
        ctx.items(|it| {
            if it.local_linear == 0 {
                pv.set(ctx.group_linear(), tile.get(0));
            }
        });
    })
    .unwrap();

    let total: u64 = partial.to_vec().iter().map(|&x| x as u64).sum();
    assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
}

#[test]
fn timing_constructs_survive_the_full_pass_chain() {
    let cuda = CudaModule {
        name: "t".into(),
        constructs: vec![
            Construct::Timing { api: TimingApi::CudaEvents, wraps_library_call: false },
            Construct::Timing { api: TimingApi::CudaEvents, wraps_library_call: true },
        ],
    };
    let (m, diags) = migrate(&cuda);
    assert_eq!(diags.len(), 2);
    let o = optimize_for_gpu(&m);
    let sycl_events = o
        .constructs
        .iter()
        .filter(|c| matches!(c, Construct::Timing { api: TimingApi::SyclEvents, .. }))
        .count();
    let chrono = o
        .constructs
        .iter()
        .filter(|c| matches!(c, Construct::Timing { api: TimingApi::Chrono, .. }))
        .count();
    assert_eq!((sycl_events, chrono), (1, 1));
}

#[test]
fn all_apps_agree_between_sequential_and_pooled_execution() {
    // Every application must verify against its golden reference both on
    // the deterministic sequential executor and on the persistent worker
    // pool — the pool must not change any app's results.
    use hetero_rt::executor::Parallelism;
    let seq = Queue::new(Device::cpu()).with_parallelism(Parallelism::Sequential);
    // Threads(3) rather than Auto so the pooled dispatch path runs even
    // when the host reports a single core.
    let pooled = Queue::new(Device::cpu()).with_parallelism(Parallelism::Threads(3));
    for app in altis_core::all_apps() {
        for (label, q) in [("sequential", &seq), ("pooled", &pooled)] {
            assert!(
                (app.verify)(q, altis_data::InputSize::S1, altis_core::common::AppVersion::SyclOptimized),
                "{} failed verification on the {label} executor",
                app.name
            );
        }
    }
}
