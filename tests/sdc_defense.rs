//! Suite-level silent-data-corruption defense: applications driven
//! under seeded *silent* fault plans (bit-flips, stuck-at pages) with
//! the integrity layer armed and DMR voting on must end Correct,
//! Corrected, or Quarantined — never with silently wrong output
//! accepted as success. The full seeds × sizes matrix runs in
//! `scripts/verify.sh` through the `sdc` binary; this test keeps an
//! in-process slice of it in the tier-1 suite.
//!
//! Arming the integrity layer is process-global, so every test here
//! serializes on one mutex and disarms through an RAII guard.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use altis_core::common::AppVersion;
use altis_core::suite::{all_apps, check_golden_registry, run_sdc, SdcOutcome};
use altis_data::InputSize;
use hetero_rt::prelude::*;
use hetero_rt::{integrity, Redundancy, RetryPolicy};

fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| {
        // Pin a small fixed pool before first use so single-core hosts
        // still have parked workers (same pattern as hetero-rt tests).
        if std::env::var_os("HETERO_RT_THREADS").is_none() {
            std::env::set_var("HETERO_RT_THREADS", "4");
        }
        Mutex::new(())
    })
    .lock()
    .unwrap_or_else(PoisonError::into_inner)
}

/// Arms the integrity layer for one test; disarms and drains parked
/// scrubber reports on drop (even on panic).
struct Armed;

impl Armed {
    fn new() -> Self {
        integrity::arm();
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        integrity::disarm();
        let _ = integrity::take_scrub_reports();
    }
}

fn sdc_queue(seed: u64, rate: f64) -> Queue {
    Queue::new(Device::cpu())
        .with_integrity(true)
        .with_redundancy(Redundancy::Dmr)
        .with_retry_policy(RetryPolicy::resilient())
        .with_fault_plan(Some(Arc::new(FaultPlan::sdc(seed, rate))))
}

#[test]
fn armed_rate_zero_suite_slice_is_correct() {
    let _g = serial();
    let _a = Armed::new();
    // With the full defense armed but injection off, every app must
    // come back Correct: no false detections from the apps' own host
    // write patterns, no divergence from running replicas.
    let picks = ["Mandelbrot", "NW", "KMeans", "Where"];
    for app in all_apps().iter().filter(|a| picks.contains(&a.name)) {
        let o = run_sdc(
            app,
            sdc_queue(7, 0.0),
            InputSize::S1,
            AppVersion::SyclOptimized,
            Duration::from_secs(120),
        );
        assert_eq!(o, SdcOutcome::Correct, "{}: {o:?}", app.name);
    }
}

#[test]
fn injected_silent_faults_are_never_silently_wrong() {
    let _g = serial();
    let _a = Armed::new();
    let picks = ["Mandelbrot", "NW", "SRAD", "KMeans"];
    for app in all_apps().iter().filter(|a| picks.contains(&a.name)) {
        for seed in [1u64, 2] {
            let o = run_sdc(
                app,
                sdc_queue(seed, 0.05),
                InputSize::S1,
                AppVersion::SyclOptimized,
                Duration::from_secs(120),
            );
            assert!(o.is_defended(), "{} seed {seed}: {o:?}", app.name);
        }
    }

    // The shared pool must still produce exact results afterwards.
    let q = Queue::new(Device::cpu());
    let b = Buffer::<u32>::new(1024);
    let v = b.view();
    q.parallel_for("after_sdc", Range::d1(1024), move |it| {
        v.set(it.gid(0), it.gid(0) as u32);
    });
    assert!(b.to_vec().iter().enumerate().all(|(i, &x)| x == i as u32));
}

#[test]
fn golden_registry_matches_reference_outputs() {
    // Host-side only (no queue, no arming): the committed registry in
    // tests/golden_checksums.tsv must match freshly derived digests for
    // all 13 configurations x 3 sizes.
    let _g = serial();
    let n = check_golden_registry().unwrap_or_else(|errs| panic!("{}", errs.join("\n")));
    assert_eq!(n, 39, "expected 13 configurations x 3 sizes");
}
