//! Checkpoint/rollback determinism for the streaming apps.
//!
//! The streaming contract under test (see DESIGN.md "Streaming
//! execution"): a stream that takes faults mid-flight — retries,
//! checkpoint rollbacks, clean-path replays — carries **bit-identical
//! state** to the same stream run uninterrupted, window for window.
//! Three layers:
//!
//! 1. **Rollback ≡ uninterrupted** — per app, a fault-free digest
//!    trail is recorded, then the same windows run with transient
//!    faults and a zero in-window retry budget so *every* fault forces
//!    a checkpoint rollback. The two trails must match exactly at
//!    every window, including the quarantined ones.
//! 2. **SDC rollback** — same comparison with silent bit-flips on the
//!    primary queue and the integrity layer armed: corruption surfaces
//!    as typed `DataCorruption`, the window rolls back, and the trail
//!    still matches bit-for-bit.
//! 3. **Registry pinning** — streamed output at the app's golden
//!    horizon (its batch iteration count) reproduces the digest
//!    recorded in `tests/golden_checksums.tsv`, in the registry's own
//!    digest format. The streaming conversions therefore compute the
//!    *same function* as the batch apps, not merely a self-consistent
//!    one.

use std::sync::{Arc, Mutex};

use altis_core::streaming::{
    golden_horizon, open_stream, streamed_registry_digest, StreamScenario, STREAM_APPS,
};
use altis_data::InputSize;
use hetero_rt::{FaultKind, FaultPlan, StreamConfig};

/// The SDC test arms the process-global integrity layer; keep the
/// tests in this binary from interleaving with it.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

/// Drive `windows` windows and return the per-window digest trail plus
/// the stream stats. Panics if the stream dies: every fault must be
/// contained to a window.
fn trail(
    app: &str,
    cfg: StreamConfig,
    scenario: &StreamScenario,
    windows: u64,
) -> (Vec<u64>, hetero_rt::StreamStats) {
    let mut s = open_stream(app, InputSize::S1, cfg, scenario)
        .unwrap_or_else(|e| panic!("{app}: stream failed to open: {e}"))
        .unwrap_or_else(|| panic!("{app}: no streaming conversion"));
    let mut t = Vec::with_capacity(windows as usize);
    for w in 0..windows {
        let r = s
            .next_window()
            .unwrap_or_else(|e| panic!("{app}: stream died at window {w}: {e}"));
        t.push(r.digest);
    }
    (t, s.stats())
}

#[test]
fn rollback_replay_is_bit_identical_to_an_uninterrupted_run() {
    let _serial = serialize();
    // Zero in-window retries: every transient fault exhausts the budget
    // immediately and goes down the checkpoint-rollback path.
    let cfg = StreamConfig { checkpoint_every: 4, max_retries: 0 };
    let windows = 32;
    for app in STREAM_APPS {
        let (clean, _) = trail(app, cfg, &StreamScenario::default(), windows);
        let plan =
            Arc::new(FaultPlan::new(23, 0.2).with_kinds(&[FaultKind::LaunchTransient]));
        let scenario = StreamScenario { fault: Some(plan.clone()), ..StreamScenario::default() };
        let (faulted, stats) = trail(app, cfg, &scenario, windows);
        assert!(plan.injected() > 0, "{app}: injection must be live at rate 0.2");
        assert!(stats.rollbacks > 0, "{app}: zero retry budget must force rollbacks");
        assert_eq!(stats.dropped, 0, "{app}: no window may be lost");
        for w in 0..windows as usize {
            assert_eq!(
                faulted[w], clean[w],
                "{app}: window {w} state diverged after rollback (rollbacks={})",
                stats.rollbacks
            );
        }
    }
}

#[test]
fn sdc_detection_rolls_back_to_a_bit_identical_trail() {
    let _serial = serialize();
    let cfg = StreamConfig { checkpoint_every: 4, max_retries: 1 };
    let windows = 24;
    for app in STREAM_APPS {
        let (clean, _) = trail(app, cfg, &StreamScenario::default(), windows);
        // Silent bit-flips on the primary queue; integrity armed so
        // they surface as typed DataCorruption instead of wrong bits.
        let scenario = StreamScenario::sdc(5, 0.05);
        let (faulted, stats) = trail(app, cfg, &scenario, windows);
        assert_eq!(stats.dropped, 0, "{app}: no window may be lost");
        for w in 0..windows as usize {
            assert_eq!(
                faulted[w], clean[w],
                "{app}: window {w} carried corrupted state past detection \
                 (retried={}, quarantined={}, rollbacks={})",
                stats.retried, stats.quarantined, stats.rollbacks
            );
        }
    }
}

/// Parse `tests/golden_checksums.tsv` into (app, size, digest) rows.
fn registry() -> Vec<(String, u32, u64)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden_checksums.tsv");
    let text = std::fs::read_to_string(path).expect("golden registry readable");
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let mut f = l.split('\t');
            let app = f.next().expect("app column").to_string();
            let size: u32 = f.next().expect("size column").parse().expect("size parses");
            let digest =
                u64::from_str_radix(f.next().expect("digest column"), 16).expect("digest parses");
            (app, size, digest)
        })
        .collect()
}

#[test]
fn streamed_output_reproduces_the_golden_registry_digests() {
    let _serial = serialize();
    let reg = registry();
    let cfg = StreamConfig::default();
    let mut pinned = 0;
    for app in STREAM_APPS {
        let Some(streamed) =
            streamed_registry_digest(app, InputSize::S1, cfg, &StreamScenario::default())
                .unwrap_or_else(|e| panic!("{app}: stream failed: {e}"))
        else {
            // PF Naive: kernel rounding differs from the golden
            // reference by design; its tolerance tracking is pinned in
            // the particlefilter::streaming unit tests.
            continue;
        };
        let expect = reg
            .iter()
            .find(|(a, s, _)| a == app && *s == 1)
            .unwrap_or_else(|| panic!("{app} size 1 missing from golden_checksums.tsv"))
            .2;
        assert_eq!(
            streamed, expect,
            "{app}: streamed output diverged from the pinned registry digest"
        );
        pinned += 1;
    }
    assert_eq!(pinned, 3, "SRAD, FDTD2D and KMeans must all pin against the registry");
}

#[test]
fn faulted_stream_still_reproduces_the_registry_digest() {
    let _serial = serialize();
    // The end-to-end composition of everything above: run SRAD to its
    // golden horizon with a hot transient plan and zero retry budget
    // (rollback on every fault) — the final image must still match the
    // registry bit-for-bit.
    let reg = registry();
    let expect = reg.iter().find(|(a, s, _)| a == "SRAD" && *s == 1).expect("SRAD pinned").2;
    let cfg = StreamConfig { checkpoint_every: 4, max_retries: 0 };
    let plan = Arc::new(FaultPlan::new(77, 0.3).with_kinds(&[FaultKind::LaunchTransient]));
    let scenario = StreamScenario { fault: Some(plan.clone()), ..StreamScenario::default() };
    let streamed = streamed_registry_digest("SRAD", InputSize::S1, cfg, &scenario)
        .expect("stream survives")
        .expect("SRAD pins");
    assert!(plan.injected() > 0, "injection must be live");
    assert_eq!(streamed, expect, "faulted SRAD stream diverged from the registry digest");
    let _ = golden_horizon("SRAD", InputSize::S1).expect("SRAD has a horizon");
}
