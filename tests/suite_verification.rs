//! Integration: every application verifies against its golden reference
//! on the portable runtime, across versions and devices.

use altis_core::common::AppVersion;
use altis_core::suite::all_apps;
use altis_data::InputSize;
use hetero_rt::prelude::*;

#[test]
fn all_apps_verify_at_size_1_baseline() {
    let q = Queue::new(Device::cpu());
    for app in all_apps() {
        assert!(
            (app.verify)(&q, InputSize::S1, AppVersion::SyclBaseline),
            "{} baseline failed verification at size 1",
            app.name
        );
    }
}

#[test]
fn all_apps_verify_at_size_1_optimized() {
    let q = Queue::new(Device::cpu());
    for app in all_apps() {
        assert!(
            (app.verify)(&q, InputSize::S1, AppVersion::SyclOptimized),
            "{} optimized failed verification at size 1",
            app.name
        );
    }
}

#[test]
fn optimized_versions_verify_on_fpga_device() {
    // The FPGA device enables pipes; KMeans takes its dataflow path.
    let q = Queue::new(Device::stratix10());
    for app in all_apps() {
        // NW's 16-wide work-groups and the others all fit the FPGA's
        // 128-item limit at size 1.
        assert!(
            (app.verify)(&q, InputSize::S1, AppVersion::SyclOptimized),
            "{} failed on the FPGA device",
            app.name
        );
    }
}

#[test]
fn selected_apps_verify_at_size_2() {
    // Size-2 spot checks on the cheaper apps (full size-2/3 sweeps live
    // in the benches).
    let q = Queue::new(Device::cpu());
    for app in all_apps() {
        if ["Mandelbrot", "Where", "FDTD2D", "NW", "KMeans"].contains(&app.name) {
            assert!(
                (app.verify)(&q, InputSize::S2, AppVersion::SyclOptimized),
                "{} failed at size 2",
                app.name
            );
        }
    }
}

#[test]
fn sequential_and_parallel_execution_agree() {
    // Determinism across scheduler configurations: the same app run with
    // 1 thread and N threads produces identical output.
    use hetero_rt::executor::Parallelism;
    let p = altis_data::mandelbrot(InputSize::S1);
    let seq = altis_core::mandelbrot::run(
        &Queue::new(Device::cpu()).with_parallelism(Parallelism::Sequential),
        &p,
        AppVersion::SyclOptimized,
    );
    let par = altis_core::mandelbrot::run(
        &Queue::new(Device::cpu()).with_parallelism(Parallelism::Threads(8)),
        &p,
        AppVersion::SyclOptimized,
    );
    assert_eq!(seq, par);
}
